"""Shared helpers for the experiment benchmarks.

Every benchmark reproduces one table or figure of the paper's Section 7 at
laptop scale: it builds the dirty data, runs Daisy and the relevant
baselines, and prints the same series the paper plots (plus deterministic
work units).  Absolute numbers differ from the paper's 7-node-cluster
minutes; the reproduction target is the *shape* — who wins, by what rough
factor, and where strategy switches occur.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro import Daisy, DaisyConfig
from repro.baselines import OfflineCleaner
from repro.constraints.dc import Rule
from repro.core.state import TableState
from repro.query.executor import Executor
from repro.query.planner import PlannerCatalog
from repro.relation import BACKEND_COLUMNAR, BACKENDS
from repro.relation.relation import Relation

#: Where BENCH_*.json result files are written (repo root).
RESULTS_DIR = Path(__file__).resolve().parent.parent


def bench_scale() -> float:
    """Global scale multiplier (``REPRO_BENCH_SCALE``, default 1.0).

    CI's smoke job sets a small value so the benchmark runs in seconds;
    the committed BENCH_*.json files are produced at scale 1.0.
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    """``n`` adjusted by the global benchmark scale, floored at ``minimum``."""
    return max(minimum, int(round(n * bench_scale())))


def record_benchmark(name: str, payload: dict) -> Path:
    """Merge ``payload`` into ``BENCH_<name>.json`` at the repo root.

    Existing top-level keys not present in ``payload`` are preserved, so
    multiple tests of one benchmark module can contribute sections to the
    same file.  Every write stamps scale and platform metadata.  Runs at a
    non-default scale (CI smoke, local experiments) go to a scale-suffixed
    file so they never clobber the committed scale-1.0 evidence.
    """
    scale = bench_scale()
    suffix = "" if scale == 1.0 else f"_scale{scale:g}"
    path = RESULTS_DIR / f"BENCH_{name}{suffix}.json"
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            data = {}
    data.update(payload)
    data["meta"] = {
        "scale": bench_scale(),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def compare_backends(
    make_inputs: Callable[[], tuple[Relation, Sequence[Rule], Sequence[str]]],
    table: str = "lineorder",
    use_cost_model: bool = False,
    repeats: int = 2,
) -> dict:
    """Run the same Daisy workload on every backend; report the speedup.

    ``make_inputs`` must build fresh inputs per call (cleaning mutates the
    relation in place).  Returns per-backend best-of-``repeats`` seconds and
    work units plus the columnar-over-rowstore speedup.
    """
    out: dict = {}
    for backend in BACKENDS:
        best: RunResult | None = None
        for _ in range(max(1, repeats)):
            relation, rules, queries = make_inputs()
            result = run_daisy(
                relation, rules, queries, table=table,
                use_cost_model=use_cost_model, backend=backend,
                label=f"Daisy[{backend}]",
            )
            if best is None or result.seconds < best.seconds:
                best = result
        assert best is not None
        out[backend] = {"seconds": best.seconds, "work_units": best.work_units}
    rowstore = out["rowstore"]["seconds"]
    columnar = out[BACKEND_COLUMNAR]["seconds"]
    out["speedup_columnar_over_rowstore"] = (
        rowstore / columnar if columnar > 0 else float("inf")
    )
    return out


@dataclass
class RunResult:
    """One system's run over one workload configuration."""

    label: str
    seconds: float
    work_units: int
    cumulative_seconds: list[float] = field(default_factory=list)
    switch_index: int | None = None
    extras: dict = field(default_factory=dict)

    def row(self) -> str:
        switch = (
            f"  switch@q{self.switch_index}" if self.switch_index is not None else ""
        )
        return (
            f"{self.label:<28} {self.seconds:>8.3f}s {self.work_units:>12,} wu{switch}"
        )


def run_daisy(
    relation: Relation,
    rules: Sequence[Rule],
    queries: Sequence[str],
    table: str = "lineorder",
    use_cost_model: bool = True,
    expected_queries: int | None = None,
    label: str = "Daisy",
    extra_tables: dict[str, Relation] | None = None,
    extra_rules: dict[str, Sequence[Rule]] | None = None,
    dc_error_threshold: float = 0.2,
    backend: str = BACKEND_COLUMNAR,
) -> RunResult:
    """Execute a workload with Daisy (optionally without the cost model)."""
    daisy = _make_daisy(
        relation, rules, table,
        DaisyConfig(
            use_cost_model=use_cost_model,
            expected_queries=expected_queries or len(queries),
            dc_error_threshold=dc_error_threshold,
            backend=backend,
        ),
        extra_tables, extra_rules,
    )
    with daisy.connect() as session:
        started = time.perf_counter()
        report = session.execute_workload(list(queries))
        seconds = time.perf_counter() - started
    return RunResult(
        label=label,
        seconds=seconds,
        work_units=daisy.total_work(),
        cumulative_seconds=report.cumulative_seconds(),
        switch_index=report.switch_query_index,
    )


def _make_daisy(
    relation: Relation,
    rules: Sequence[Rule],
    table: str,
    config: DaisyConfig,
    extra_tables: dict[str, Relation] | None = None,
    extra_rules: dict[str, Sequence[Rule]] | None = None,
) -> Daisy:
    daisy = Daisy(config=config)
    daisy.register_table(table, relation)
    for rule in rules:
        daisy.add_rule(table, rule)
    for name, rel in (extra_tables or {}).items():
        daisy.register_table(name, rel)
        for rule in (extra_rules or {}).get(name, ()):
            daisy.add_rule(name, rule)
    return daisy


def run_daisy_batch(
    relation: Relation,
    rules: Sequence[Rule],
    queries: Sequence[str],
    table: str = "lineorder",
    label: str = "Daisy (batched)",
    dc_error_threshold: float = 0.2,
    backend: str = BACKEND_COLUMNAR,
    rule_sharing: bool = True,
) -> RunResult:
    """Execute a workload through ``Session.execute_batch``.

    ``rule_sharing=False`` runs the same entry point with sharing disabled
    (the A/B control: sequential semantics through the batch API).
    """
    daisy = _make_daisy(
        relation, rules, table,
        DaisyConfig(
            use_cost_model=False,
            dc_error_threshold=dc_error_threshold,
            backend=backend,
            batch_rule_sharing=rule_sharing,
        ),
    )
    with daisy.connect() as session:
        started = time.perf_counter()
        batch = session.execute_batch(list(queries))
        seconds = time.perf_counter() - started
    return RunResult(
        label=label,
        seconds=seconds,
        work_units=daisy.total_work(),
        cumulative_seconds=batch.report.cumulative_seconds(),
        switch_index=batch.report.switch_query_index,
        extras={
            "rule_groups": len(batch.groups),
            "shared_scope": sum(g.scope_size for g in batch.groups),
        },
    )


def run_offline(
    relation: Relation,
    rules: Sequence[Rule],
    queries: Sequence[str],
    table: str = "lineorder",
    label: str = "Full cleaning + queries",
    extra_tables: dict[str, Relation] | None = None,
    extra_rules: dict[str, Sequence[Rule]] | None = None,
    backend: str = BACKEND_COLUMNAR,
) -> RunResult:
    """Clean everything upfront (offline baseline), then run the workload."""
    started = time.perf_counter()
    cleaner = OfflineCleaner(backend=backend)
    work = 0
    cleaned, report = cleaner.clean(relation, list(rules))
    work += report.work.total()
    catalog = PlannerCatalog()
    states = {table: TableState(relation=cleaned, backend=backend)}
    catalog.add_table(table, cleaned.schema)
    for name, rel in (extra_tables or {}).items():
        extra_cleaner = OfflineCleaner(backend=backend)
        rel_rules = list((extra_rules or {}).get(name, ()))
        if rel_rules:
            rel, rel_report = extra_cleaner.clean(rel, rel_rules)
            work += rel_report.work.total()
        states[name] = TableState(relation=rel, backend=backend)
        catalog.add_table(name, rel.schema)
    executor = Executor(states, catalog, cleaning_enabled=False)
    cumulative = []
    for sql in queries:
        executor.execute(sql)
        cumulative.append(time.perf_counter() - started)
    seconds = time.perf_counter() - started
    work += sum(s.counter.total() for s in states.values())
    return RunResult(
        label=label,
        seconds=seconds,
        work_units=work,
        cumulative_seconds=cumulative,
    )


def print_series(title: str, results: Sequence[RunResult]) -> None:
    """Print one experiment's series in a paper-like layout."""
    print()
    print(f"=== {title} ===")
    for result in results:
        print(" ", result.row())


def print_cumulative(title: str, results: Sequence[RunResult], step: int = 10) -> None:
    """Print cumulative-time curves (Figs 7/8/11/12/13 style)."""
    print()
    print(f"=== {title} (cumulative seconds) ===")
    header = "query#".ljust(10) + "".join(r.label[:16].rjust(18) for r in results)
    print(" ", header)
    length = max(len(r.cumulative_seconds) for r in results)
    for i in range(step - 1, length, step):
        row = f"{i + 1:<10}"
        for result in results:
            series = result.cumulative_seconds
            value = series[min(i, len(series) - 1)] if series else 0.0
            row += f"{value:>18.3f}"
        print(" ", row)
    for result in results:
        if result.switch_index is not None:
            print(f"  [{result.label}] switched to full cleaning at query "
                  f"{result.switch_index + 1}")


def speedup(fast: RunResult, slow: RunResult) -> float:
    """slow/fast wall-clock ratio (>= 1 means `fast` wins)."""
    if fast.seconds <= 0:
        return float("inf")
    return slow.seconds / fast.seconds
