"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Relaxation vs per-error traversal — candidate-fix computation with the
   relaxed scope (one pass) vs the offline per-group dataset traversals.
2. Statistics-based dirty-group pruning on vs off (the Fig. 9 driver).
3. Incremental theta-join matrix vs rebuilding/rechecking the full matrix
   per query.
"""



from repro.constraints import DenialConstraint, Predicate
from repro.core import TableState, clean_sigma
from repro.core.relaxation import relax_fd
from repro.constraints.analysis import FilterSide
from repro.detection import ThetaJoinMatrix
from repro.engine import WorkCounter
from repro.datasets import ssb
from repro.datasets.errors import inject_numeric_errors
from repro.relation import ColumnType, Relation
from repro.repair import compute_fd_fixes


def _lineorder(n=2000, ok=200, sk=50, frac=0.5):
    dirty, fd, _ = ssb.dirty_lineorder(n, ok, sk, error_group_fraction=frac, seed=120)
    return dirty, fd


class TestAblationRelaxation:
    """Relaxation batches candidate computation; per-error traversal rescans."""

    def test_relaxation_beats_per_group_traversal(self, benchmark):
        def run():
            dirty, fd = _lineorder()
            answer = {r.tid for r in dirty.where("suppkey", "<", 10)}

            # With relaxation: one closure + one grouped fix computation.
            wc_relax = WorkCounter()
            relax = relax_fd(dirty, answer, fd, FilterSide.LHS, counter=wc_relax)
            compute_fd_fixes(
                dirty, fd, relax.relaxed_tids(answer), counter=wc_relax
            )

            # Without: per violating group, a full-dataset traversal
            # (the offline baseline's candidate computation).
            from repro.baselines import OfflineCleaner

            wc_offline = WorkCounter()
            OfflineCleaner().clean(dirty, [fd], counter=wc_offline)
            return wc_relax.total(), wc_offline.total()

        relax_work, offline_work = benchmark.pedantic(run, rounds=1, iterations=1)
        print(
            f"\n=== Ablation 1 — relaxation {relax_work:,} wu vs "
            f"per-group traversal {offline_work:,} wu ==="
        )
        assert relax_work < offline_work


class TestAblationPruning:
    """Dirty-group statistics skip relaxation for clean query answers."""

    def test_pruning_saves_scans_on_clean_queries(self, benchmark):
        def run():
            # 20% dirty: most point queries touch only clean groups.
            dirty, fd = _lineorder(frac=0.2)

            with_stats = TableState(relation=dirty)
            with_stats.add_rule(fd)  # precomputes statistics
            without_stats = TableState(relation=dirty)
            without_stats.rules.append(fd)  # no statistics

            clean_keys = sorted(
                set(range(200)) - {k[0] for k in with_stats.statistics.per_fd[
                    "phi_ok_sk"].dirty_groups}
            )[:10]
            for key in clean_keys:
                answer = {r.tid for r in dirty.where("orderkey", "=", key)}
                clean_sigma(with_stats, answer, where_attrs=["orderkey"],
                            projection=["suppkey"])
                clean_sigma(without_stats, answer, where_attrs=["orderkey"],
                            projection=["suppkey"])
            return (
                with_stats.counter.tuples_scanned,
                without_stats.counter.tuples_scanned,
            )

        pruned, unpruned = benchmark.pedantic(run, rounds=1, iterations=1)
        print(
            f"\n=== Ablation 2 — scans with pruning {pruned:,} vs "
            f"without {unpruned:,} ==="
        )
        assert pruned < unpruned


class TestAblationIncrementalThetaJoin:
    """The incremental matrix never rechecks cells; a fresh matrix does."""

    def test_incremental_matrix_fewer_comparisons(self, benchmark):
        def run():
            raw = [(i, 100.0 + i, 0.01 * i) for i in range(600)]
            rel = Relation.from_rows(
                [("k", ColumnType.INT), ("price", ColumnType.FLOAT),
                 ("discount", ColumnType.FLOAT)],
                raw, name="t",
            )
            rel, _ = inject_numeric_errors(rel, "discount", 0.05, seed=121)
            dc = DenialConstraint(
                [Predicate(0, "price", "<", 1, "price"),
                 Predicate(0, "discount", ">", 1, "discount")],
                name="dc",
            )
            batches = [set(range(i * 60, (i + 1) * 60)) for i in range(10)]

            wc_inc = WorkCounter()
            matrix = ThetaJoinMatrix(rel, dc, sqrt_p=8, counter=wc_inc)
            for batch in batches:
                matrix.check_partial(batch)

            wc_fresh = WorkCounter()
            for batch in batches:
                fresh = ThetaJoinMatrix(rel, dc, sqrt_p=8, counter=wc_fresh)
                fresh.check_partial(batch)
            return wc_inc.comparisons, wc_fresh.comparisons

        incremental, fresh = benchmark.pedantic(run, rounds=1, iterations=1)
        print(
            f"\n=== Ablation 3 — incremental theta-join {incremental:,} cmp vs "
            f"fresh-per-query {fresh:,} cmp ==="
        )
        assert incremental < fresh
