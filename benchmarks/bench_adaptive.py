"""Adaptive cost model vs hand-tuned configurations (BENCH_adaptive.json).

Three workload shapes from the paper's experiment grid, each run under a
grid of forced configurations and under full auto mode
(``DaisyConfig(parallelism="auto", batch_strategy="auto")``):

* **fig07-style** — the strategy-switch FD workload (lineorder,
  random-selectivity queries, cost model on), across forced pool shapes;
* **fig09-style** — the rule-sharing batch workload, across forced batch
  strategies (shared / sequential) and pool shapes;
* **fig12-style** — a DC detection workload (price/discount theta-join,
  partial + full checks), across forced pool shapes.

Two gates (binding at full scale):

1. **Parity** — auto's work units equal the forced oracle its decisions
   correspond to exactly (pool choices never change work units; uniform
   batch choices have a forced twin).
2. **Competitiveness** — auto's work units are within 1.2× of the *best*
   hand-tuned configuration of each workload, i.e. the model never pays
   more than 20% over the per-workload optimum for not being hand-tuned.

``BENCH_adaptive.json`` additionally records every run's wall clock, the
decision counts by (kind, choice), and the planner's modeled-vs-observed
cost per decision kind, so regressions in the pricing itself are visible.
"""

from __future__ import annotations

import time
from collections import Counter

from _harness import RunResult, bench_scale, print_series, record_benchmark, scaled
from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import ssb, workloads
from repro.datasets.errors import inject_numeric_errors
from repro.parallel import fork_available
from repro.relation import ColumnType, Relation

NUM_ROWS = 2400
NUM_ORDERKEYS = 300
NUM_SUPPKEYS = 300
NUM_QUERIES = 45
ERROR_GROUP_FRACTION = 0.25

DC_ROWS = 1200
DC_CELL_FRACTION = 0.02

AUTO_WORKERS = 4
WORK_RATIO_GATE = 1.2


def _fd_inputs():
    dirty, fd, _ = ssb.dirty_lineorder(
        scaled(NUM_ROWS), scaled(NUM_ORDERKEYS), scaled(NUM_SUPPKEYS),
        error_group_fraction=ERROR_GROUP_FRACTION, seed=103,
    )
    queries = workloads.random_selectivity_queries(
        "lineorder", "orderkey", scaled(NUM_ORDERKEYS),
        scaled(NUM_QUERIES, minimum=5), seed=103,
        projection="orderkey, suppkey",
    )
    return dirty, [fd], queries


def _dc_inputs():
    n = scaled(DC_ROWS, minimum=200)
    raw = [(i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6)) for i in range(n)]
    rel = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dirty, _ = inject_numeric_errors(
        rel, "discount", cell_fraction=DC_CELL_FRACTION, magnitude=3.0, seed=105
    )
    dc = DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )
    step = max(1, n // 6)
    queries = [
        f"SELECT orderkey, discount FROM lineorder "
        f"WHERE orderkey >= {lo} AND orderkey < {lo + step}"
        for lo in range(0, n, step * 2)
    ]
    queries.append("SELECT orderkey FROM lineorder WHERE extended_price > 0")
    return dirty, [dc], queries


def _decision_summary(decisions) -> dict:
    counts = Counter((d.kind, d.choice) for d in decisions)
    observed = [
        d for d in decisions if d.observed_cost is not None and d.raw_units > 0
    ]
    ratios = {}
    for kind in {d.pass_kind for d in observed}:
        of_kind = [d for d in observed if d.pass_kind == kind]
        ratios[kind] = sum(d.observed_cost / d.raw_units for d in of_kind) / len(
            of_kind
        )
    return {
        "choices": {f"{kind}:{choice}": n for (kind, choice), n in sorted(counts.items())},
        "observed_over_raw_by_pass_kind": ratios,
    }


def _run_config(
    make_inputs, label: str, batch: bool, use_cost_model: bool, **config_kwargs
) -> RunResult:
    relation, rules, queries = make_inputs()
    daisy = Daisy(
        config=DaisyConfig(
            use_cost_model=use_cost_model,
            expected_queries=len(queries),
            **config_kwargs,
        )
    )
    daisy.register_table("lineorder", relation)
    for rule in rules:
        daisy.add_rule("lineorder", rule)
    with daisy.connect() as session:
        started = time.perf_counter()
        if batch:
            report = session.execute_batch(list(queries)).report
        else:
            report = session.execute_workload(list(queries))
        seconds = time.perf_counter() - started
        decisions = list(session.planner.decisions)
    return RunResult(
        label=label,
        seconds=seconds,
        work_units=daisy.total_work(),
        cumulative_seconds=report.cumulative_seconds(),
        switch_index=report.switch_query_index,
        extras={"decisions": _decision_summary(decisions)},
    )


def _forced_pool_grid() -> list[tuple[str, dict]]:
    grid = [
        ("serial", {}),
        ("thread:2", {"parallelism": 2, "pool": "thread"}),
        ("thread:4", {"parallelism": 4, "pool": "thread"}),
    ]
    if fork_available():
        grid.append(("process:2", {"parallelism": 2, "pool": "process"}))
    return grid


def _series_payload(results: dict[str, RunResult]) -> dict:
    return {
        name: {
            "seconds": r.seconds,
            "work_units": r.work_units,
            "switch_index": r.switch_index,
            **r.extras,
        }
        for name, r in results.items()
    }


def _gate(results: dict[str, RunResult], auto_name: str = "auto") -> dict:
    forced = {k: v for k, v in results.items() if k != auto_name}
    best_name = min(forced, key=lambda k: forced[k].work_units)
    best = forced[best_name].work_units
    auto = results[auto_name].work_units
    return {
        "best_forced": best_name,
        "best_forced_work_units": best,
        "auto_work_units": auto,
        "auto_over_best_work_ratio": auto / best if best else float("inf"),
    }


def test_fig07_strategy_switch_grid(benchmark):
    def run_all():
        results: dict[str, RunResult] = {}
        for name, kwargs in _forced_pool_grid():
            results[name] = _run_config(
                _fd_inputs, f"fig07 {name}", batch=False,
                use_cost_model=True, **kwargs,
            )
        results["auto"] = _run_config(
            _fd_inputs, "fig07 auto", batch=False, use_cost_model=True,
            parallelism="auto", auto_max_workers=AUTO_WORKERS,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_series("Adaptive — fig07 strategy-switch grid", list(results.values()))
    gate = _gate(results)
    record_benchmark(
        "adaptive",
        {"fig07_strategy_switch": {**_series_payload(results), "gate": gate}},
    )
    # Pool choices never change work units or the switch point: auto is
    # byte-identical to every forced pool shape (binding at every scale).
    serial = results["serial"]
    for name, result in results.items():
        assert result.work_units == serial.work_units, name
        assert result.switch_index == serial.switch_index, name
    assert gate["auto_over_best_work_ratio"] <= WORK_RATIO_GATE


def test_fig09_batch_strategy_grid(benchmark):
    def run_all():
        results: dict[str, RunResult] = {}
        for name, kwargs in (
            ("shared", {"batch_strategy": "shared"}),
            ("sequential", {"batch_strategy": "sequential"}),
            ("shared+thread:4", {
                "batch_strategy": "shared", "parallelism": 4, "pool": "thread",
            }),
        ):
            results[name] = _run_config(
                _fd_inputs, f"fig09 batch {name}", batch=True,
                use_cost_model=False, **kwargs,
            )
        results["auto"] = _run_config(
            _fd_inputs, "fig09 batch auto", batch=True, use_cost_model=False,
            batch_strategy="auto", parallelism="auto",
            auto_max_workers=AUTO_WORKERS,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_series("Adaptive — fig09 batch-strategy grid", list(results.values()))
    gate = _gate(results)
    record_benchmark(
        "adaptive",
        {"fig09_batch_strategy": {**_series_payload(results), "gate": gate}},
    )
    # The auto run's recorded choices must match one forced twin exactly.
    choices = {
        key.split(":", 1)[1]
        for key in results["auto"].extras["decisions"]["choices"]
        if key.startswith("batch_strategy:")
    }
    if choices == {"shared"}:
        # Pool shape doesn't move work units, so the plain shared run is
        # the work-unit oracle regardless of auto's pool choices.
        assert results["auto"].work_units == results["shared"].work_units
    elif choices == {"sequential"}:
        assert results["auto"].work_units == results["sequential"].work_units
    if bench_scale() >= 1.0:
        assert gate["auto_over_best_work_ratio"] <= WORK_RATIO_GATE


def test_fig12_dc_detection_grid(benchmark):
    def run_all():
        results: dict[str, RunResult] = {}
        for name, kwargs in _forced_pool_grid():
            results[name] = _run_config(
                _dc_inputs, f"fig12 {name}", batch=False,
                use_cost_model=False, **kwargs,
            )
        results["auto"] = _run_config(
            _dc_inputs, "fig12 auto", batch=False, use_cost_model=False,
            parallelism="auto", auto_max_workers=AUTO_WORKERS,
        )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_series("Adaptive — fig12 DC detection grid", list(results.values()))
    gate = _gate(results)
    auto_choices = results["auto"].extras["decisions"]["choices"]
    record_benchmark(
        "adaptive",
        {"fig12_dc_detection": {**_series_payload(results), "gate": gate}},
    )
    serial = results["serial"]
    for name, result in results.items():
        assert result.work_units == serial.work_units, name
    assert gate["auto_over_best_work_ratio"] <= WORK_RATIO_GATE
    # The decision log shows real escalation: at full scale the big checks
    # leave serial (the 1.2M-pair full-matrix estimate prices far above
    # the fan-out overheads).
    if bench_scale() >= 1.0 and fork_available():
        escalated = sum(
            n for key, n in auto_choices.items()
            if key.startswith("pool:") and not key.endswith(":serial")
        )
        assert escalated > 0
