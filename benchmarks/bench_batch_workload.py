"""Batched vs sequential workload execution (the rule-sharing batch API).

The fig07-style setup — lineorder with the orderkey → suppkey FD and a
random-selectivity workload whose non-overlapping ranges cover the whole
orderkey domain — runs three ways:

* sequential ``Session.execute_workload`` (one cleaning pass per query),
* ``Session.execute_batch`` with rule sharing disabled (the A/B control:
  the same entry point, sequential semantics),
* ``Session.execute_batch`` with rule sharing (one shared relaxation /
  detection pass for the whole rule group).

Expected shape: the batched run performs strictly fewer work units than
either sequential variant while returning byte-identical query results, and
``BENCH_batch_workload.json`` records the speedup the CI smoke job tracks.
"""

from _harness import (
    bench_scale,
    print_series,
    record_benchmark,
    run_daisy,
    run_daisy_batch,
    scaled,
    speedup,
)
from repro.datasets import ssb, workloads

NUM_ROWS = 2400
NUM_ORDERKEYS = 300
NUM_SUPPKEYS = 300
NUM_QUERIES = 45
ERROR_GROUP_FRACTION = 0.25


def _setup():
    dirty, fd, _ = ssb.dirty_lineorder(
        scaled(NUM_ROWS), scaled(NUM_ORDERKEYS), scaled(NUM_SUPPKEYS),
        error_group_fraction=ERROR_GROUP_FRACTION, seed=103,
    )
    queries = workloads.random_selectivity_queries(
        "lineorder", "orderkey", scaled(NUM_ORDERKEYS),
        scaled(NUM_QUERIES, minimum=5), seed=103,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run_all():
    dirty, fd, queries = _setup()
    sequential = run_daisy(
        dirty, [fd], queries, use_cost_model=False, label="Daisy sequential"
    )
    dirty2, fd2, queries2 = _setup()
    unshared = run_daisy_batch(
        dirty2, [fd2], queries2, rule_sharing=False,
        label="Daisy batch (no sharing)",
    )
    dirty3, fd3, queries3 = _setup()
    batched = run_daisy_batch(
        dirty3, [fd3], queries3, label="Daisy batch (rule sharing)"
    )
    return sequential, unshared, batched


def test_batch_workload(benchmark):
    sequential, unshared, batched = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )
    print_series(
        "Batched vs sequential workload (fig07-style)",
        [sequential, unshared, batched],
    )
    record_benchmark(
        "batch_workload",
        {
            "config": {
                "rows": scaled(NUM_ROWS),
                "orderkeys": scaled(NUM_ORDERKEYS),
                "queries": scaled(NUM_QUERIES, minimum=5),
                "error_group_fraction": ERROR_GROUP_FRACTION,
            },
            "sequential": {
                "seconds": sequential.seconds,
                "work_units": sequential.work_units,
            },
            "batch_no_sharing": {
                "seconds": unshared.seconds,
                "work_units": unshared.work_units,
            },
            "batch_rule_sharing": {
                "seconds": batched.seconds,
                "work_units": batched.work_units,
                **batched.extras,
            },
            "speedup_batched_over_sequential": speedup(batched, sequential),
            "work_ratio_sequential_over_batched": (
                sequential.work_units / batched.work_units
                if batched.work_units else float("inf")
            ),
        },
    )
    assert batched.extras["rule_groups"] == 1
    # At smoke scale the fixed per-batch costs (double filtering, member
    # pruning) dominate the tiny workload, so the comparative assertions
    # only apply at full scale; tiny runs just record.
    if bench_scale() >= 1.0:
        # The shared pass must do strictly less detection work than
        # per-query cleaning…
        assert batched.work_units < sequential.work_units
        assert batched.work_units < unshared.work_units
        # …and wall-clock must not regress materially.
        assert batched.seconds <= sequential.seconds * 1.25


def test_batch_repairs_match_offline():
    """The batch's shared pass repairs the workload's footprint like the
    offline cleaner would (byte-for-byte result parity with *sequential*
    execution is pinned separately, on the hospital and air-quality parity
    fixtures in tests/test_api.py — this workload's lhs-range filters make
    sequential answers order-dependent, so only repair equivalence is a
    stable cross-check here)."""
    from repro import Daisy, DaisyConfig
    from repro.baselines import OfflineCleaner

    dirty, fd, queries = _setup()
    d_batch = Daisy(config=DaisyConfig(use_cost_model=False))
    d_batch.register_table("lineorder", dirty)
    d_batch.add_rule("lineorder", fd)
    with d_batch.connect() as session:
        batch = session.execute_batch(queries)
    assert len(batch) == len(queries)
    assert d_batch.probabilistic_cells("lineorder") > 0

    dirty2, fd2, _ = _setup()
    offline_rel, _report = OfflineCleaner().clean(dirty2, [fd2])
    repaired = d_batch.table("lineorder")
    # The full-coverage workload footprint == the whole table, so the
    # batch's repaired candidate sets equal the offline cleaner's.
    offline_by_tid = offline_rel.tid_index()
    for row in repaired.rows:
        assert row.values == offline_by_tid[row.tid].values
