"""Kernel-layer speedup: NumPy columnar kernels vs the pure-Python oracle.

The engine-level figure benchmarks (Figs 5/9) measure whole workloads,
where repair and possible-worlds evaluation dominate; the kernel backend's
win lives in the columnar substrate underneath.  This benchmark times that
layer directly — sorted-index construction, FD grouping/detection,
hash/group indexes, boolean-mask filters, and searchsorted window
derivation — on fig05-shaped (100% violated orderkeys) and fig09-shaped
(40% violated orderkeys) lineorder grids at 1x and 10x the default row
count, with both backends fed identical data and asserted byte-identical
before timing.

Records per-op and aggregate python/numpy speedups in BENCH_kernels.json.
Gate (default scale, 1x grid): aggregate speedup >= 3x on both grids.
"""

import bisect
import time

import pytest

from _harness import bench_scale, record_benchmark, scaled
from repro.datasets import ssb
from repro.detection.fd_detector import detect_fd_violations
from repro.engine.stats import WorkCounter
from repro.relation.columnview import ColumnView
from repro.relation.kernels import COLUMN_NUMPY, COLUMN_PYTHON, HAVE_NUMPY

NUM_ROWS = scaled(6000, minimum=300)
NUM_SUPPKEYS = 60
REPEATS = 5

GRIDS = {
    # (error_group_fraction, num_orderkeys, seed): Fig. 5 violates every
    # orderkey group; Fig. 9's knob is the fraction of violated groups.
    "fig05": dict(num_orderkeys=scaled(300, 20), group_fraction=1.0, seed=101),
    "fig09": dict(num_orderkeys=scaled(300, 20), group_fraction=0.4, seed=909),
}

SORT_ATTRS = ("orderkey", "suppkey", "extended_price")
# The linear-scan ('!=') filter volume of a Figs 5/9 workload: a few dozen
# queries, each evaluating predicates over the int and float columns.
FILTER_PROBES = tuple(
    (attr, "!=", value)
    for attr in ("suppkey", "quantity", "extended_price")
    for value in (3, 10)
)


def _grid(rows, spec):
    dirty, fd, _ = ssb.dirty_lineorder(
        rows,
        spec["num_orderkeys"],
        NUM_SUPPKEYS,
        error_group_fraction=spec["group_fraction"],
        seed=spec["seed"],
    )
    return dirty, fd


def _view(relation, backend):
    view = ColumnView.from_relation(relation)
    view.column_backend = backend
    return view


def _time_backend(relation, fd, backend):
    """Per-op best-of-N seconds for one backend; returns (times, evidence).

    Each repetition builds one fresh view (untimed — the row-to-column
    materialization of ``ColumnView.from_relation`` is identical for both
    backends and would drown the layer under measure) and runs the whole
    op suite against it, timing each op separately.  Sharing the view
    across the suite mirrors the engine, where a table's column view
    serves every query of a workload: the first op to touch an attribute
    pays its typed-mirror/index build, later ops reuse it.  Across
    repetitions the view is rebuilt so no op ever sees its *own* cached
    result, and the evidence reprs let the caller assert cross-backend
    byte-identity.
    """
    from repro.relation import kernels

    times: dict[str, float] = {}
    evidence: dict[str, str] = {}

    # Stripe window probes: the theta-join matrix probes every concrete
    # row of the filtered side, so the probe list is the whole column.
    # Assembled untimed — the workload hands them in.
    probes = [
        v for v in relation.column_view().columns["extended_price"]
        if v is not None
    ]

    def sorted_indexes(view):
        return [
            (view.sorted_column(a).values[:5], view.sorted_column(a).positions[:5])
            for a in SORT_ATTRS
        ]

    def fd_detect(view):
        return detect_fd_violations(relation, fd, counter=WorkCounter(), view=view)

    def group_indexes(view):
        hashed = view.hash_column("orderkey")
        order, groups = view.group_index(("orderkey", "suppkey"))
        return (len(hashed), len(order), sum(len(g) for g in groups.values()))

    def mask_filters(view):
        return [
            sorted(view.filter_positions(attr, op, value))[:5]
            for attr, op, value in FILTER_PROBES
        ]

    def windows(view):
        # One searchsorted batch vs the per-probe bisect loop of the
        # theta-join's sort-based inequality join.  The sorted column was
        # built by the sorted_index op above — the stripe reuses it, and
        # under numpy its carried exact array skips values re-validation.
        base = view.sorted_column("extended_price")
        if backend == COLUMN_NUMPY:
            cuts = kernels.search_cuts(
                base.values, probes, "<", values_exact=base.exact
            )
            return None if cuts is None else cuts[:5].tolist()
        return [bisect.bisect_left(base.values, p) for p in probes][:5]

    suite = [
        ("sorted_index", sorted_indexes),
        ("fd_detection", fd_detect),
        ("hash_group_index", group_indexes),
        ("mask_filter", mask_filters),
        ("stripe_windows", windows),
    ]
    results: dict[str, object] = {}
    for _ in range(REPEATS):
        view = _view(relation, backend)
        for op, fn in suite:
            t0 = time.perf_counter()
            results[op] = fn(view)
            elapsed = time.perf_counter() - t0
            times[op] = min(times.get(op, float("inf")), elapsed)
    report = results["fd_detection"]
    results["fd_detection"] = (
        len(report.groups), sorted(report.violating_tids())[:10]
    )
    for op in times:
        evidence[op] = repr(results[op])
    return times, evidence


def _run_grid(name, spec, multiplier):
    rows = NUM_ROWS * multiplier
    relation, fd = _grid(rows, spec)
    py_times, py_ev = _time_backend(relation, fd, COLUMN_PYTHON)
    np_times, np_ev = _time_backend(relation, fd, COLUMN_NUMPY)
    assert np_ev == py_ev, f"{name}: backends disagree — kernels are broken"
    per_op = {
        op: {
            "python_s": round(py_times[op], 6),
            "numpy_s": round(np_times[op], 6),
            "speedup": round(py_times[op] / max(np_times[op], 1e-9), 2),
        }
        for op in py_times
    }
    total_py = sum(py_times.values())
    total_np = sum(np_times.values())
    return {
        "rows": rows,
        "ops": per_op,
        "aggregate_speedup": round(total_py / max(total_np, 1e-9), 2),
    }


@pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
def test_kernel_speedups():
    payload = {}
    for grid_name, spec in GRIDS.items():
        for multiplier in (1, 10):
            section = _run_grid(grid_name, spec, multiplier)
            payload[f"{grid_name}_x{multiplier}"] = section
            print(
                f"{grid_name} x{multiplier} ({section['rows']} rows): "
                f"aggregate {section['aggregate_speedup']}x  "
                + "  ".join(
                    f"{op}={d['speedup']}x" for op, d in section["ops"].items()
                )
            )
    record_benchmark("kernels", payload)
    # The >=3x gate applies at default scale on the 1x grids (the fig05/
    # fig09 default shapes); smoke runs just record.
    if bench_scale() >= 1.0:
        assert payload["fig05_x1"]["aggregate_speedup"] >= 3.0
        assert payload["fig09_x1"]["aggregate_speedup"] >= 3.0
