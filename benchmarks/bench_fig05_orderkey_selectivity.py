"""Figure 5 — SP query cost when varying orderkey selectivity.

Paper setup: lineorder with 5K/10K/100K distinct orderkeys, every orderkey
violating ``orderkey → suppkey`` (10% of each orderkey's rows edited);
50 non-overlapping SP queries of 2% selectivity with range filters on the
**rhs** (suppkey).  Expected shape: Daisy ≈ 2× faster than full cleaning,
with the gap narrowing as orderkey selectivity (and hence p, the candidate
count) grows.

Scaled here: 3000 rows, orderkey cardinalities {150, 300, 600}, 25 queries.
"""

import pytest

from _harness import print_series, run_daisy, run_offline, speedup
from repro.datasets import ssb, workloads

NUM_ROWS = 3000
NUM_SUPPKEYS = 60
NUM_QUERIES = 25
CARDINALITIES = (150, 300, 600)


def _setup(num_orderkeys: int):
    dirty, fd, _ = ssb.dirty_lineorder(
        NUM_ROWS, num_orderkeys, NUM_SUPPKEYS, seed=101
    )
    queries = workloads.range_queries(
        "lineorder", "suppkey", NUM_SUPPKEYS, NUM_QUERIES,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run_pair(num_orderkeys: int):
    dirty, fd, queries = _setup(num_orderkeys)
    daisy = run_daisy(
        dirty, [fd], queries, label=f"Daisy ({num_orderkeys} ok)",
        use_cost_model=False,
    )
    dirty2, fd2, queries2 = _setup(num_orderkeys)
    offline = run_offline(
        dirty2, [fd2], queries2, label=f"Full cleaning ({num_orderkeys} ok)"
    )
    return daisy, offline


@pytest.mark.parametrize("num_orderkeys", CARDINALITIES)
def test_fig05_series(benchmark, num_orderkeys):
    daisy, offline = benchmark.pedantic(
        _run_pair, args=(num_orderkeys,), rounds=1, iterations=1
    )
    print_series(
        f"Fig.5 — orderkey selectivity {num_orderkeys}", [daisy, offline]
    )
    print(f"  Daisy speedup over full cleaning: {speedup(daisy, offline):.2f}x")
    # Shape check: Daisy beats offline cleaning on wall clock and work.
    assert daisy.seconds < offline.seconds
    assert daisy.work_units < offline.work_units
