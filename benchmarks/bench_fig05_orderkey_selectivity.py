"""Figure 5 — SP query cost when varying orderkey selectivity.

Paper setup: lineorder with 5K/10K/100K distinct orderkeys, every orderkey
violating ``orderkey → suppkey`` (10% of each orderkey's rows edited);
50 non-overlapping SP queries of 2% selectivity with range filters on the
**rhs** (suppkey).  Expected shape: Daisy ≈ 2× faster than full cleaning,
with the gap narrowing as orderkey selectivity (and hence p, the candidate
count) grows.

Scaled here: 3000 rows, orderkey cardinalities {150, 300, 600}, 25 queries.
"""

import pytest

from _harness import (
    bench_scale,
    compare_backends,
    print_series,
    record_benchmark,
    run_daisy,
    run_offline,
    scaled,
    speedup,
)
from repro.datasets import ssb, workloads

NUM_ROWS = scaled(3000, minimum=200)
NUM_SUPPKEYS = 60
NUM_QUERIES = scaled(25, minimum=5)
CARDINALITIES = (scaled(150, 10), scaled(300, 20), scaled(600, 40))


def _setup(num_orderkeys: int):
    dirty, fd, _ = ssb.dirty_lineorder(
        NUM_ROWS, num_orderkeys, NUM_SUPPKEYS, seed=101
    )
    queries = workloads.range_queries(
        "lineorder", "suppkey", NUM_SUPPKEYS, NUM_QUERIES,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run_pair(num_orderkeys: int):
    dirty, fd, queries = _setup(num_orderkeys)
    daisy = run_daisy(
        dirty, [fd], queries, label=f"Daisy ({num_orderkeys} ok)",
        use_cost_model=False,
    )
    dirty2, fd2, queries2 = _setup(num_orderkeys)
    offline = run_offline(
        dirty2, [fd2], queries2, label=f"Full cleaning ({num_orderkeys} ok)"
    )
    return daisy, offline


@pytest.mark.parametrize("num_orderkeys", CARDINALITIES)
def test_fig05_series(benchmark, num_orderkeys):
    daisy, offline = benchmark.pedantic(
        _run_pair, args=(num_orderkeys,), rounds=1, iterations=1
    )
    print_series(
        f"Fig.5 — orderkey selectivity {num_orderkeys}", [daisy, offline]
    )
    print(f"  Daisy speedup over full cleaning: {speedup(daisy, offline):.2f}x")
    # Shape check: Daisy beats offline cleaning on wall clock and work.
    # At smoke scale fixed costs dominate and timing ratios are noise, so
    # the assertions only apply at full scale; tiny runs just record.
    if bench_scale() >= 1.0:
        assert daisy.seconds < offline.seconds
        assert daisy.work_units < offline.work_units


def test_fig05_backend_comparison():
    """Columnar vs row-store backend on the full Fig. 5 workload grid.

    Records per-backend wall clock in BENCH_fig05.json; at default scale the
    columnar backend (sorted/hash selection indexes, index-driven relaxation,
    positional FD grouping) clears 2x over the row-store oracle.
    """
    per_cardinality = {}
    total = {"columnar": 0.0, "rowstore": 0.0}
    for num_orderkeys in CARDINALITIES:
        def make_inputs(num_orderkeys=num_orderkeys):
            dirty, fd, queries = _setup(num_orderkeys)
            return dirty, [fd], queries

        comparison = compare_backends(make_inputs)
        per_cardinality[str(num_orderkeys)] = comparison
        total["columnar"] += comparison["columnar"]["seconds"]
        total["rowstore"] += comparison["rowstore"]["seconds"]
    aggregate = total["rowstore"] / total["columnar"]
    record_benchmark(
        "fig05",
        {
            "backend_comparison": per_cardinality,
            "backend_speedup_aggregate": aggregate,
        },
    )
    print(f"\n  fig05 columnar speedup over rowstore: {aggregate:.2f}x")
    # Identical results are asserted in tests/test_backend_parity.py; here we
    # gate the performance claim (soft floor: timing noise on shared CI; at
    # smoke scale fixed costs dominate, so only recording applies).
    if bench_scale() >= 1.0:
        assert aggregate >= 1.4
