"""Figure 6 — SP query cost when varying suppkey selectivity.

Paper setup: lineorder versions with 100/1K/10K distinct suppkeys; queries
contain range filters on the **lhs** (orderkey), so relaxation needs the
transitive closure.  Expected shape: Daisy still beats full cleaning, and
cost rises as suppkey selectivity shrinks (each erroneous suppkey matches
more orderkeys → more candidate values).

Scaled here: 3000 rows, 300 orderkeys, suppkey cardinalities {15, 60, 240},
25 queries on orderkey ranges.
"""

import pytest

from _harness import print_series, run_daisy, run_offline, speedup
from repro.datasets import ssb, workloads

NUM_ROWS = 3000
NUM_ORDERKEYS = 300
NUM_QUERIES = 25
CARDINALITIES = (15, 60, 240)


def _setup(num_suppkeys: int):
    dirty, fd, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, num_suppkeys, seed=102
    )
    queries = workloads.range_queries(
        "lineorder", "orderkey", NUM_ORDERKEYS, NUM_QUERIES,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run_pair(num_suppkeys: int):
    dirty, fd, queries = _setup(num_suppkeys)
    daisy = run_daisy(
        dirty, [fd], queries, label=f"Daisy ({num_suppkeys} sk)",
        use_cost_model=False,
    )
    dirty2, fd2, queries2 = _setup(num_suppkeys)
    offline = run_offline(
        dirty2, [fd2], queries2, label=f"Full cleaning ({num_suppkeys} sk)"
    )
    return daisy, offline


@pytest.mark.parametrize("num_suppkeys", CARDINALITIES)
def test_fig06_series(benchmark, num_suppkeys):
    daisy, offline = benchmark.pedantic(
        _run_pair, args=(num_suppkeys,), rounds=1, iterations=1
    )
    print_series(
        f"Fig.6 — suppkey selectivity {num_suppkeys}", [daisy, offline]
    )
    print(f"  Daisy speedup over full cleaning: {speedup(daisy, offline):.2f}x")
    # Daisy wins on work units despite the transitive closure.
    assert daisy.work_units < offline.work_units
