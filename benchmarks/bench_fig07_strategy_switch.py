"""Figure 7 — switching from incremental to full cleaning.

Paper setup: 90 random-selectivity queries over the 100K-orderkey lineorder
with *low* suppkey cardinality (each suppkey co-occurs with many orderkeys,
so candidate sets are large and per-query probabilistic updates expensive).
Expected shape: always-incremental ("Daisy w/o cost") is the slowest; Daisy
with the cost model starts incremental, switches to cleaning the remaining
dirty part, and ends cheaper than both alternatives.

Scaled here: 2400 rows, 300 orderkeys/suppkeys (mostly 1:1 mapping so the
FD value graph stays fragmented), 25% of orderkeys dirty, 45 queries — this
keeps per-query cleaning local so the cost model switches mid-workload
instead of after the first (giant-component) query.
"""

from _harness import print_cumulative, print_series, run_daisy, run_offline
from repro.datasets import ssb, workloads

NUM_ROWS = 2400
NUM_ORDERKEYS = 300
NUM_SUPPKEYS = 300
NUM_QUERIES = 45
ERROR_GROUP_FRACTION = 0.25


def _setup():
    dirty, fd, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS,
        error_group_fraction=ERROR_GROUP_FRACTION, seed=103,
    )
    queries = workloads.random_selectivity_queries(
        "lineorder", "orderkey", NUM_ORDERKEYS, NUM_QUERIES, seed=103,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run_all():
    dirty, fd, queries = _setup()
    incremental = run_daisy(
        dirty, [fd], queries, use_cost_model=False, label="Daisy w/o cost"
    )
    dirty2, fd2, queries2 = _setup()
    switching = run_daisy(
        dirty2, [fd2], queries2, use_cost_model=True, label="Daisy"
    )
    dirty3, fd3, queries3 = _setup()
    offline = run_offline(dirty3, [fd3], queries3, label="Full")
    return incremental, switching, offline


def test_fig07_strategy_switch(benchmark):
    incremental, switching, offline = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )
    print_series("Fig.7 — strategy switch (totals)", [incremental, switching, offline])
    print_cumulative("Fig.7", [incremental, switching, offline], step=9)
    # Shape: Daisy-with-cost-model is never worse than always-incremental.
    assert switching.seconds <= incremental.seconds * 1.25
    # The cost model actually fired mid-workload (not at the very start,
    # not never).
    assert switching.switch_index is not None
    assert 0 < switching.switch_index < NUM_QUERIES
