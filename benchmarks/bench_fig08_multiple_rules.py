"""Figure 8 — single rule vs two overlapping rules.

Paper setup: lineorder ⋈ supplier materialized into one table; rules
ϕ: orderkey → suppkey and ψ: address → suppkey share the suppkey attribute.
50 non-overlapping queries covering the dataset.  Expected shape: both
systems slow down with two rules; Daisy's multi-rule merge keeps the gap
small (the difference starts ~3.5× between 1 and 2 rules and drops as more
data is cleaned), while offline cleaning pays separate traversals per rule.

Scaled here: 2000 rows, 200 orderkeys, 50 suppkeys, 20 queries.
"""

import pytest

from _harness import print_series, run_daisy, run_offline
from repro.constraints import FunctionalDependency
from repro.datasets import ssb, workloads

NUM_ROWS = 2000
NUM_ORDERKEYS = 200
NUM_SUPPKEYS = 50
NUM_QUERIES = 20


def _denormalized():
    """lineorder joined with supplier: adds the address attribute."""
    dirty, phi, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS, seed=104
    )
    # address is determined by the (true) suppkey; the suppkey edits injected
    # above then violate psi: address -> suppkey as well.
    from repro.relation.relation import Relation, Row
    from repro.relation.schema import Column, ColumnType

    addr_col = Column("address", ColumnType.STRING)
    schema = dirty.schema.concat(
        type(dirty.schema)([addr_col])
    )
    supp_idx = dirty.schema.index_of("suppkey")
    clean = ssb.clean_lineorder(NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS, seed=104)
    rows = []
    for row, clean_row in zip(dirty.rows, clean.rows):
        true_supp = clean_row.values[supp_idx]
        rows.append(Row(row.tid, row.values + (f"addr_{true_supp:05d}",)))
    joined = Relation(schema, rows, name="lineorder")
    psi = FunctionalDependency("address", "suppkey", name="psi")
    return joined, phi, psi


def _queries():
    return workloads.range_queries(
        "lineorder", "orderkey", NUM_ORDERKEYS, NUM_QUERIES,
        projection="orderkey, suppkey, address",
    )


def _run(num_rules: int):
    joined, phi, psi = _denormalized()
    rules = [phi] if num_rules == 1 else [phi, psi]
    daisy = run_daisy(
        joined, rules, _queries(), use_cost_model=False,
        label=f"Daisy - {num_rules} rule(s)",
    )
    joined2, phi2, psi2 = _denormalized()
    rules2 = [phi2] if num_rules == 1 else [phi2, psi2]
    offline = run_offline(
        joined2, rules2, _queries(), label=f"Full - {num_rules} rule(s)"
    )
    return daisy, offline


@pytest.mark.parametrize("num_rules", (1, 2))
def test_fig08_rules(benchmark, num_rules):
    daisy, offline = benchmark.pedantic(_run, args=(num_rules,), rounds=1, iterations=1)
    print_series(f"Fig.8 — {num_rules} rule(s)", [daisy, offline])
    assert daisy.work_units < offline.work_units


def test_fig08_two_rules_cost_more_than_one(benchmark):
    def run_both():
        one, _ = _run(1)
        two, _ = _run(2)
        return one, two

    one, two = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_series("Fig.8 — Daisy 1 vs 2 rules", [one, two])
    assert two.work_units > one.work_units
