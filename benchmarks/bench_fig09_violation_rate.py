"""Figure 9 — cost with an increasing number of violations (20%–80%).

Paper setup: lineorder versions with 20/40/60/80% of orderkeys erroneous;
50 SP queries of 2% selectivity.  Expected shape: Daisy beats full cleaning
at every rate, and the gap widens with the error rate (offline's per-group
traversals grow with the number of dirty groups; Daisy's precomputed
dirty-group statistics prune checks for clean values).

Scaled here: 2500 rows, 250 orderkeys, 60 suppkeys, 20 queries.
"""

import pytest

from _harness import (
    bench_scale,
    compare_backends,
    print_series,
    record_benchmark,
    run_daisy,
    run_offline,
    scaled,
    speedup,
)
from repro.datasets import ssb, workloads

NUM_ROWS = scaled(2500, minimum=200)
NUM_ORDERKEYS = scaled(250, minimum=20)
NUM_SUPPKEYS = 60
NUM_QUERIES = scaled(20, minimum=5)
RATES = (0.2, 0.4, 0.6, 0.8)


def _setup(rate: float):
    dirty, fd, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS,
        error_group_fraction=rate, seed=105,
    )
    queries = workloads.range_queries(
        "lineorder", "suppkey", NUM_SUPPKEYS, NUM_QUERIES,
        projection="orderkey, suppkey",
    )
    return dirty, fd, queries


def _run(rate: float):
    dirty, fd, queries = _setup(rate)
    daisy = run_daisy(
        dirty, [fd], queries, use_cost_model=False,
        label=f"Daisy ({rate:.0%} dirty)",
    )
    dirty2, fd2, queries2 = _setup(rate)
    offline = run_offline(
        dirty2, [fd2], queries2, label=f"Full cleaning ({rate:.0%} dirty)"
    )
    return daisy, offline


@pytest.mark.parametrize("rate", RATES)
def test_fig09_violation_rate(benchmark, rate):
    daisy, offline = benchmark.pedantic(_run, args=(rate,), rounds=1, iterations=1)
    print_series(f"Fig.9 — violation rate {rate:.0%}", [daisy, offline])
    print(f"  speedup: {speedup(daisy, offline):.2f}x")
    # At low rates Daisy's relaxation scans can exceed offline's work units
    # while still winning wall-clock (cheap scans vs expensive group
    # traversals); at high rates Daisy wins both.  Assert wall clock with
    # a noise margin, and work units from 40% up.
    # Timing/work shape assertions only hold at full scale (smoke runs are
    # dominated by fixed costs and scheduler noise).
    if bench_scale() >= 1.0:
        assert daisy.seconds < offline.seconds * 1.2
        if rate >= 0.4:
            assert daisy.work_units < offline.work_units


def test_fig09_gap_widens_with_rate(benchmark):
    def run_extremes():
        d20, o20 = _run(0.2)
        d80, o80 = _run(0.8)
        return d20, o20, d80, o80

    d20, o20, d80, o80 = benchmark.pedantic(run_extremes, rounds=1, iterations=1)
    gap_low = o20.work_units - d20.work_units
    gap_high = o80.work_units - d80.work_units
    print_series("Fig.9 — extremes", [d20, o20, d80, o80])
    assert gap_high > gap_low


def test_fig09_backend_comparison():
    """Columnar vs row-store backend across the violation-rate grid.

    The columnar gains hold at every error rate: the incremental
    ColumnView patching keeps the derived indexes warm even when 80% of
    groups are repaired.  Recorded in BENCH_fig09.json.
    """
    per_rate = {}
    total = {"columnar": 0.0, "rowstore": 0.0}
    for rate in RATES:
        def make_inputs(rate=rate):
            dirty, fd, queries = _setup(rate)
            return dirty, [fd], queries

        comparison = compare_backends(make_inputs)
        per_rate[f"{rate:.0%}"] = comparison
        total["columnar"] += comparison["columnar"]["seconds"]
        total["rowstore"] += comparison["rowstore"]["seconds"]
    aggregate = total["rowstore"] / total["columnar"]
    record_benchmark(
        "fig09",
        {
            "backend_comparison": per_rate,
            "backend_speedup_aggregate": aggregate,
        },
    )
    print(f"\n  fig09 columnar speedup over rowstore: {aggregate:.2f}x")
    if bench_scale() >= 1.0:
        assert aggregate >= 1.4
