"""Figure 10 — general DCs with inequality conditions.

Paper setup: rule ¬(t1.extended_price < t2.extended_price ∧
t1.discount > t2.discount) over lineorder; versions with 0.2% / 2% / 20%
violations; 60 SP range queries.  Expected shape: at low violation rates
Daisy is ~1.3× faster (partition + intra-partition pruning of the partial
theta-join); at 20% the Algorithm 2 estimator predicts low accuracy and
Daisy cleans the whole matrix, matching offline's cost.

Scaled here: 800 rows (theta-joins are quadratic), 12 queries.
The price/discount relation is monotone in the clean version so only
injected cells violate.
"""

import pytest

from _harness import print_series, run_daisy, run_offline, speedup
from repro.constraints import DenialConstraint, Predicate
from repro.datasets.errors import inject_numeric_errors
from repro.datasets import workloads
from repro.relation import ColumnType, Relation

NUM_ROWS = 800
NUM_QUERIES = 12


def price_discount_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )


def _setup(cell_fraction: float):
    # Monotone clean data: higher price -> higher discount.
    raw = [
        (i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6))
        for i in range(NUM_ROWS)
    ]
    rel = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dirty, _report = inject_numeric_errors(
        rel, "discount", cell_fraction=cell_fraction, magnitude=3.0, seed=106
    )
    queries = workloads.range_queries(
        "lineorder", "extended_price", int(100.0 + NUM_ROWS * 10.0), NUM_QUERIES,
        projection="orderkey, extended_price, discount",
    )
    return dirty, queries


def _run(cell_fraction: float, threshold: float = 0.2):
    dirty, queries = _setup(cell_fraction)
    daisy = run_daisy(
        dirty, [price_discount_dc()], queries, use_cost_model=False,
        label=f"Daisy ({cell_fraction:.1%} dirty cells)",
        dc_error_threshold=threshold,
    )
    dirty2, queries2 = _setup(cell_fraction)
    offline = run_offline(
        dirty2, [price_discount_dc()], queries2,
        label=f"Full cleaning ({cell_fraction:.1%})",
    )
    return daisy, offline


@pytest.mark.parametrize("fraction", (0.002, 0.02, 0.2))
def test_fig10_dc_violation_levels(benchmark, fraction):
    daisy, offline = benchmark.pedantic(_run, args=(fraction,), rounds=1, iterations=1)
    print_series(f"Fig.10 — DC, {fraction:.1%} dirty cells", [daisy, offline])
    print(f"  speedup: {speedup(daisy, offline):.2f}x")
    if fraction <= 0.02:
        # Low rates: the partial theta-join saves comparisons.
        assert daisy.work_units <= offline.work_units


def test_fig10_estimator_escalates_at_high_rate(benchmark):
    """At the highest rate Algorithm 2 escalates to a full matrix check."""
    from repro import Daisy

    def run():
        dirty, queries = _setup(0.2)
        d = Daisy(use_cost_model=False, dc_error_threshold=0.2)
        d.register_table("lineorder", dirty)
        d.add_rule("lineorder", price_discount_dc())
        d.execute(queries[0])
        state = d.states["lineorder"]
        return state.is_fully_cleaned(price_discount_dc())

    escalated = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== Fig.10 — estimator escalation at 20% dirty:", escalated, "===")
    assert escalated
