"""Figure 11 — SPJ (join) query cost.

Paper setup: 50 join queries over lineorder ⋈ supplier; lineorder violates
ϕ: orderkey → suppkey, supplier violates ψ: address → suppkey; queries
filter lineorder then join.  Expected shape: Daisy beats full cleaning by
(a) relaxation-restricted comparisons and (b) incrementally updating the
join result, while offline pays a full probabilistic join after cleaning.

Scaled here: 1500 lineorder rows, 150 orderkeys, 40 suppliers, 15 queries.
"""

from _harness import print_cumulative, print_series, run_daisy, run_offline, speedup
from repro.datasets import ssb, workloads

NUM_ROWS = 1500
NUM_ORDERKEYS = 150
NUM_SUPPKEYS = 40
NUM_QUERIES = 15


def _setup():
    lineorder, phi, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS, seed=107
    )
    supplier, psi, _ = ssb.dirty_supplier(
        NUM_SUPPKEYS, error_fraction=0.1, seed=107
    )
    queries = workloads.join_queries(NUM_QUERIES, NUM_ORDERKEYS)
    return lineorder, phi, supplier, psi, queries


def _run_pair():
    lineorder, phi, supplier, psi, queries = _setup()
    daisy = run_daisy(
        lineorder, [phi], queries, use_cost_model=False, label="Daisy",
        extra_tables={"supplier": supplier}, extra_rules={"supplier": [psi]},
    )
    lineorder2, phi2, supplier2, psi2, queries2 = _setup()
    offline = run_offline(
        lineorder2, [phi2], queries2, label="Full",
        extra_tables={"supplier": supplier2}, extra_rules={"supplier": [psi2]},
    )
    return daisy, offline


def test_fig11_join_queries(benchmark):
    daisy, offline = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    print_series("Fig.11 — SPJ queries (totals)", [daisy, offline])
    print_cumulative("Fig.11", [daisy, offline], step=3)
    print(f"  speedup: {speedup(daisy, offline):.2f}x")
    assert daisy.seconds < offline.seconds * 1.2
