"""Figure 12 — mixed SP + SPJ workload with the strategy switch.

Paper setup: 90 mixed queries (SP and joins, random selectivities) over the
100K-orderkey lineorder with 500 distinct suppkeys; Daisy predicts after ~30
queries that cleaning the remaining dirty part is cheaper and switches,
beating both always-incremental and offline.

Scaled here: 2000 rows, 250 orderkeys/suppkeys, 25% dirty orderkeys,
30 mixed queries.
"""

from _harness import print_cumulative, print_series, run_daisy, run_offline
from repro.datasets import ssb, workloads

NUM_ROWS = 2000
NUM_ORDERKEYS = 250
NUM_SUPPKEYS = 250
NUM_QUERIES = 30


def _setup():
    lineorder, phi, _ = ssb.dirty_lineorder(
        NUM_ROWS, NUM_ORDERKEYS, NUM_SUPPKEYS,
        error_group_fraction=0.25, seed=108,
    )
    supplier, psi, _ = ssb.dirty_supplier(
        NUM_SUPPKEYS, error_fraction=0.1, seed=108
    )
    queries = workloads.mixed_workload(NUM_QUERIES, NUM_ORDERKEYS, seed=108)
    return lineorder, phi, supplier, psi, queries


def _run_all():
    lo, phi, sup, psi, queries = _setup()
    incremental = run_daisy(
        lo, [phi], queries, use_cost_model=False, label="Daisy w/o cost",
        extra_tables={"supplier": sup}, extra_rules={"supplier": [psi]},
    )
    lo2, phi2, sup2, psi2, queries2 = _setup()
    switching = run_daisy(
        lo2, [phi2], queries2, use_cost_model=True, label="Daisy",
        extra_tables={"supplier": sup2}, extra_rules={"supplier": [psi2]},
    )
    lo3, phi3, sup3, psi3, queries3 = _setup()
    offline = run_offline(
        lo3, [phi3], queries3, label="Full",
        extra_tables={"supplier": sup3}, extra_rules={"supplier": [psi3]},
    )
    return incremental, switching, offline


def test_fig12_mixed_workload(benchmark):
    incremental, switching, offline = benchmark.pedantic(
        _run_all, rounds=1, iterations=1
    )
    print_series(
        "Fig.12 — mixed workload (totals)", [incremental, switching, offline]
    )
    print_cumulative("Fig.12", [incremental, switching, offline], step=6)
    # Cost-model Daisy must not lose to always-incremental.
    assert switching.seconds <= incremental.seconds * 1.25
