"""Figure 13 — complex SSB queries Q1/Q2/Q3.

Paper setup: Q1 = lineorder ⋈ supplier with a suppkey range filter; Q2 adds
part and date joins plus GROUP BY year, brand; Q3 adds the customer join.
Expected shape: because the planner pushes the cleaning operator down to the
lineorder ⋈ supplier join, cleaning cost is (nearly) independent of the
query complexity — Q2/Q3 cost more only through their extra plain joins.

Scaled here: 1200 rows, 120 orderkeys, 30 suppliers, 8 queries per shape.
"""

import pytest

from _harness import RunResult, print_cumulative, print_series, run_daisy
from repro.datasets import ssb, workloads

NUM_ROWS = 1200
NUM_ORDERKEYS = 120
NUM_SUPPKEYS = 30
NUM_QUERIES = 8


def _instance():
    return ssb.generate_instance(
        num_rows=NUM_ROWS,
        num_orderkeys=NUM_ORDERKEYS,
        num_suppkeys=NUM_SUPPKEYS,
        seed=109,
    )


def _run(variant: str) -> RunResult:
    inst = _instance()
    supp_fd = ssb.FunctionalDependency("address", "suppkey", name="psi")
    queries = workloads.ssb_complex_workload(variant, NUM_QUERIES, NUM_SUPPKEYS)
    return run_daisy(
        inst.lineorder,
        [inst.fd],
        queries,
        use_cost_model=False,
        label=variant.upper(),
        extra_tables={
            "supplier": inst.supplier,
            "part": inst.part,
            "date": inst.date,
            "customer": inst.customer,
        },
        extra_rules={"supplier": [supp_fd]},
    )


@pytest.mark.parametrize("variant", ("q1", "q2", "q3"))
def test_fig13_query_shapes(benchmark, variant):
    result = benchmark.pedantic(_run, args=(variant,), rounds=1, iterations=1)
    print_series(f"Fig.13 — {variant.upper()}", [result])
    assert result.seconds > 0


def test_fig13_cleaning_cost_independent_of_complexity(benchmark):
    """Cleaning work (errors fixed, scans on lineorder/supplier) should be
    roughly the same across Q1/Q2/Q3 — extra joins add plain query cost only."""

    def run_all():
        return _run("q1"), _run("q2"), _run("q3")

    q1, q2, q3 = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_cumulative("Fig.13 (cumulative)", [q1, q2, q3], step=2)
    # Work units include the extra joins; the *cleaning* part is bounded by
    # Q1's total (same rules, same lineorder/supplier scope in all three).
    assert q2.seconds >= q1.seconds * 0.5
    assert q3.seconds >= q2.seconds * 0.5
    # Cleaning happened in every variant (errors were fixed on first touch),
    # so the probabilistic dataset ends identical in size: verified by the
    # work-unit ordering being driven by join count, not by cleaning blowup.
    assert q3.work_units >= q2.work_units >= q1.work_units * 0.8
