"""Incremental matrix maintenance — patch vs rebuild (BENCH_incremental.json).

The evolving-data scenario the maintenance layer exists for: a detection
matrix has been built and fully checked, then a small fraction of cells is
updated externally.  Two ways to bring detection state back in sync:

* **rebuild** — re-derive every stripe from the new snapshot and re-check
  every candidate cell the invalidation marks (with pre-maintenance
  semantics — no diff-based invalidation — a rebuild would re-check *all*
  cells; we report both);
* **patch** — :func:`repro.detection.maintenance.sync_matrix` re-routes
  moved tids into the maintained global sort order, re-derives only touched
  stripes, and invalidates only cells involving an affected stripe.

Both strategies are asserted byte-identical first — same structural
fingerprint, same re-checked violations, same work units — then timed.
The headline series is end-to-end sync+re-check at a ≤1% touched-cell
rate; the gate (full scale only) is **patch ≥ 5× faster than the
pre-maintenance rebuild-and-recheck-everything baseline**, and the
maintenance step alone is also reported patch-vs-rebuild.
"""

from __future__ import annotations

import time

import pytest

from _harness import bench_scale, record_benchmark, scaled
from repro.constraints import DenialConstraint, Predicate
from repro.detection.maintenance import (
    MaintenancePolicy,
    matrix_fingerprint,
    sync_matrix,
)
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.relation import ColumnType, Relation

NUM_ROWS = scaled(4000, minimum=300)
SQRT_P = 12
#: Touched-cell fractions to sweep (of the relation's matrix-attr cells).
TOUCH_FRACTIONS = (0.002, 0.01, 0.05)
REPEATS = 3


def price_discount_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )


def base_relation() -> Relation:
    raw = [
        (i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6))
        for i in range(NUM_ROWS)
    ]
    return Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )


def update_batch(fraction: float) -> dict:
    """~``fraction`` of the matrix-attr cells, arriving the way evolving
    data does: *clustered* (recent rows, one region) and *small* (value
    corrections).  Price nudges re-sort rows locally — including across the
    cluster's stripe boundary — and discount corrections change content
    only; both produce a handful of genuine new violations, not a blast.
    """
    touched_cells = max(2, int(NUM_ROWS * 2 * fraction))
    cluster = max(touched_cells, NUM_ROWS // SQRT_P)  # ~1-2 stripes wide
    updates: dict = {}
    tid = 0
    while len(updates) < touched_cells and tid < cluster:
        if tid % 2 == 0:
            # Local re-sort: swap-distance ~7 rows in primary order.
            updates[(tid, "extended_price")] = 100.0 + (tid + 7) * 10.0 + 0.5
        else:
            # Content-only correction, slightly off the global trend.
            updates[(tid, "discount")] = round(0.01 + tid * 0.0001, 6) + 0.0005
        tid += 1
    return updates


def built_matrix(rel: Relation) -> ThetaJoinMatrix:
    matrix = ThetaJoinMatrix(rel, price_discount_dc(), sqrt_p=SQRT_P,
                             counter=WorkCounter())
    matrix.check_full()
    return matrix


def _sync_and_recheck(matrix: ThetaJoinMatrix, updates: dict, mode: str):
    """One strategy end to end: sync, then re-check what it invalidated."""
    t0 = time.perf_counter()
    report = sync_matrix(matrix, updates, MaintenancePolicy(mode=mode))
    t_sync = time.perf_counter() - t0
    t0 = time.perf_counter()
    violations = matrix.check_full()
    t_check = time.perf_counter() - t0
    return report, violations, t_sync, t_check


def _legacy_rebuild_and_recheck(matrix: ThetaJoinMatrix, updates: dict):
    """The pre-maintenance baseline: rebuild, forget everything, re-check
    every cell (no diff-based invalidation existed)."""
    report, _v, t_sync, _t = _sync_and_recheck(matrix, updates, "rebuild")
    matrix.checked_cells.clear()
    t0 = time.perf_counter()
    violations = matrix.check_full()
    t_check = time.perf_counter() - t0
    return report, violations, t_sync, t_check


class TestIncrementalMatrixBench:
    def test_patch_vs_rebuild(self):
        rel = base_relation()
        series = []
        for fraction in TOUCH_FRACTIONS:
            updates = update_batch(fraction)
            runs: dict[str, list[float]] = {
                "patch": [], "rebuild": [], "legacy": [],
            }
            checked_counts: dict[str, int] = {}
            fingerprints = {}
            violations = {}
            for _ in range(REPEATS):
                m_patch = built_matrix(rel)
                m_rebuild = built_matrix(rel)
                m_legacy = built_matrix(rel)

                rep_p, v_p, s_p, c_p = _sync_and_recheck(
                    m_patch, updates, "patch"
                )
                rep_r, v_r, s_r, c_r = _sync_and_recheck(
                    m_rebuild, updates, "rebuild"
                )
                _rep_l, v_l, s_l, c_l = _legacy_rebuild_and_recheck(
                    m_legacy, updates
                )
                runs["patch"].append(s_p + c_p)
                runs["rebuild"].append(s_r + c_r)
                runs["legacy"].append(s_l + c_l)
                checked_counts = {
                    "patch": rep_p.cells_invalidated,
                    "rebuild": rep_r.cells_invalidated,
                    "legacy": m_legacy.total_cells(),
                }
                fingerprints = {
                    "patch": matrix_fingerprint(m_patch, include_sorted=True),
                    "rebuild": matrix_fingerprint(m_rebuild, include_sorted=True),
                    "legacy": matrix_fingerprint(m_legacy, include_sorted=True),
                }
                violations = {"patch": v_p, "rebuild": v_r, "legacy": v_l}

            # Byte-identity gates (every scale): all three strategies land on
            # the same structure; patch and rebuild re-check the same cells
            # and find the same violations; the legacy full re-check's
            # violation set covers them.
            assert fingerprints["patch"] == fingerprints["rebuild"]
            assert fingerprints["patch"] == fingerprints["legacy"]
            assert violations["patch"] == violations["rebuild"]
            assert checked_counts["patch"] == checked_counts["rebuild"]
            assert set(
                (v.t1, v.t2) for v in violations["patch"]
            ) <= set((v.t1, v.t2) for v in violations["legacy"])

            best = {k: min(v) for k, v in runs.items()}
            series.append(
                {
                    "touched_fraction": fraction,
                    "touched_cells": len(updates),
                    "cells_rechecked": checked_counts,
                    "seconds": best,
                    "speedup_vs_legacy": best["legacy"] / best["patch"],
                    "speedup_vs_rebuild": best["rebuild"] / best["patch"],
                }
            )

        payload = {
            "rows": NUM_ROWS,
            "sqrt_p": SQRT_P,
            "total_cells": SQRT_P * (SQRT_P + 1) // 2,
            "repeats": REPEATS,
            "series": series,
            "gate": "patch >= 5x legacy rebuild-and-recheck at <=1% touched",
        }
        record_benchmark("incremental", payload)

        one_percent = next(
            s for s in series if s["touched_fraction"] == 0.01
        )
        for s in series:
            print(
                f"touched {s['touched_fraction']:.1%}: "
                f"patch {s['seconds']['patch'] * 1e3:.1f}ms  "
                f"rebuild {s['seconds']['rebuild'] * 1e3:.1f}ms  "
                f"legacy {s['seconds']['legacy'] * 1e3:.1f}ms  "
                f"speedup vs legacy {s['speedup_vs_legacy']:.1f}x"
            )
        if bench_scale() >= 1.0:
            assert one_percent["speedup_vs_legacy"] >= 5.0, (
                "patch maintenance must beat the pre-maintenance "
                "rebuild-and-recheck baseline by >= 5x at 1% touched cells"
            )

    def test_maintenance_step_alone(self):
        """Structure maintenance only (no re-checking): patch vs rebuild."""
        rel = base_relation()
        updates = update_batch(0.01)
        timings = {"patch": [], "rebuild": []}
        for _ in range(REPEATS):
            for mode in ("patch", "rebuild"):
                matrix = built_matrix(rel)
                t0 = time.perf_counter()
                sync_matrix(matrix, updates, MaintenancePolicy(mode=mode))
                # Force the lazy per-stripe sorts so both strategies pay
                # their full structural cost inside the timed region.
                for cols in matrix._stripe_cols:
                    for attr in matrix.attrs:
                        cols.sorted_by(attr)
                timings[mode].append(time.perf_counter() - t0)
        best = {k: min(v) for k, v in timings.items()}
        record_benchmark(
            "incremental",
            {
                "maintenance_only": {
                    "seconds": best,
                    "speedup": best["rebuild"] / best["patch"],
                }
            },
        )
        print(
            f"maintenance only: patch {best['patch'] * 1e3:.2f}ms, "
            f"rebuild {best['rebuild'] * 1e3:.2f}ms "
            f"({best['rebuild'] / best['patch']:.1f}x)"
        )
        if bench_scale() >= 1.0:
            assert best["patch"] < best["rebuild"], (
                "positional patching must beat a wholesale rebuild at 1% "
                "touched cells"
            )


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s"])
