"""Parallel scaling — sharded detection and cleaning (BENCH_parallel.json).

Fig. 9-scale detection workload (2500-row lineorder, 2% dirty discount
cells, the Fig. 10 price/discount DC) checked three ways:

* **serial** — the oracle ``check_full`` (also yields per-cell timings);
* **fanned out** — the same candidate cells over a fork-process
  :class:`~repro.parallel.ExecutorPool` at 1/2/4 workers, for each matrix
  granularity (``sqrt_p`` = the detection shard axis);
* **sharded clean_sigma** — a hospital FD workload through sessions at
  1/2/4 workers × shard counts (the operator-layer path).

Every configuration asserts the core guarantee: violations, repairs, and
merged per-worker :class:`~repro.engine.stats.WorkCounter` totals are
byte-identical to serial (work units equal ±0).

Speedup is reported two ways, because wall clock depends on the host:

* ``speedup_wall`` — measured wall-clock ratio.  Real parallel speedup
  needs real cores; on a single-core container this hovers around 1.0 (the
  fan-out serializes) minus pool overhead.
* ``speedup_modeled`` — serial time over the LPT critical path of the
  *measured per-cell times* scheduled onto W workers, plus the pool
  overhead *measured on this machine* (fork + result pickling: parallel
  wall minus in-task compute).  This is the same single-process-simulator
  convention the work-unit model uses (see ``repro/engine/stats.py``): a
  deterministic, machine-honest projection of what W cores execute.

The ≥ 1.5× gate binds at full scale on ``speedup_modeled`` at 4 workers,
and additionally on measured wall clock when the host actually has ≥ 4 CPUs.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import bench_scale, record_benchmark, scaled
from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets import hospital
from repro.datasets.errors import inject_numeric_errors
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.parallel import fork_available, make_pool
from repro.relation import ColumnType, Relation

NUM_ROWS = scaled(2500, minimum=250)
CELL_FRACTION = 0.02
WORKER_COUNTS = (1, 2, 4)
SQRT_PS = (4, 8)

HOSPITAL_ROWS = scaled(600, minimum=120)
SHARD_COUNTS = (2, 4, 8)


def price_discount_dc() -> DenialConstraint:
    return DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )


def _detection_inputs() -> tuple[Relation, DenialConstraint]:
    raw = [
        (i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6))
        for i in range(NUM_ROWS)
    ]
    rel = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dirty, _ = inject_numeric_errors(
        rel, "discount", cell_fraction=CELL_FRACTION, magnitude=3.0, seed=105
    )
    return dirty, price_discount_dc()


def _lpt_makespan(times: list[float], workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers`` bins."""
    bins = [0.0] * max(1, workers)
    for t in sorted(times, reverse=True):
        shortest = min(range(len(bins)), key=lambda i: bins[i])
        bins[shortest] += t
    return max(bins)


def _detection_series(sqrt_p: int) -> dict:
    dirty, dc = _detection_inputs()

    # Serial oracle + per-cell timings (the inputs of the LPT model).
    serial_matrix = ThetaJoinMatrix(dirty, dc, sqrt_p=sqrt_p, counter=WorkCounter())
    cells = serial_matrix.candidate_cells()
    cell_times: list[float] = []
    serial_violations = []
    serial_started = time.perf_counter()
    for i, j in cells:
        cell_started = time.perf_counter()
        serial_violations.extend(serial_matrix._check_cell(i, j))
        cell_times.append(time.perf_counter() - cell_started)
        serial_matrix.checked_cells.add((i, j))
    serial_seconds = time.perf_counter() - serial_started
    serial_work = serial_matrix.counter.as_dict()

    pool_kind = "process" if fork_available() else "thread"
    out: dict = {
        "rows": NUM_ROWS,
        "sqrt_p": sqrt_p,
        "cells": len(cells),
        "violations": len(serial_violations),
        "serial_seconds": serial_seconds,
        "work_units_serial": serial_work["total"],
        "pool": pool_kind,
        "workers": {},
    }

    for workers in WORKER_COUNTS:
        fanned = ThetaJoinMatrix(dirty, dc, sqrt_p=sqrt_p, counter=WorkCounter())
        pool = make_pool(pool_kind, workers)
        started = time.perf_counter()
        violations = fanned.check_full(pool=pool)
        wall = time.perf_counter() - started
        pool.close()

        assert violations == serial_violations, "parallel run must be byte-identical"
        merged_work = fanned.counter.as_dict()
        assert merged_work == serial_work, "merged work units must equal serial ±0"

        # Pool overhead measured on this host: wall minus the compute the
        # tasks performed (on one core the compute fully serializes, so the
        # difference is fork + result-pickling cost).
        overhead = max(0.0, wall - sum(cell_times)) if workers > 1 else 0.0
        modeled = _lpt_makespan(cell_times, workers) + overhead
        out["workers"][str(workers)] = {
            "wall_seconds": wall,
            "speedup_wall": serial_seconds / wall if wall > 0 else float("inf"),
            "modeled_seconds": modeled,
            "speedup_modeled": serial_seconds / modeled if modeled > 0 else float("inf"),
            "overhead_seconds": overhead,
            "work_units_merged": merged_work["total"],
            "work_equal_serial": merged_work == serial_work,
        }
    return out


@pytest.mark.parametrize("sqrt_p", SQRT_PS)
def test_detection_scaling(benchmark, sqrt_p):
    series = benchmark.pedantic(
        _detection_series, args=(sqrt_p,), rounds=1, iterations=1
    )
    record_benchmark("parallel", {
        f"detection_sqrt_p_{sqrt_p}": series,
        "cpus": os.cpu_count(),
    })
    print(f"\n=== Parallel detection (sqrt_p={sqrt_p}, {series['rows']} rows, "
          f"{series['cells']} cells) ===")
    print(f"  serial: {series['serial_seconds']:.3f}s, "
          f"{series['work_units_serial']:,} wu")
    for workers, stats in series["workers"].items():
        print(f"  {workers} workers [{series['pool']}]: "
              f"wall {stats['wall_seconds']:.3f}s ({stats['speedup_wall']:.2f}x), "
              f"modeled {stats['modeled_seconds']:.3f}s "
              f"({stats['speedup_modeled']:.2f}x), work equal: "
              f"{stats['work_equal_serial']}")
    four = series["workers"]["4"]
    assert four["work_equal_serial"]
    if bench_scale() >= 1.0:
        # The scheduling gate: 4 workers must clear 1.5x on the modeled
        # critical path everywhere, and on measured wall clock when the
        # host actually has the cores to show it.
        assert four["speedup_modeled"] >= 1.5
        if (os.cpu_count() or 1) >= 4 and series["pool"] == "process":
            assert four["speedup_wall"] >= 1.5


def _hospital_engine(**config_kwargs) -> Daisy:
    instance = hospital.generate_instance(num_rows=HOSPITAL_ROWS, seed=11)
    daisy = Daisy(config=DaisyConfig(use_cost_model=False, **config_kwargs))
    daisy.register_table("hospital", instance.dirty)
    for fd in instance.rules:
        daisy.add_rule("hospital", fd)
    return daisy


def _hospital_queries() -> list[str]:
    lo, hi, step = 10000, 10000 + HOSPITAL_ROWS * 4, max(1, HOSPITAL_ROWS // 2)
    out = []
    for start in range(lo, hi, step * 4):
        out.append(
            "SELECT city, zip FROM hospital "
            f"WHERE zip >= {start} AND zip < {start + step * 4}"
        )
    return out


def _sharded_clean_series() -> dict:
    queries = _hospital_queries()

    def run(**config_kwargs) -> tuple[float, dict]:
        daisy = _hospital_engine(**config_kwargs)
        with daisy.connect() as session:
            started = time.perf_counter()
            rows = [session.execute(q).relation.to_plain_rows() for q in queries]
            seconds = time.perf_counter() - started
        return seconds, {
            "rows": rows,
            "work": daisy.work_counter("hospital").as_dict(),
        }

    serial_seconds, serial = run()
    out: dict = {
        "rows": HOSPITAL_ROWS,
        "queries": len(queries),
        "serial_seconds": serial_seconds,
        "work_units_serial": serial["work"]["total"],
        "grid": {},
    }
    for workers in (2, 4):
        for shards in SHARD_COUNTS:
            seconds, result = run(
                parallelism=workers, num_shards=shards, pool="thread"
            )
            assert result["rows"] == serial["rows"], "sharded answers must match"
            assert result["work"] == serial["work"], "work units must equal serial"
            out["grid"][f"{workers}w_{shards}s"] = {
                "wall_seconds": seconds,
                "work_equal_serial": True,
            }
    return out


def test_sharded_clean_parity_grid(benchmark):
    series = benchmark.pedantic(_sharded_clean_series, rounds=1, iterations=1)
    record_benchmark("parallel", {"sharded_clean_sigma": series})
    print(f"\n=== Sharded clean_sigma grid ({series['rows']} hospital rows, "
          f"{series['queries']} queries) ===")
    print(f"  serial: {series['serial_seconds']:.3f}s, "
          f"{series['work_units_serial']:,} wu")
    for key, stats in series["grid"].items():
        print(f"  {key}: wall {stats['wall_seconds']:.3f}s, "
              f"work equal: {stats['work_equal_serial']}")
    assert all(s["work_equal_serial"] for s in series["grid"].values())
