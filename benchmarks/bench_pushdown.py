"""Storage pushdown — indexed SQLite windows vs full-stripe materialization.

Two grids, both at 10x the laptop scale of the figure benches and both
under a capped ``memory_budget_mb``:

* **Fig.5-style selectivity grid** — the theta-join candidate window
  (``low <= value <= high``) served as one indexed ``BETWEEN`` scan by the
  SQLite mirror vs materializing the full column from its stripe chunks
  and scanning in Python.  Pushdown must clear 2x at low selectivity,
  where the index touches a handful of rows and materialization still
  pays the whole column.

* **Fig.9-style storage-mode grid** — the same FD cleaning workload per
  violation rate across ``memory`` / ``mmap`` / ``sqlite`` / ``auto``,
  each mode in its own subprocess so peak RSS (``resource.getrusage``)
  is attributable per cell.  Work units must be byte-identical across
  modes (the parity contract), spill modes must keep their resident
  column bytes at the budget, and ``storage="auto"`` must land within
  1.2x of the best forced backend that respects the memory cap
  (``memory`` is recorded as the uncapped reference — under a real
  memory ceiling it is not an admissible operating point).

Assertions apply at full scale only; smoke runs (``REPRO_BENCH_SCALE``
< 1.0) just record.  Results go to ``BENCH_pushdown.json``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from _harness import bench_scale, record_benchmark, scaled
from repro.storage.sqlitebackend import SqliteBackend
from repro.storage.stripestore import StripeStore

REPO_ROOT = Path(__file__).resolve().parent.parent

NUM_ROWS = scaled(30000, minimum=400)
NUM_ORDERKEYS = scaled(1500, minimum=40)
NUM_SUPPKEYS = 60
NUM_QUERIES = scaled(10, minimum=4)
RATES = (0.2, 0.6)
MODES = ("memory", "mmap", "sqlite", "auto")
BUDGET_MB = 4
SELECTIVITIES = (0.001, 0.01, 0.1)


# -- Fig.5-style grid: window pushdown vs stripe materialization ---------------


def _window_column(n: int) -> list[float]:
    # Deterministic, collision-free, non-trivially ordered float column.
    return [round((i * 7919) % n + i / n, 6) for i in range(n)]


def _best_of(fn, repeats: int = 5) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_window_pushdown_vs_materialize(tmp_path):
    values = _window_column(NUM_ROWS)
    store = StripeStore(tmp_path / "stripes", memory_budget_mb=0)
    backend = SqliteBackend(tmp_path / "mirror.db")
    grid: dict[str, dict] = {}
    try:
        store.put_column("price", values)
        mirrored = backend.load_table({"price": values})
        assert "price" in mirrored
        generation = store.generation("price")
        ordered = sorted(values)
        for fraction in SELECTIVITIES:
            lo_idx = len(ordered) // 2
            hi_idx = min(len(ordered) - 1, lo_idx + max(1, int(len(ordered) * fraction)))
            low, high = ordered[lo_idx], ordered[hi_idx]

            push_secs, pushed = _best_of(
                lambda: backend.range_window("price", low, high)
            )

            def materialize() -> list[int]:
                column = store.load_column("price", generation)
                return [
                    pos for pos, v in enumerate(column)
                    if v is not None and low <= v <= high
                ]

            mat_secs, scanned = _best_of(materialize)
            assert pushed is not None
            assert sorted(pushed) == sorted(scanned)  # type: ignore[arg-type]
            grid[f"{fraction:g}"] = {
                "rows_matched": len(scanned),  # type: ignore[arg-type]
                "pushdown_seconds": push_secs,
                "materialize_seconds": mat_secs,
                "speedup": mat_secs / push_secs if push_secs > 0 else float("inf"),
            }
    finally:
        backend.close()
        store.close()

    record_benchmark(
        "pushdown", {"window_vs_materialize": {"rows": NUM_ROWS, "grid": grid}}
    )
    for fraction, cell in grid.items():
        print(
            f"  selectivity {fraction:>6}: pushdown {cell['pushdown_seconds']*1e3:8.3f}ms  "
            f"materialize {cell['materialize_seconds']*1e3:8.3f}ms  "
            f"({cell['speedup']:.1f}x, {cell['rows_matched']} rows)"
        )
    if bench_scale() >= 1.0:
        low_sel = grid[f"{min(SELECTIVITIES):g}"]
        assert low_sel["speedup"] >= 2.0, (
            "indexed BETWEEN should beat full-stripe materialization by 2x "
            f"at {min(SELECTIVITIES):g} selectivity, got {low_sel['speedup']:.2f}x"
        )


# -- Fig.9-style grid: storage modes under a capped budget ---------------------

#: Runs one (mode, rate) cell and prints a CELL= JSON line.  A subprocess
#: per cell is what makes ru_maxrss attributable to that cell alone.
_CELL_SHIM = """\
import json, resource, sys, time
from repro import Daisy, DaisyConfig
from repro.datasets import ssb, workloads

cfg = json.loads(sys.argv[1])
dirty, fd, _ = ssb.dirty_lineorder(
    cfg["rows"], cfg["orderkeys"], cfg["suppkeys"],
    error_group_fraction=cfg["rate"], seed=105,
)
queries = workloads.range_queries(
    "lineorder", "suppkey", cfg["suppkeys"], cfg["queries"],
    projection="orderkey, suppkey",
)
daisy = Daisy(config=DaisyConfig(
    use_cost_model=False, storage=cfg["mode"],
    memory_budget_mb=cfg["budget_mb"],
))
daisy.register_table("lineorder", dirty)
daisy.add_rule("lineorder", fd)
started = time.perf_counter()
with daisy.connect() as session:
    for sql in queries:
        session.execute(sql)
out = {
    "seconds": time.perf_counter() - started,
    "work_units": daisy.total_work(),
    "pinned": daisy.states["lineorder"].storage,
    "resident_bytes": 0, "spilled_bytes": 0,
    "evictions": 0, "chunk_reads": 0, "queries_served": 0,
}
for t in daisy.storage_manager.tables():
    out["resident_bytes"] += t.store.tracker.resident_bytes
    out["spilled_bytes"] += t.store.spilled_bytes()
    out["evictions"] += t.store.tracker.evictions
    out["chunk_reads"] += t.store.chunk_reads
    if t.sqlite is not None:
        out["queries_served"] += t.sqlite.queries_served
daisy.close()
out["peak_rss_kb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print("CELL=" + json.dumps(out))
"""


def _run_cell(mode: str, rate: float) -> dict:
    cfg = {
        "rows": NUM_ROWS, "orderkeys": NUM_ORDERKEYS,
        "suppkeys": NUM_SUPPKEYS, "queries": NUM_QUERIES,
        "rate": rate, "mode": mode, "budget_mb": BUDGET_MB,
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [sys.executable, "-c", _CELL_SHIM, json.dumps(cfg)],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True, timeout=900,
    )
    assert proc.returncode == 0, f"cell {mode}@{rate} failed:\n{proc.stderr}"
    for line in proc.stdout.splitlines():
        if line.startswith("CELL="):
            return json.loads(line[len("CELL="):])
    pytest.fail(f"cell {mode}@{rate} printed no CELL line:\n{proc.stdout}")


def test_storage_mode_grid():
    grid: dict[str, dict[str, dict]] = {}
    for rate in RATES:
        grid[f"{rate:g}"] = {}
        for mode in MODES:
            cell = _run_cell(mode, rate)
            grid[f"{rate:g}"][mode] = cell
            print(
                f"  rate {rate:.0%} {mode:>7} (pinned {cell['pinned']:>7}): "
                f"{cell['seconds']:7.2f}s  rss {cell['peak_rss_kb']/1024:6.0f}MB  "
                f"resident {cell['resident_bytes']/1e6:5.1f}MB  "
                f"evictions {cell['evictions']}"
            )

    record_benchmark(
        "pushdown",
        {
            "storage_mode_grid": {
                "rows": NUM_ROWS, "queries": NUM_QUERIES,
                "memory_budget_mb": BUDGET_MB, "grid": grid,
            }
        },
    )

    budget_bytes = BUDGET_MB * 1024 * 1024
    for rate_key, cells in grid.items():
        work = {mode: cells[mode]["work_units"] for mode in MODES}
        assert len(set(work.values())) == 1, (
            f"work units diverged across storage modes at rate {rate_key}: {work}"
        )
        if bench_scale() < 1.0:
            continue
        for mode in ("mmap", "sqlite"):
            # The LRU tracker keeps the entry being actively read even
            # when it alone exceeds the budget, so allow one column of
            # slack over the configured ceiling.
            assert cells[mode]["resident_bytes"] <= 2 * budget_bytes, (
                f"{mode} resident bytes {cells[mode]['resident_bytes']} "
                f"not capped near budget {budget_bytes} at rate {rate_key}"
            )
            assert cells[mode]["evictions"] > 0
            assert cells[mode]["chunk_reads"] > 0
        best_capped = min(cells["mmap"]["seconds"], cells["sqlite"]["seconds"])
        auto_ratio = cells["auto"]["seconds"] / best_capped
        print(f"  rate {rate_key}: auto is {auto_ratio:.2f}x the best capped backend")
        assert auto_ratio <= 1.2, (
            f"storage='auto' ({cells['auto']['seconds']:.2f}s, pinned "
            f"{cells['auto']['pinned']}) not within 1.2x of the best "
            f"budget-respecting backend ({best_capped:.2f}s) at rate {rate_key}"
        )
