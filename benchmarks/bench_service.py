"""Service tier — reads under concurrent writes (BENCH_service.json).

The scenario the snapshot-isolated scheduler exists for: several reader
clients issue selective queries against one table (``roster``) while a
writer client grinds through chunky external-update batches — each
followed by a full reclean-triggering scan — on a *different* table
(``ledger``).  The same submission-ordered request log runs twice:

* ``per-table`` — the service's default: one FIFO turnstile per table, so
  reads on ``roster`` never wait behind ``ledger``'s update batches;
* ``global-lock`` — the naive baseline: every request serializes through
  one turnstile, exactly what a single engine-wide mutex would do.

Both modes must produce **byte-identical responses** (same admission
order, same serial-equivalent semantics — asserted at every scale).  The
reported series is sustained QPS, p99 latency, and the reader-completion
wall: the speedup gate — readers finish ≥ 2× faster under per-table
scheduling than under the global lock — binds at full scale only.
"""

from __future__ import annotations

from _harness import bench_scale, record_benchmark, scaled
from repro import Daisy, DaisyConfig
from repro.metrics.timing import clock
from repro.relation import ColumnType, Relation
from repro.service import DaisyService, ServicePolicy, ServiceRequest

READ_ROWS = scaled(300, minimum=60)
WRITE_ROWS = scaled(1500, minimum=150)
READERS = 3
READS_PER_CLIENT = scaled(40, minimum=8)
WRITER_BATCHES = scaled(12, minimum=3)


def _engine() -> Daisy:
    engine = Daisy(config=DaisyConfig(use_cost_model=False))
    roster = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (10000 + i % 8, f"metro{i % 8}" if i % 5 else "smudge")
            for i in range(READ_ROWS)
        ],
        name="roster",
    )
    engine.register_table("roster", roster)
    engine.add_rule("roster", "zip -> city", name="fd_roster")
    groups = max(2, WRITE_ROWS // 4)
    ledger = Relation.from_rows(
        [("k", ColumnType.INT), ("v", ColumnType.STRING)],
        [
            (i % groups, f"item{i % 3}" if i % 7 else "typo")
            for i in range(WRITE_ROWS)
        ],
        name="ledger",
    )
    engine.register_table("ledger", ledger)
    engine.add_rule("ledger", "k -> v", name="fd_ledger")
    return engine


def _request_log() -> list[ServiceRequest]:
    """Writer batches first, then the reader streams: in global-lock mode
    every read queues behind the whole write burst; in per-table mode the
    reads only ever wait on each other."""
    log: list[ServiceRequest] = []
    seq = 0
    for batch in range(WRITER_BATCHES):
        cells = tuple(
            ((batch * 7 + j) % WRITE_ROWS, "v", f"item{(batch + j) % 3}")
            for j in range(5)
        )
        log.append(ServiceRequest(
            client="writer", seq=seq, kind="update_table",
            table="ledger", cells=cells,
        ))
        log.append(ServiceRequest(
            client="writer", seq=seq + 1, kind="execute",
            sql="SELECT k, v FROM ledger WHERE k >= 0",
        ))
        seq += 2
    reads = (
        "SELECT zip, city FROM roster WHERE zip = 10001",
        "SELECT city FROM roster WHERE zip >= 10005",
        "SELECT zip FROM roster WHERE city = 'metro2'",
    )
    for i in range(READERS * READS_PER_CLIENT):
        client = f"reader{i % READERS}"
        log.append(ServiceRequest(
            client=client, seq=i // READERS, kind="execute",
            sql=reads[i % len(reads)],
        ))
    return log


def _p99(seconds: list[float]) -> float:
    ordered = sorted(seconds)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def _run_mode(mode: str, log: list[ServiceRequest]) -> dict:
    engine = _engine()
    service = DaisyService(engine, policy=ServicePolicy(mode=mode))
    done_at: dict[int, float] = {}
    reader_done: list[float] = []
    with service:
        started = clock()
        futures = []
        for index, request in enumerate(log):
            future = service.submit(request)
            future.add_done_callback(
                lambda _f, i=index: done_at.__setitem__(i, clock())
            )
            futures.append(future)
        responses = [future.result(timeout=600) for future in futures]
        reader_done = [
            done_at[i] for i, request in enumerate(log)
            if request.client.startswith("reader")
        ]
        reader_wall = max(reader_done) - started
        total_wall = max(done_at.values()) - started
    latencies = [done_at[i] - started for i in range(len(log))]
    return {
        "mode": mode,
        "responses": responses,
        "admitted": len(service.admission_log),
        "reader_wall_seconds": reader_wall,
        "total_wall_seconds": total_wall,
        "qps": len(log) / total_wall if total_wall > 0 else float("inf"),
        "p99_seconds": _p99(latencies),
        "reader_p99_seconds": _p99(
            [done_at[i] - started for i, r in enumerate(log)
             if r.client.startswith("reader")]
        ),
    }


def _series() -> dict:
    log = _request_log()
    per_table = _run_mode("per-table", log)
    global_lock = _run_mode("global-lock", log)

    # Scheduling must never change answers: both modes replay the same
    # admission order, so every response is byte-identical across them.
    assert per_table["admitted"] == global_lock["admitted"] == len(log)
    for ours, naive in zip(per_table["responses"], global_lock["responses"]):
        assert ours.encode() == naive.encode(), "modes diverged"

    def public(stats: dict) -> dict:
        return {k: v for k, v in stats.items() if k != "responses"}

    speedup = (
        global_lock["reader_wall_seconds"] / per_table["reader_wall_seconds"]
        if per_table["reader_wall_seconds"] > 0 else float("inf")
    )
    return {
        "read_rows": READ_ROWS,
        "write_rows": WRITE_ROWS,
        "readers": READERS,
        "reads_per_client": READS_PER_CLIENT,
        "writer_batches": WRITER_BATCHES,
        "requests": len(log),
        "per_table": public(per_table),
        "global_lock": public(global_lock),
        "speedup_reads_under_writes": speedup,
    }


def test_reads_under_concurrent_writes(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    record_benchmark("service", {"reads_under_writes": series})
    print(f"\n=== Service tier: reads under concurrent writes "
          f"({series['requests']} requests, {series['read_rows']} roster rows, "
          f"{series['write_rows']} ledger rows) ===")
    for mode in ("per_table", "global_lock"):
        stats = series[mode]
        print(f"  {mode}: reader wall {stats['reader_wall_seconds']:.3f}s, "
              f"total {stats['total_wall_seconds']:.3f}s, "
              f"{stats['qps']:.1f} qps, p99 {stats['p99_seconds']:.3f}s")
    print(f"  speedup (reader wall, per-table over global-lock): "
          f"{series['speedup_reads_under_writes']:.2f}x")
    # The scheduling gate binds at full scale only; smoke runs just record.
    if bench_scale() >= 1.0:
        assert series["speedup_reads_under_writes"] >= 2.0
