"""Table 5 — repair accuracy: HoloClean vs DaisyH vs DaisyP on hospital data.

Paper setup: hospital 1K with master data; rule sets ϕ1 / ϕ1+ϕ2 / ϕ1+ϕ2+ϕ3;
precision/recall/F1 of (a) HoloClean's own domain + inference, (b) DaisyH =
Daisy's candidate domains + HoloClean inference, (c) DaisyP = Daisy's most
probable value.  Expected shape: with one rule HoloClean ≥ DaisyH > DaisyP;
with all rules Daisy-based domains match or beat HoloClean (whose domain
pruning drops true values).

Scaled here: 600 hospital rows, ~5% injected errors.
"""

import pytest

from repro import Daisy
from repro.baselines import HoloCleanLike, domains_from_daisy, most_probable_repairs
from repro.datasets import hospital
from repro.metrics import evaluate_repairs

NUM_ROWS = 600


def _instance():
    return hospital.generate_instance(num_rows=NUM_ROWS, seed=110)


def _daisy_cleaned(inst, rules):
    d = Daisy(use_cost_model=False)
    d.register_table("hospital", inst.dirty)
    for rule in rules:
        d.add_rule("hospital", rule)
    # The paper's 4 SP queries covering the dataset; a full-coverage scan.
    d.execute("SELECT * FROM hospital WHERE zip >= 0 AND zip < 99999")
    d.clean_table("hospital")
    return d.table("hospital")


def _truth_for(inst, rules):
    attrs = {fd.rhs for fd in rules} | {a for fd in rules for a in fd.lhs}
    return {
        key: value for key, value in inst.ground_truth.items() if key[1] in attrs
    }


def _accuracy_rows(num_rules: int):
    inst = _instance()
    rules = inst.rules[:num_rules]
    truth = _truth_for(inst, rules)

    hc = HoloCleanLike()
    _, hc_repairs, _ = hc.repair(inst.dirty, rules)
    holoclean = evaluate_repairs(hc_repairs, inst.dirty, truth)

    cleaned = _daisy_cleaned(inst, rules)
    domains = domains_from_daisy(cleaned)
    _, daisyh_repairs, _ = hc.repair(inst.dirty, rules, external_domains=domains)
    daisyh = evaluate_repairs(daisyh_repairs, inst.dirty, truth)

    daisyp_repairs = most_probable_repairs(cleaned)
    daisyp = evaluate_repairs(daisyp_repairs, inst.dirty, truth)
    return holoclean, daisyh, daisyp


@pytest.mark.parametrize("num_rules", (1, 2, 3))
def test_table5_accuracy(benchmark, num_rules):
    holoclean, daisyh, daisyp = benchmark.pedantic(
        _accuracy_rows, args=(num_rules,), rounds=1, iterations=1
    )
    names = "ϕ1" if num_rules == 1 else f"ϕ1+…+ϕ{num_rules}"
    print(f"\n=== Table 5 — {names} (precision / recall / F1) ===")
    for label, rep in (
        ("Holoclean", holoclean),
        ("DaisyH", daisyh),
        ("DaisyP", daisyp),
    ):
        print(
            f"  {label:<10} P={rep.precision:.2f}  R={rep.recall:.2f}  "
            f"F1={rep.f1:.2f}  (updates={rep.total_updates}, "
            f"errors={rep.total_errors})"
        )
    # Shape assertions: every system finds a meaningful share of the errors;
    # with more rules the Daisy-domain variants do not collapse.
    assert daisyh.recall > 0.2
    assert holoclean.recall > 0.2
    if num_rules >= 2:
        assert daisyh.f1 >= daisyp.f1 * 0.8
