"""Table 6 — response time on hospital data with an increasing rule count.

Paper setup: hospital 100K; rule sets ϕ1 / ϕ1+ϕ2 / ϕ1+ϕ2+ϕ3; wall time of
Full cleaning vs Daisy vs HoloClean (inference disabled — candidate
computation only).  Expected shape: Daisy ≤ Full << HoloClean (HoloClean's
per-cell co-occurrence domain generation traverses the dataset repeatedly).

Scaled here: 800 hospital rows.
"""

import time

import pytest

from repro import Daisy
from repro.baselines import HoloCleanLike, OfflineCleaner
from repro.datasets import hospital

NUM_ROWS = 800


def _instance():
    return hospital.generate_instance(num_rows=NUM_ROWS, seed=111)


def _run(num_rules: int):
    inst = _instance()
    rules = inst.rules[:num_rules]

    started = time.perf_counter()
    OfflineCleaner().clean(inst.dirty, rules)
    full_s = time.perf_counter() - started

    inst2 = _instance()
    d = Daisy(use_cost_model=False)
    d.register_table("hospital", inst2.dirty)
    for rule in rules:
        d.add_rule("hospital", rule)
    started = time.perf_counter()
    d.execute("SELECT * FROM hospital WHERE zip >= 0 AND zip < 99999")
    d.execute("SELECT zip, city FROM hospital WHERE city >= ''")
    daisy_s = time.perf_counter() - started

    inst3 = _instance()
    hc = HoloCleanLike()
    started = time.perf_counter()
    cells = hc.dirty_cells(inst3.dirty, rules)
    hc.generate_domains(inst3.dirty, cells)  # inference disabled, as in the paper
    holo_s = time.perf_counter() - started
    return full_s, daisy_s, holo_s


@pytest.mark.parametrize("num_rules", (1, 2, 3))
def test_table6_response_time(benchmark, num_rules):
    full_s, daisy_s, holo_s = benchmark.pedantic(
        _run, args=(num_rules,), rounds=1, iterations=1
    )
    print(f"\n=== Table 6 — {num_rules} rule(s) ===")
    print(f"  Full cleaning  {full_s:8.3f}s")
    print(f"  Daisy          {daisy_s:8.3f}s")
    print(f"  Holoclean      {holo_s:8.3f}s")
    # HoloClean's domain generation is the clear loser, as in the paper.
    assert holo_s > daisy_s
