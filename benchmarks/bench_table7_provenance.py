"""Table 7 — incremental rule arrival via provenance.

Paper setup: rules arrive one at a time (ϕ1; then ϕ2; then ϕ3).  Running
Daisy three times from scratch costs the sum of the three runs; a single
incremental execution reuses the provenance + merges the new rule's fixes
into the probabilistic data, paying only the merge overhead.  HoloClean
must rerun each time.

Scaled here: 800 hospital rows.
"""

import time

from repro import Daisy
from repro.baselines import HoloCleanLike
from repro.datasets import hospital

NUM_ROWS = 800
FULL_SCAN = "SELECT * FROM hospital WHERE zip >= 0 AND zip < 99999"


def _instance():
    return hospital.generate_instance(num_rows=NUM_ROWS, seed=112)


def _three_separate_runs():
    """Daisy from scratch per rule set: ϕ1; ϕ1+ϕ2; ϕ1+ϕ2+ϕ3."""
    total = 0.0
    inst = _instance()
    for upto in (1, 2, 3):
        fresh = _instance()
        d = Daisy(use_cost_model=False)
        d.register_table("hospital", fresh.dirty)
        for rule in fresh.rules[:upto]:
            d.add_rule("hospital", rule)
        started = time.perf_counter()
        d.execute(FULL_SCAN)
        d.clean_table("hospital")
        total += time.perf_counter() - started
    return total


def _single_incremental_run():
    """One Daisy instance; rules added as they 'appear'."""
    inst = _instance()
    d = Daisy(use_cost_model=False)
    d.register_table("hospital", inst.dirty)
    total = 0.0
    for rule in inst.rules:
        started = time.perf_counter()
        d.add_rule("hospital", rule)
        d.execute(FULL_SCAN)
        d.clean_table("hospital")
        total += time.perf_counter() - started
    return total


def _holoclean_three_runs():
    total = 0.0
    for upto in (1, 2, 3):
        inst = _instance()
        hc = HoloCleanLike()
        started = time.perf_counter()
        cells = hc.dirty_cells(inst.dirty, inst.rules[:upto])
        hc.generate_domains(inst.dirty, cells)
        total += time.perf_counter() - started
    return total


def test_table7_provenance_benefit(benchmark):
    def run_all():
        return (
            _three_separate_runs(),
            _single_incremental_run(),
            _holoclean_three_runs(),
        )

    three, one, holo = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n=== Table 7 — incremental rule arrival (total seconds) ===")
    print(f"  Daisy (3 executions)  {three:8.3f}s")
    print(f"  Daisy (1 execution)   {one:8.3f}s")
    print(f"  Holoclean (3 runs)    {holo:8.3f}s")
    # The incremental execution must beat re-running from scratch.
    assert one < three
