"""Table 8 — real-world exploratory scenarios (Nestlé, air quality).

Paper setup:

* Nestlé: 37 SP queries on product categories over a catalogue whose
  ``Material → Category`` FD is 95% conflicting; the 200MB version takes
  Daisy 26.8 min vs 8.5 *hours* offline (the category attribute's tiny
  selectivity makes offline iterate per dirty group).
* Air quality: 52 per-state AVG(CO) GROUP BY year queries; offline cleaning
  cannot finish within a day at either violation level.

Scaled here: Nestlé 2000 rows / 300 materials; air quality 1500 rows /
20 states, 30% and 97% violation levels.  Expected shape: Daisy finishes
each scenario; offline pays a large multiple on the Nestlé catalogue (one
dataset traversal per dirty material group).
"""

import pytest

from _harness import print_series, run_daisy, run_offline, speedup
from repro.datasets import airquality, nestle

NESTLE_ROWS = 2000
NESTLE_MATERIALS = 300
AQ_ROWS = 1500
AQ_STATES = 20


def _run_nestle():
    inst = nestle.generate_instance(
        NESTLE_ROWS, NESTLE_MATERIALS, conflict_fraction=0.95, seed=113
    )
    queries = nestle.coffee_queries(20)
    daisy = run_daisy(
        inst.dirty, [inst.fd], queries, table="nestle",
        use_cost_model=False, label="Daisy (nestle)",
    )
    inst2 = nestle.generate_instance(
        NESTLE_ROWS, NESTLE_MATERIALS, conflict_fraction=0.95, seed=113
    )
    offline = run_offline(
        inst2.dirty, [inst2.fd], queries, table="nestle",
        label="Offline (nestle)",
    )
    return daisy, offline


def test_table8_nestle(benchmark):
    daisy, offline = benchmark.pedantic(_run_nestle, rounds=1, iterations=1)
    print_series("Table 8 — Nestlé exploratory analysis", [daisy, offline])
    print(f"  offline/daisy: {speedup(daisy, offline):.1f}x")
    # The paper's 26.8min-vs-8.5h gap (≈19x) shows up as a clear multiple
    # (≈2x at this laptop scale; the gap grows with the number of dirty
    # material groups, which is what the paper's 200MB version amplifies).
    assert offline.seconds > daisy.seconds * 1.5


@pytest.mark.parametrize("level", ("low", "high"))
def test_table8_airquality(benchmark, level):
    def run():
        inst = airquality.generate_instance(
            AQ_ROWS, num_states=AQ_STATES, violation_level=level, seed=114
        )
        queries = airquality.state_co_queries(AQ_STATES)
        return run_daisy(
            inst.dirty, [inst.fd], queries, table="airquality",
            use_cost_model=False, label=f"Daisy (air quality, {level})",
        )

    daisy = benchmark.pedantic(run, rounds=1, iterations=1)
    print_series(f"Table 8 — air quality ({level} violations)", [daisy])
    # Daisy completes the whole 52-query-style workload (the offline
    # cleaner times out in the paper; we simply assert Daisy terminates
    # with cleaning work done).
    assert daisy.seconds > 0
    assert daisy.work_units > 0
