"""Benchmark-suite configuration.

Scales are laptop-sized (seconds per experiment, not cluster minutes).
Run with ``pytest benchmarks/ --benchmark-only`` — each benchmark prints the
paper-style series to stdout (use ``-s`` to see them live; they also appear
in the captured output section).
"""

import sys
from pathlib import Path

# Make the sibling _harness module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))
