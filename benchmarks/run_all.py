"""Run every benchmark module and merge the results into BENCH_PR.json.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--scale 0.1] [--only fig05 fig09]

Each ``bench_*.py`` module is executed as its own pytest run (the files do
not match pytest's default collection pattern, so they are passed
explicitly).  Modules that honor ``REPRO_BENCH_SCALE`` (fig05, fig09,
pushdown) shrink with ``--scale``; the rest run at their built-in laptop
scale.  Per-module outcome, duration, and peak RSS (the child's own
``resource.getrusage`` high-water mark, fork-pool workers included), plus
any ``BENCH_<name>.json`` payloads the modules recorded, are merged into
one ``BENCH_PR.json`` at the repo root — the perf-trajectory file that
accumulates across PRs.  Peak RSS is what makes the storage modes
comparable: a spill backend must show a lower high-water mark than
``storage="memory"`` at the same scale, not just similar latency.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
REPO_ROOT = BENCH_DIR.parent

#: Marker line the child shim prints after pytest finishes.  ru_maxrss is
#: KiB on Linux; the max over SELF and CHILDREN covers fork-pool workers.
_RSS_MARKER = "RUN_ALL_MAXRSS_KB="

_CHILD_SHIM = """\
import sys
import pytest
rc = pytest.main(sys.argv[1:])
try:
    import resource
    peak = max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss,
    )
    print("{marker}%d" % peak, flush=True)
except ImportError:
    pass
sys.exit(int(rc))
""".format(marker=_RSS_MARKER)


def bench_modules(only: list[str] | None) -> list[Path]:
    modules = sorted(BENCH_DIR.glob("bench_*.py"))
    if only:
        wanted = [token.lower() for token in only]
        modules = [
            m for m in modules if any(token in m.name.lower() for token in wanted)
        ]
    return modules


def run_module(path: Path, scale: float, timeout: int) -> dict:
    env = dict(os.environ, REPRO_BENCH_SCALE=str(scale))
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    started = time.perf_counter()
    peak_rss_kb: int | None = None
    try:
        proc = subprocess.run(
            [sys.executable, "-c", _CHILD_SHIM, str(path), "-q", "--no-header"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=timeout,
        )
        outcome = "passed" if proc.returncode == 0 else "failed"
        lines = (proc.stdout or "").strip().splitlines()
        for line in lines:
            if line.startswith(_RSS_MARKER):
                peak_rss_kb = int(line[len(_RSS_MARKER):])
        tail = [ln for ln in lines if not ln.startswith(_RSS_MARKER)][-1:] or [""]
    except subprocess.TimeoutExpired:
        outcome, tail = "timeout", [f"exceeded {timeout}s"]
    return {
        "outcome": outcome,
        "seconds": round(time.perf_counter() - started, 3),
        "peak_rss_kb": peak_rss_kb,
        "summary": tail[0],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="REPRO_BENCH_SCALE multiplier (default 1.0)")
    parser.add_argument("--only", nargs="*", default=None,
                        help="substring filters, e.g. fig05 fig09")
    parser.add_argument("--timeout", type=int, default=1800,
                        help="per-module timeout in seconds")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_PR.json"))
    args = parser.parse_args()

    modules = bench_modules(args.only)
    if not modules:
        print("no benchmark modules matched", file=sys.stderr)
        return 2

    results: dict = {}
    for path in modules:
        name = path.stem.replace("bench_", "")
        print(f"[run_all] {path.name} ...", flush=True)
        results[name] = run_module(path, args.scale, args.timeout)
        rss = results[name]["peak_rss_kb"]
        rss_note = f", peak {rss / 1024:.0f} MB" if rss else ""
        print(f"[run_all]   {results[name]['outcome']} "
              f"in {results[name]['seconds']}s{rss_note} — "
              f"{results[name]['summary']}")

    # Fold in the BENCH_<name>.json files the modules recorded.  Scale-
    # suffixed files are leftovers from smoke/experiment runs at other
    # scales — never current evidence, so they are not folded in.
    recorded = {}
    for bench_file in sorted(REPO_ROOT.glob("BENCH_*.json")):
        if bench_file.name == Path(args.output).name:
            continue
        if bench_file.stem.startswith("BENCH_PR"):
            continue  # trajectory files are outputs, not module payloads
        if "_scale" in bench_file.stem:
            continue
        try:
            recorded[bench_file.stem.replace("BENCH_", "")] = json.loads(
                bench_file.read_text()
            )
        except ValueError:
            continue

    output = Path(args.output)
    merged: dict = {}
    if output.exists():
        try:
            merged = json.loads(output.read_text())
        except ValueError:
            merged = {}
    history = merged.setdefault("runs", [])
    history.append(
        {
            "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "scale": args.scale,
            "modules": results,
        }
    )
    merged["latest"] = {"scale": args.scale, "modules": results, "recorded": recorded}
    output.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    print(f"[run_all] merged results -> {output}")
    failed = [n for n, r in results.items() if r["outcome"] != "passed"]
    if failed:
        print(f"[run_all] FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
