"""Adaptive tuning walkthrough — auditing what auto mode decides.

Runs the same DC-heavy workload twice over identical data: once with a
hand-forced configuration and once fully adaptive
(``DaisyConfig(parallelism="auto", batch_strategy="auto")``), then shows

* that both runs are byte-identical in answers and work units (the
  adaptive invariant: decisions move wall-clock time, never results), and
* the planner's decision log — what each pass was estimated to cost, which
  execution shape won, and what the pass actually cost (the calibration
  feedback the next estimate uses).

Run:  PYTHONPATH=src python examples/adaptive_tuning.py
"""

from repro import Daisy, DaisyConfig
from repro.constraints import DenialConstraint, Predicate
from repro.datasets.errors import inject_numeric_errors
from repro.relation import ColumnType, Relation

NUM_ROWS = 600


def build_inputs() -> tuple[Relation, DenialConstraint, list[str]]:
    """A price/discount table with injected errors and the Fig. 10-style DC
    "no row may have a lower price but a higher discount than another"."""
    raw = [
        (i, 100.0 + i * 10.0, round(0.01 + i * 0.0001, 6))
        for i in range(NUM_ROWS)
    ]
    rel = Relation.from_rows(
        [
            ("orderkey", ColumnType.INT),
            ("extended_price", ColumnType.FLOAT),
            ("discount", ColumnType.FLOAT),
        ],
        raw,
        name="lineorder",
    )
    dirty, _ = inject_numeric_errors(
        rel, "discount", cell_fraction=0.03, magnitude=3.0, seed=42
    )
    dc = DenialConstraint(
        [
            Predicate(0, "extended_price", "<", 1, "extended_price"),
            Predicate(0, "discount", ">", 1, "discount"),
        ],
        name="dc_price_discount",
    )
    queries = [
        # A small partial check first (a few matrix stripes)…
        f"SELECT orderkey, discount FROM lineorder WHERE orderkey < {NUM_ROWS // 8}",
        # …then a broad query whose estimated error rate escalates to the
        # full-matrix check (Algorithm 2) — the pass auto mode prices onto
        # the process pool.
        "SELECT orderkey FROM lineorder WHERE extended_price > 0",
    ]
    return dirty, dc, queries


def run(config: DaisyConfig, label: str):
    relation, dc, queries = build_inputs()
    daisy = Daisy(config=config)
    daisy.register_table("lineorder", relation)
    daisy.add_rule("lineorder", dc)
    with daisy.connect() as session:
        report = session.execute_workload(queries)
        planner = session.planner
    print(f"\n{label}")
    print(f"  work units : {daisy.total_work():,}")
    print(f"  wall clock : {report.total_seconds:.3f}s")
    return daisy.total_work(), report, planner


def main() -> None:
    forced_work, _, _ = run(
        DaisyConfig(use_cost_model=False, parallelism=2, pool="thread"),
        "Forced: parallelism=2, pool=thread",
    )
    auto_work, auto_report, planner = run(
        DaisyConfig(
            use_cost_model=False,
            parallelism="auto",
            batch_strategy="auto",
            auto_max_workers=4,
        ),
        'Auto: parallelism="auto" (ceiling 4 workers)',
    )

    # The adaptive invariant: identical model work, whatever was decided.
    assert auto_work == forced_work, "auto must match the forced oracle"
    print("\nWork units identical across configurations (the invariant).")

    print("\nDecision log (WorkloadReport.decisions):")
    for decision in auto_report.decisions:
        observed = (
            f"{decision.observed_cost:,.0f}"
            if decision.observed_cost is not None
            else "-"
        )
        alternatives = ", ".join(
            f"{name}={cost:,.0f}"
            for name, cost in sorted(
                decision.alternatives.items(), key=lambda kv: kv[1]
            )
        )
        print(
            f"  [{decision.kind}/{decision.pass_kind}] chose {decision.choice!r}"
            f"  est={decision.estimated_cost:,.0f}  observed={observed}"
        )
        print(f"      alternatives: {alternatives}")

    print("\nCalibration factors learned (observed work / raw estimate):")
    for kind in ("dc_check", "fd_relax", "batch"):
        if planner.calibration.samples(kind):
            print(
                f"  {kind:<10} x{planner.calibration.factor(kind):,.2f} "
                f"({planner.calibration.samples(kind)} samples)"
            )


if __name__ == "__main__":
    main()
