"""Air-quality exploratory analysis (the Table 8 Kaggle scenario).

An analyst studies how CO pollution evolves per U.S. state: one query per
state, averaging the CO measurement of a chosen county grouped by year.
The composite-lhs FD (county_code, state_code) → county_name is violated in
the infrequent county groups; Daisy repairs exactly the groups the queries
touch and the dataset gets gradually cleaner.

Run:  python examples/air_quality_analysis.py
"""

from repro import Daisy
from repro.datasets import airquality


def main() -> None:
    inst = airquality.generate_instance(
        num_rows=2000, num_states=12, violation_level="low", seed=9
    )
    print(
        f"Measurements: {len(inst.dirty)} rows, "
        f"{inst.injection.affected_groups} dirty county groups, "
        f"{inst.injection.edited_cells} edited county names"
    )

    daisy = Daisy(use_cost_model=False)
    daisy.register_table("airquality", inst.dirty)
    daisy.add_rule("airquality", inst.fd)
    print(f"Registered rule: {inst.fd}")

    queries = airquality.state_co_queries(inst.num_states)[: 12]
    print(f"\nPer-state CO trend (first 3 states shown):")
    with daisy.connect() as session:
        for i, sql in enumerate(queries):
            result = session.execute(sql)
            if i < 3:
                print(f"\n  {sql}")
                for row in sorted(result.relation.rows, key=lambda r: r.values[0]):
                    year, avg_co = row.values
                    print(f"    {year}: avg CO = {avg_co:.3f}")
        fixed = sum(e.errors_fixed for e in session.query_log)

    cleaned = daisy.probabilistic_cells("airquality")
    total_work = daisy.total_work()
    print(f"\nAfter {len(queries)} queries:")
    print(f"  cells repaired (probabilistic): {cleaned}")
    print(f"  error fixes computed          : {fixed}")
    print(f"  total work units              : {total_work:,}")

    # Accuracy against the generator's ground truth, most-probable policy.
    from repro.baselines import most_probable_repairs
    from repro.metrics import evaluate_repairs

    repairs = most_probable_repairs(daisy.table("airquality"))
    report = evaluate_repairs(repairs, inst.dirty, inst.injection.ground_truth)
    print(
        f"  repair accuracy (DaisyP)      : precision={report.precision:.2f} "
        f"recall={report.recall:.2f} F1={report.f1:.2f}"
    )


if __name__ == "__main__":
    main()
