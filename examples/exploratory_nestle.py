"""Exploratory product analysis (the Table 8 Nestlé scenario).

A data scientist explores a food/drink catalogue whose Material → Category
FD is heavily violated (95% conflicting materials).  Queries filter on the
*category* attribute — the FD's rhs, whose tiny selectivity is what makes
offline cleaning iterate over the dataset per dirty group.  Daisy cleans
exactly the data each query touches.

Run:  python examples/exploratory_nestle.py
"""

import time

from repro import Daisy
from repro.baselines import OfflineCleaner
from repro.datasets import nestle


def main() -> None:
    inst = nestle.generate_instance(
        num_rows=1500, num_materials=150, conflict_fraction=0.95, seed=7
    )
    print(
        f"Catalogue: {len(inst.dirty)} products, "
        f"{inst.injection.affected_groups} conflicting materials, "
        f"{inst.injection.edited_cells} edited category cells"
    )

    daisy = Daisy(use_cost_model=False)
    daisy.register_table("nestle", inst.dirty)
    daisy.add_rule("nestle", inst.fd)

    queries = nestle.coffee_queries(15)
    started = time.perf_counter()
    with daisy.connect() as session:
        report = session.execute_workload(queries)
    daisy_seconds = time.perf_counter() - started

    print(f"\nDaisy: {len(queries)} category queries in {daisy_seconds:.2f}s")
    print(f"  total errors fixed : {sum(e.errors_fixed for e in report.entries)}")
    print(f"  probabilistic cells: {daisy.probabilistic_cells('nestle')}")
    print(f"  work units         : {report.total_work_units:,}")

    # The offline alternative: clean the whole catalogue before any query.
    started = time.perf_counter()
    cleaner = OfflineCleaner()
    _cleaned, offline_report = cleaner.clean(inst.dirty, [inst.fd])
    offline_seconds = time.perf_counter() - started
    print(
        f"\nOffline cleaning of the whole catalogue: {offline_seconds:.2f}s "
        f"({offline_report.groups_repaired} groups, "
        f"{offline_report.work.total():,} work units)"
    )
    print(
        f"\nDaisy vs offline on this exploratory session: "
        f"{offline_seconds / max(daisy_seconds, 1e-9):.1f}x"
    )

    # Show a repaired product: its category now carries candidate values.
    for row in daisy.table("nestle").rows:
        cell = row.values[3]
        if hasattr(cell, "candidates"):
            print(f"\nExample repaired product t{row.tid}: category = {cell}")
            break


if __name__ == "__main__":
    main()
