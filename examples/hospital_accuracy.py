"""Repair accuracy on hospital data — the Table 5 comparison.

Compares three repair policies against master data:

* **Holoclean** — the HoloClean-like baseline's own co-occurrence domains
  plus inference;
* **DaisyH**    — Daisy's candidate domains fed into HoloClean inference;
* **DaisyP**    — Daisy's most probable candidate, picked blindly.

Run:  python examples/hospital_accuracy.py
"""

from repro import Daisy
from repro.baselines import (
    HoloCleanLike,
    domains_from_daisy,
    most_probable_repairs,
)
from repro.datasets import hospital
from repro.metrics import evaluate_repairs


def daisy_clean(inst, rules):
    daisy = Daisy(use_cost_model=False)
    daisy.register_table("hospital", inst.dirty)
    for rule in rules:
        daisy.add_rule("hospital", rule)
    with daisy.connect() as session:
        session.execute("SELECT * FROM hospital WHERE zip >= 0 AND zip < 99999")
        session.clean_table("hospital")
    return daisy.table("hospital")


def main() -> None:
    inst = hospital.generate_instance(num_rows=500, seed=13)
    print(
        f"Hospital data: {len(inst.dirty)} rows, "
        f"{len(inst.ground_truth)} injected cell errors, rules: "
        + ", ".join(str(r) for r in inst.rules)
    )

    hc = HoloCleanLike()
    for upto in (1, 2, 3):
        rules = inst.rules[:upto]
        attrs = {fd.rhs for fd in rules} | {a for fd in rules for a in fd.lhs}
        truth = {k: v for k, v in inst.ground_truth.items() if k[1] in attrs}

        _, hc_repairs, _ = hc.repair(inst.dirty, rules)
        holoclean = evaluate_repairs(hc_repairs, inst.dirty, truth)

        cleaned = daisy_clean(inst, rules)
        _, daisyh_repairs, _ = hc.repair(
            inst.dirty, rules, external_domains=domains_from_daisy(cleaned)
        )
        daisyh = evaluate_repairs(daisyh_repairs, inst.dirty, truth)
        daisyp = evaluate_repairs(
            most_probable_repairs(cleaned), inst.dirty, truth
        )

        label = " + ".join(r.name for r in rules)
        print(f"\nRule set: {label}  ({len(truth)} relevant errors)")
        print(f"  {'policy':<12}{'precision':>10}{'recall':>10}{'F1':>10}")
        for name, rep in (
            ("Holoclean", holoclean),
            ("DaisyH", daisyh),
            ("DaisyP", daisyp),
        ):
            print(
                f"  {name:<12}{rep.precision:>10.2f}{rep.recall:>10.2f}"
                f"{rep.f1:>10.2f}"
            )


if __name__ == "__main__":
    main()
