"""Quickstart — the paper's running example end to end.

Builds the dirty Cities dataset (Table 2a), registers the FD zip → city,
and runs the two queries of Examples 2 and 3, showing how Daisy relaxes the
query result, repairs the violations it touches, and gradually turns the
dataset into a probabilistic dataset (Tables 2b and 3).

Run:  python examples/quickstart.py
"""

from repro import Daisy
from repro.relation import ColumnType, Relation


def print_table(relation, title):
    print(f"\n{title}")
    print("-" * len(title))
    for row in relation.rows:
        cells = "  ".join(f"{str(v):<45}" for v in row.values)
        print(f"  t{row.tid}: {cells}")


def main() -> None:
    # Table 2a — the dirty Cities dataset.
    cities = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )
    print_table(cities, "Dirty dataset (Table 2a)")

    daisy = Daisy()
    daisy.register_table("cities", cities)
    daisy.add_rule("cities", "zip -> city", name="phi")

    with daisy.connect() as session:
        # Prepared query: parsed/resolved/planned once, parameters bound
        # per execution.  The cleaning-aware plan injects cleanσ above the
        # filter.
        by_city = session.prepare("SELECT zip FROM cities WHERE city = ?")
        print("\nLogical plan for the Example 2 query:")
        print(by_city.explain())

        # Example 2 — filter on the FD's rhs: one relaxation iteration.
        result = by_city.execute("Los Angeles")
        print_table(result.relation, "Example 2 result (zip of Los Angeles rows)")
        print_table(
            session.table("cities"),
            "Dataset after the query — partially probabilistic (Table 2b)",
        )
        print(
            f"\nErrors fixed: {result.report.errors_fixed}; "
            f"extra (correlated) tuples read: {result.report.extra_tuples}"
        )

        # Example 3 — filter on the lhs: transitive closure pulls the whole
        # correlated cluster, and the result includes candidate matches.
        result = session.execute("SELECT city FROM cities WHERE zip = 9001")
        print_table(result.relation, "Example 3 result (cities with zip 9001, Table 3)")

        # Group-by queries clean below the aggregation (served from the
        # ColumnView's group index on the columnar backend).
        result = session.execute(
            "SELECT city, COUNT(*) AS n FROM cities GROUP BY city"
        )
        print_table(result.relation, "City counts over the repaired data")


if __name__ == "__main__":
    main()
