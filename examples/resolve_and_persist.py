"""Resolving and persisting a gradually-cleaned dataset.

After a Daisy session the dataset is probabilistic.  This example shows the
end-of-session options: persist the probabilistic dataset to CSV (and reload
it), or commit it to a deterministic relation with one of the resolution
policies — most-probable (DaisyP), undo-to-original, or master-data oracle —
and score each against the ground truth.

Run:  python examples/resolve_and_persist.py
"""

import io

from repro import Daisy
from repro.core import (
    domain_coverage,
    resolve_keep_original,
    resolve_most_probable,
    resolve_with_master,
)
from repro.datasets import hospital
from repro.metrics import evaluate_repairs
from repro.relation import from_csv_string, to_csv_string


def main() -> None:
    inst = hospital.generate_instance(num_rows=400, seed=23)
    print(
        f"Hospital data: {len(inst.dirty)} rows, "
        f"{len(inst.ground_truth)} injected errors"
    )

    daisy = Daisy(use_cost_model=False)
    daisy.register_table("hospital", inst.dirty)
    for rule in inst.rules:
        daisy.add_rule("hospital", rule)
    daisy.clean_table("hospital")
    cleaned = daisy.table("hospital")
    print(f"Probabilistic cells after cleaning: {cleaned.probabilistic_cell_count()}")

    # --- persistence: the probabilistic dataset round-trips through CSV.
    text = to_csv_string(cleaned)
    reloaded = from_csv_string(text, name="hospital")
    print(
        f"CSV round-trip: {len(text.splitlines()) - 1} data rows, "
        f"{reloaded.probabilistic_cell_count()} probabilistic cells preserved"
    )

    # --- how good are Daisy's candidate domains?
    coverage = domain_coverage(cleaned, inst.master)
    print(f"Domain coverage (truth among candidates): {coverage:.1%}")

    # --- resolution policies.
    print(f"\n{'policy':<18}{'precision':>10}{'recall':>10}{'F1':>10}")
    for label, (resolved, updates) in (
        ("most probable", resolve_most_probable(cleaned)),
        ("keep original", resolve_keep_original(cleaned, daisy.provenance("hospital"))),
        ("master oracle", resolve_with_master(cleaned, inst.master)),
    ):
        report = evaluate_repairs(updates, inst.dirty, inst.ground_truth)
        print(
            f"{label:<18}{report.precision:>10.2f}{report.recall:>10.2f}"
            f"{report.f1:>10.2f}"
        )
        assert resolved.probabilistic_cell_count() == 0


if __name__ == "__main__":
    main()
