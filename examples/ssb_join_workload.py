"""SSB join workload with the cost-model strategy switch (Figs 7/11/12).

Runs a mixed SP + SPJ workload over a dirty lineorder ⋈ supplier pair three
ways — always-incremental Daisy, cost-model Daisy, and offline-then-query —
and prints the cumulative response times, showing where the cost model
switches from incremental to full cleaning.

Run:  python examples/ssb_join_workload.py
"""

import time

from repro import Daisy
from repro.baselines import OfflineCleaner
from repro.core.state import TableState
from repro.datasets import ssb, workloads
from repro.query.executor import Executor
from repro.query.planner import PlannerCatalog


def build_inputs():
    lineorder, phi, _ = ssb.dirty_lineorder(
        2000, 250, 250, error_group_fraction=0.25, seed=21
    )
    supplier, psi, _ = ssb.dirty_supplier(250, error_fraction=0.1, seed=21)
    queries = workloads.mixed_workload(25, 250, seed=21)
    return lineorder, phi, supplier, psi, queries


def run_daisy(use_cost_model: bool) -> tuple[list[float], int | None]:
    lineorder, phi, supplier, psi, queries = build_inputs()
    daisy = Daisy(use_cost_model=use_cost_model, expected_queries=len(queries))
    daisy.register_table("lineorder", lineorder)
    daisy.register_table("supplier", supplier)
    daisy.add_rule("lineorder", phi)
    daisy.add_rule("supplier", psi)
    with daisy.connect() as session:
        report = session.execute_workload(queries)
    return report.cumulative_seconds(), report.switch_query_index


def run_offline() -> list[float]:
    lineorder, phi, supplier, psi, queries = build_inputs()
    started = time.perf_counter()
    lineorder_clean, _ = OfflineCleaner().clean(lineorder, [phi])
    supplier_clean, _ = OfflineCleaner().clean(supplier, [psi])
    catalog = PlannerCatalog()
    states = {
        "lineorder": TableState(relation=lineorder_clean),
        "supplier": TableState(relation=supplier_clean),
    }
    catalog.add_table("lineorder", lineorder_clean.schema)
    catalog.add_table("supplier", supplier_clean.schema)
    executor = Executor(states, catalog, cleaning_enabled=False)
    cumulative = []
    for sql in queries:
        executor.execute(sql)
        cumulative.append(time.perf_counter() - started)
    return cumulative


def main() -> None:
    print("Running always-incremental Daisy (w/o cost model)...")
    incremental, _ = run_daisy(use_cost_model=False)
    print("Running Daisy with the cost model...")
    switching, switch_at = run_daisy(use_cost_model=True)
    print("Running offline cleaning + plain queries...")
    offline = run_offline()

    print("\nCumulative response time (seconds):")
    print(f"  {'query':<8}{'Daisy w/o cost':>16}{'Daisy':>12}{'Full':>12}")
    for i in range(0, len(incremental), 5):
        print(
            f"  {i + 1:<8}{incremental[i]:>16.2f}{switching[i]:>12.2f}"
            f"{offline[min(i, len(offline) - 1)]:>12.2f}"
        )
    print(
        f"\nTotals: w/o cost {incremental[-1]:.2f}s | "
        f"Daisy {switching[-1]:.2f}s | full {offline[-1]:.2f}s"
    )
    if switch_at is not None:
        print(f"Daisy switched to full cleaning at query {switch_at + 1}.")
    else:
        print("Daisy stayed incremental for the whole workload.")


if __name__ == "__main__":
    main()
