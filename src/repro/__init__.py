"""repro — a reproduction of *Cleaning Denial Constraint Violations through
Relaxation* (Daisy, SIGMOD 2020).

Public API highlights:

* :class:`repro.Daisy` — the query-driven cleaning engine (register tables
  and rules, execute SQL, data is cleaned incrementally).
* :mod:`repro.constraints` — denial constraints, FDs, and the textual
  parser (``parse_rule("zip -> city")``).
* :mod:`repro.relation` — the relational substrate (schemas, relations,
  CSV i/o).
* :mod:`repro.baselines` — the offline full-dataset cleaner and the
  HoloClean-like inference baseline.
* :mod:`repro.datasets` — synthetic SSB / hospital / Nestlé / air-quality
  generators with BART-style error injection.

Quickstart::

    from repro import Daisy
    from repro.relation import Relation, ColumnType

    rel = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [(9001, "Los Angeles"), (9001, "San Francisco"), (10001, "New York")],
    )
    daisy = Daisy()
    daisy.register_table("cities", rel)
    daisy.add_rule("cities", "zip -> city")
    result = daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
"""

from repro.daisy import Daisy, QueryLogEntry, WorkloadReport
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Daisy",
    "WorkloadReport",
    "QueryLogEntry",
    "ReproError",
    "__version__",
]
