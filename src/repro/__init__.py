"""repro — a reproduction of *Cleaning Denial Constraint Violations through
Relaxation* (Daisy, SIGMOD 2020).

Public API highlights:

* :class:`repro.Daisy` — the query-driven cleaning engine (register tables
  and rules; connect sessions; data is cleaned incrementally).
* :mod:`repro.api` — the layered session API: :class:`repro.DaisyConfig`,
  :class:`repro.Session` (per-workload state), :class:`repro.PreparedQuery`
  (plan once, bind ``?`` parameters, execute many), and
  :meth:`Session.execute_batch` (rule-sharing batched execution returning a
  :class:`repro.BatchResult`).
* :mod:`repro.constraints` — denial constraints, FDs, and the textual
  parser (``parse_rule("zip -> city")``).
* :mod:`repro.relation` — the relational substrate (schemas, relations,
  CSV i/o).
* :mod:`repro.parallel` — sharded parallel execution: executor pools
  (serial/thread/process), row-range relation shards with per-shard column
  views, and the session-owned :class:`repro.ParallelContext`
  (``DaisyConfig(parallelism=N)``, or ``parallelism="auto"`` to let the
  :class:`repro.core.AdaptivePlanner` price pool/worker/shard shapes per
  pass); parallel runs are byte-identical to serial.
* :mod:`repro.baselines` — the offline full-dataset cleaner and the
  HoloClean-like inference baseline.
* :mod:`repro.datasets` — synthetic SSB / hospital / Nestlé / air-quality
  generators with BART-style error injection.

Quickstart::

    from repro import Daisy
    from repro.relation import Relation, ColumnType

    rel = Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [(9001, "Los Angeles"), (9001, "San Francisco"), (10001, "New York")],
    )
    daisy = Daisy()
    daisy.register_table("cities", rel)
    daisy.add_rule("cities", "zip -> city")
    with daisy.connect() as session:
        result = session.execute(
            "SELECT zip FROM cities WHERE city = 'Los Angeles'"
        )
"""

from repro.api import (
    BatchResult,
    DaisyConfig,
    PreparedQuery,
    QueryLogEntry,
    RuleGroupReport,
    Session,
    WorkloadReport,
)
from repro.daisy import Daisy
from repro.errors import ReproError
from repro.parallel import ExecutorPool, ParallelContext, ShardSet, make_pool

__version__ = "1.3.0"

__all__ = [
    "BatchResult",
    "Daisy",
    "DaisyConfig",
    "ExecutorPool",
    "ParallelContext",
    "PreparedQuery",
    "QueryLogEntry",
    "ReproError",
    "RuleGroupReport",
    "Session",
    "ShardSet",
    "WorkloadReport",
    "__version__",
    "make_pool",
]
