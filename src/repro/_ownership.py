"""Ownership annotations: which engine objects are shared, owned, or frozen.

The concurrent multi-session service tier multiplexes many
:class:`repro.api.Session` objects over one shared engine.  That only
works if the boundary between *shared engine state* (one copy, reached by
every session) and *session-owned state* (one copy per session, touched by
exactly one session's threads) is explicit and machine-checked.  This
module is the registry those checks hang off:

* ``@shared_engine_state`` — one instance serves every session.  Mutation
  is only legal inside the class's declared *seams* (the ``MUTATED_UNDER``
  table below); everything else must treat the object as read-only.  The
  service tier serializes seam entry (single writer / epoch-CAS per
  table), so "all writes go through a seam" is exactly the property that
  makes concurrent reads safe.
* ``@session_owned`` — created by and confined to one session.  No seam
  table needed: the single-writer discipline is "only the owning session's
  thread writes", which the runtime witness checks directly.
* ``@immutable_after_init`` — frozen once construction completes (the
  strongest and cheapest contract: immutable objects are always safe to
  share).  Construction means ``__init__`` / ``__post_init__`` plus any
  extra builder methods named via ``init_methods``.

Two class-level declaration tables refine the annotations:

``MUTATED_UNDER``
    ``dict[str, tuple[str, ...]]`` on a ``@shared_engine_state`` class:
    for each mutable attribute, the dotted names of the functions allowed
    to mutate it (its synchronization/ownership seam).  Seam names match
    on dotted-boundary suffix: ``"TableState.apply_updates"`` matches the
    method wherever the class lives, ``"maintenance.sync_matrix"`` names a
    module-level seam in another module.  ``__init__`` and the declared
    ``init_methods`` are always implicitly allowed.  An attribute missing
    from the table is *undeclared*: daisylint DL101 flags any post-init
    mutation of it.

``MUTATING_ACCESSORS``
    ``dict[str, str]`` (method name -> attribute): methods that hand out
    or mutate an attribute by alias (e.g. ``seen_for`` returning a live
    set).  The runtime witness wraps these so alias mutation is observed
    as a write to the named attribute even though no ``__setattr__``
    fires.

The decorators are deliberately free of behaviour: they only record an
:class:`OwnershipSpec` in :data:`OWNERSHIP_REGISTRY` and return the class
unchanged, so annotated code pays nothing until the race witness
(:mod:`repro.diagnostics.witness`) is activated.  The static side —
daisylint's DL100-series rules — never imports this module; it recognizes
the decorators and tables by name in the AST.  Keeping both sides keyed
on the same declarations is the point: every ownership claim is enforced
statically *and* witnessed dynamically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TypeVar

#: Ownership kinds, in increasing order of mutation freedom.
IMMUTABLE_AFTER_INIT = "immutable_after_init"
SESSION_OWNED = "session_owned"
SHARED_ENGINE_STATE = "shared_engine_state"
OWNERSHIP_KINDS = (IMMUTABLE_AFTER_INIT, SESSION_OWNED, SHARED_ENGINE_STATE)

#: Methods always treated as part of construction.
DEFAULT_INIT_METHODS = ("__init__", "__post_init__", "__new__")


@dataclass(frozen=True)
class OwnershipSpec:
    """One class's declared ownership contract."""

    kind: str
    cls: type
    #: Attribute -> allowed mutation seams (dotted-suffix matched).
    mutated_under: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Method name -> attribute it mutates/aliases (witness wrap targets).
    mutating_accessors: dict[str, str] = field(default_factory=dict)
    #: Methods that count as construction (writes there are always legal).
    init_methods: tuple[str, ...] = DEFAULT_INIT_METHODS

    @property
    def class_name(self) -> str:
        return self.cls.__name__

    def seams_for(self, attr: str) -> tuple[str, ...]:
        return self.mutated_under.get(attr, ())

    def is_declared(self, attr: str) -> bool:
        return attr in self.mutated_under


#: The runtime registry: class -> its ownership spec.  Populated by the
#: decorators at import time; read by the race witness when activated.
OWNERSHIP_REGISTRY: dict[type, OwnershipSpec] = {}  # daisylint: disable=DL104 - the registry the DL104 rule itself hangs off; written only by class decorators at import time

_T = TypeVar("_T")


def _register(
    cls: type, kind: str, init_methods: Iterable[str] | None = None
) -> type:
    mutated_under = {
        attr: tuple(seams)
        for attr, seams in sorted(getattr(cls, "MUTATED_UNDER", {}).items())
    }
    accessors = dict(sorted(getattr(cls, "MUTATING_ACCESSORS", {}).items()))
    inits = DEFAULT_INIT_METHODS + tuple(init_methods or ())
    OWNERSHIP_REGISTRY[cls] = OwnershipSpec(
        kind=kind,
        cls=cls,
        mutated_under=mutated_under,
        mutating_accessors=accessors,
        init_methods=inits,
    )
    return cls


def shared_engine_state(cls: type[_T]) -> type[_T]:
    """One instance serves every session; writes only inside declared seams.

    The class should carry a ``MUTATED_UNDER`` table naming, per mutable
    attribute, the functions allowed to mutate it.  daisylint DL101 flags
    mutations outside those seams statically; the race witness flags them
    dynamically (and exempts fork-process children, whose copy-on-write
    state is private by construction).
    """
    return _register(cls, SHARED_ENGINE_STATE)  # type: ignore[return-value]


def session_owned(cls: type[_T]) -> type[_T]:
    """Created by and confined to one session; one writing thread, ever."""
    return _register(cls, SESSION_OWNED)  # type: ignore[return-value]


def immutable_after_init(
    cls: type[_T] | None = None, *, init_methods: Iterable[str] | None = None
) -> "type[_T] | _ImmutableDecorator":
    """Frozen once construction completes.

    Usable bare (``@immutable_after_init``) or parameterized
    (``@immutable_after_init(init_methods=("_build",))``) when
    construction extends past ``__init__`` into named builder methods —
    daisylint DL102 and the runtime witness both honour the extension.
    """
    if cls is not None:
        return _register(cls, IMMUTABLE_AFTER_INIT)  # type: ignore[return-value]
    return _ImmutableDecorator(tuple(init_methods or ()))


class _ImmutableDecorator:
    """The parameterized form of :func:`immutable_after_init`."""

    def __init__(self, init_methods: tuple[str, ...]) -> None:
        self.init_methods = init_methods

    def __call__(self, cls: type[_T]) -> type[_T]:
        return _register(  # type: ignore[return-value]
            cls, IMMUTABLE_AFTER_INIT, init_methods=self.init_methods
        )


def ownership_of(cls: type) -> OwnershipSpec | None:
    """The spec of ``cls`` or its nearest annotated base (None if none)."""
    for base in cls.__mro__:
        spec = OWNERSHIP_REGISTRY.get(base)
        if spec is not None:
            return spec
    return None


def seam_matches(seam: str, dotted_site: str) -> bool:
    """Whether a declared seam names the (dotted) mutation site.

    Suffix match on dotted boundaries: seam ``"TableState.apply_updates"``
    matches site ``"repro.core.state.TableState.apply_updates"`` but not
    ``"OtherTableState.apply_updates"``; a bare function seam matches any
    module's function of that name.  Used identically by the static rules
    and the runtime witness so the two enforcement layers cannot drift.
    """
    if not seam:
        return False
    if dotted_site == seam:
        return True
    return dotted_site.endswith("." + seam)


def site_allowed(
    spec: OwnershipSpec, attr: str, dotted_site: str
) -> bool:
    """Whether a mutation of ``attr`` at ``dotted_site`` is inside the seam.

    Construction methods of the annotated class are always allowed.
    """
    leaf = dotted_site.rsplit(".", 1)[-1]
    if leaf in spec.init_methods:
        # Only the class's own construction, not any method that happens
        # to be called __init__: require the class name on the dotted path.
        if f".{spec.class_name}." in f".{dotted_site}":
            return True
    return any(seam_matches(seam, dotted_site) for seam in spec.seams_for(attr))


__all__ = [
    "IMMUTABLE_AFTER_INIT",
    "SESSION_OWNED",
    "SHARED_ENGINE_STATE",
    "OWNERSHIP_KINDS",
    "DEFAULT_INIT_METHODS",
    "OwnershipSpec",
    "OWNERSHIP_REGISTRY",
    "shared_engine_state",
    "session_owned",
    "immutable_after_init",
    "ownership_of",
    "seam_matches",
    "site_allowed",
]
