"""The layered public API over the Daisy engine.

Three layers (Section 6's engine, re-architected for workloads):

1. **Configuration & sessions** — :class:`DaisyConfig` bundles every engine
   knob into one frozen value; :meth:`repro.Daisy.connect` opens a
   :class:`Session` that owns per-workload state (query log, cost models)
   so the engine object only holds the data-scoped state (tables, rules,
   provenance, matrices).
2. **Prepared queries** — :meth:`Session.prepare` parses, resolves, and
   plans once; the returned :class:`PreparedQuery` re-executes without
   re-planning and binds ``?`` placeholders positionally.
3. **Batched execution** — :meth:`Session.execute_batch` groups a batch's
   plans by the rules their clean-nodes touch, runs one shared
   relaxation/detection pass per rule group, and answers each member query
   against the shared pass, returning a :class:`BatchResult`.

Typical usage::

    from repro import Daisy

    daisy = Daisy()
    daisy.register_table("cities", relation)
    daisy.add_rule("cities", "zip -> city")
    with daisy.connect() as session:
        by_city = session.prepare("SELECT zip FROM cities WHERE city = ?")
        la = by_city.execute("Los Angeles")
        batch = session.execute_batch(queries)   # shares cleaning passes
"""

from repro.api.batch import BatchResult, RuleGroupReport
from repro.api.config import (
    BATCH_AUTO,
    BATCH_SEQUENTIAL,
    BATCH_SHARED,
    BATCH_STRATEGIES,
    PARALLELISM_AUTO,
    DaisyConfig,
)
from repro.api.prepared import PreparedQuery
from repro.api.reporting import QueryLogEntry, WorkloadReport
from repro.api.session import Session

__all__ = [
    "BATCH_AUTO",
    "BATCH_SEQUENTIAL",
    "BATCH_SHARED",
    "BATCH_STRATEGIES",
    "BatchResult",
    "DaisyConfig",
    "PARALLELISM_AUTO",
    "PreparedQuery",
    "QueryLogEntry",
    "RuleGroupReport",
    "Session",
    "WorkloadReport",
]
