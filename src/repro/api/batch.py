"""Batched workload execution with rule-sharing detection passes.

``session.execute_batch(queries)`` closes the "Batched workload API" gap:
instead of running each query's relaxation/detection/repair in isolation,
the batch is analysed up front and queries whose cleaning-aware plans touch
the *same rules under the same filter attributes* are grouped.  Each rule
group then runs **one** shared cleaning pass over the union of its member
answers — one relaxation closure, one detection sweep over the ColumnView
(DC groups merge their ``ViolationPair`` sets in a single partial
theta-join check), one merged repair delta, one in-place dataset update —
after which the member queries are answered by routing their scopes against
the already-cleaned state with plain (cleaning-disabled) execution.

Semantics: a batch behaves as if every rule group's shared cleaning ran
before the first member query.  For workloads whose queries touch disjoint
parts of a rule's correlated clusters (the non-overlapping range workloads
of Figs. 5-7, the per-state air-quality workload), this is byte-identical
to sequential execution while charging far fewer work units — the parity
tests pin that down on the hospital and air-quality fixtures.  Queries the
grouping cannot cover (joins, rule-free queries) fall back to the normal
sequential path inside the batch, preserving order.

``DaisyConfig(batch_strategy=...)`` arbitrates per rule group between that
shared pass and "incremental per query" (the ROADMAP's batch-aware cost
model): ``"shared"`` (default) always runs the shared pass, ``"sequential"``
always cleans per query, and ``"auto"`` lets the session's
:class:`~repro.core.AdaptivePlanner` price the two from the members' scope
estimates plus calibrated observed work — multi-member groups with
overlapping scopes share, single-member groups go sequential so the
Section 5.2.3 strategy switch keeps seeing them.  Whatever is chosen, query
results and repaired relations are byte-identical across strategies; the
recorded :class:`~repro.core.costmodel.PassDecision` (on
:class:`RuleGroupReport.decision` and ``report.decisions``) shows both
prices and the observed work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.constraints.dc import as_fd
from repro.core.costmodel import PassDecision
from repro.core.operators import CleanReport, clean_sigma, fd_scope_needs_cleaning
from repro.core.state import TableState, rule_key
from repro.engine.stats import WorkCounter
from repro.errors import QueryError
from repro.metrics.timing import clock
from repro.query.ast import Query
from repro.query.logical import CleanJoinNode, CleanSigmaNode, collect_nodes

from repro.api.config import BATCH_AUTO, BATCH_SEQUENTIAL, BATCH_SHARED
from repro.api.prepared import PreparedQuery
from repro.api.reporting import WorkloadReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session
    from repro.constraints.dc import Rule
    from repro.query.executor import QueryResult

#: What ``execute_batch`` accepts per entry.
BatchQuery = str | Query | PreparedQuery


@dataclass
class RuleGroupReport:
    """One rule group: which rules, which queries, how it was executed.

    ``strategy`` is how the group's cleaning ran: ``"shared"`` (one shared
    pass over the member union — scope/work/report describe that pass) or
    ``"sequential"`` (every member cleaned incrementally on its own; the
    pass fields stay zero and the members' costs live on their query-log
    entries).  ``decision`` is the planner's arbitration record under
    ``batch_strategy="auto"`` (``None`` when the strategy was forced).
    """

    table: str
    rule_keys: tuple[str, ...]
    where_attrs: frozenset[str]
    query_indices: list[int]
    scope_size: int = 0
    work_units: int = 0
    seconds: float = 0.0
    strategy: str = BATCH_SHARED
    decision: PassDecision | None = None
    report: CleanReport = field(default_factory=CleanReport)


@dataclass
class BatchResult:
    """Output of :meth:`repro.api.Session.execute_batch`.

    ``results[i]`` is the :class:`~repro.query.executor.QueryResult` of
    ``queries[i]`` (original order); ``report`` is the same
    :class:`~repro.api.reporting.WorkloadReport` shape sequential workloads
    produce; ``groups`` describes the shared rule-group passes.
    """

    results: list["QueryResult"]
    report: WorkloadReport
    groups: list[RuleGroupReport]

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> "Iterator[QueryResult]":
        return iter(self.results)

    def __getitem__(self, index: int) -> "QueryResult":
        return self.results[index]


class _Group:
    """Mutable accumulator for one rule group during batch analysis."""

    __slots__ = ("node", "members", "projection", "report", "strategy", "decision")

    def __init__(self, node: CleanSigmaNode) -> None:
        self.node = node
        self.members: list[int] = []
        self.projection: set[str] = set()
        self.report: RuleGroupReport | None = None
        self.strategy: str = BATCH_SHARED
        self.decision: PassDecision | None = None


def _prepare_all(
    session: "Session", queries: Sequence[BatchQuery]
) -> list[PreparedQuery]:
    prepared = []
    for query in queries:
        if isinstance(query, PreparedQuery):
            query.refresh_if_stale()
            handle = query
        else:
            handle = session.prepare(query)
        # Validate *every* entry (strings and ASTs included) before the
        # shared passes run: an unbound placeholder must fail the batch
        # up front, not after cleaning has already mutated the tables.
        if handle.param_count:
            raise QueryError(
                "queries in a batch must have no unbound parameters "
                f"(got {handle.param_count} in {handle.sql!r}); bind them "
                "via Session.prepare(...).execute first"
            )
        prepared.append(handle)
    return prepared


def _member_needs_cleaning(
    state: TableState,
    tids: set[int],
    rules: "Sequence[Rule]",
    counter: WorkCounter | None = None,
) -> bool:
    """Does a member query's answer require any of the group's rules to run?

    FDs are pruned with the shared Fig. 9 statistics test; general DCs have
    no cheap pruning and always require the pass.  ``counter`` overrides the
    charged counter (the arbitration phase prices with a throwaway one).
    """
    if not tids:
        return False
    for rule in rules:
        if state.is_fully_cleaned(rule):
            continue
        fd = as_fd(rule)
        if fd is None or fd_scope_needs_cleaning(state, tids, fd, counter=counter):
            return True
    return False


def _arbitrate_groups(
    session: "Session",
    prepared: list[PreparedQuery],
    groups: dict[tuple[Any, ...], _Group],
    share: list["_Group | None"],
) -> None:
    """``batch_strategy="auto"``: price each rule group's "one shared pass"
    against "incremental per member" and demote losing groups to sequential.

    The decision phase filters member answers and runs the Fig. 9 pruning
    test with a **throwaway counter**: pricing is model overhead, not
    cleaning work, so an auto run charges exactly the work units of the
    forced configuration its choices correspond to (shared groups re-filter
    with real charging inside the shared pass, exactly like a forced-shared
    run).  The double evaluation is deliberate: reusing the arbitration's
    tid sets inside the pass would skip the real-counter charges — and,
    when an earlier group's pass repaired cells this group's filters read,
    serve *pre-cleaning* answers — breaking byte-parity with the forced
    oracle; the re-filter is index-served and bounded by the answer sizes.

    Estimates (see :meth:`AdaptivePlanner.choose_batch_strategy`): shared ≈
    the union scope plus each member's routing re-filter; sequential ≈ the
    sum of member scopes — overlapping members share, disjoint members go
    sequential, single-member groups always go sequential.
    """
    scratch = WorkCounter()
    for group in groups.values():
        node = group.node
        state = session.states[node.table]
        union: set[int] = set()
        member_sizes: list[int] = []
        filter_units = 0
        for i in group.members:
            prep = prepared[i]
            tids = session._executor._filter_tids(
                state,
                prep.resolved.conditions_of(node.table),
                prep.query.connector,
                counter=scratch,
            )
            filter_units += len(tids)
            if _member_needs_cleaning(state, tids, node.rules, counter=scratch):
                union |= tids
                member_sizes.append(len(tids))
        decision = session.planner.choose_batch_strategy(
            node.table,
            members=len(group.members),
            cleaning_members=len(member_sizes),
            shared_units=float(len(union)),
            sequential_units=float(sum(member_sizes)),
            routing_units=float(filter_units),
        )
        group.decision = decision
        group.strategy = decision.choice
        if decision.choice == BATCH_SEQUENTIAL:
            for i in group.members:
                share[i] = None


def run_batch(session: "Session", queries: Sequence[BatchQuery]) -> BatchResult:
    """Execute ``queries`` as one batch (see module docstring)."""
    prepared = _prepare_all(session, queries)
    started = clock()
    work_before = session.total_work()
    decision_mark = session.planner.mark()

    # The effective strategy: batch_rule_sharing=False forces the
    # sequential path outright (the pre-config-knob A/B switch).
    strategy = (
        session.config.batch_strategy
        if session.config.batch_rule_sharing
        else BATCH_SEQUENTIAL
    )

    # -- analysis: group single-table cleaning plans by (table, rules, filter attrs)
    share: list[_Group | None] = [None] * len(prepared)
    groups: dict[tuple[Any, ...], _Group] = {}
    if strategy != BATCH_SEQUENTIAL:
        for i, prep in enumerate(prepared):
            if prep.query.is_join_query():
                continue
            if collect_nodes(prep.plan, CleanJoinNode):
                continue
            nodes = collect_nodes(prep.plan, CleanSigmaNode)
            if not nodes:
                continue
            node: CleanSigmaNode = nodes[0]  # single-table plans have one
            key = (
                node.table,
                frozenset(rule_key(r) for r in node.rules),
                frozenset(node.where_attrs),
            )
            group = groups.get(key)
            if group is None:
                group = groups[key] = _Group(node)
            group.members.append(i)
            group.projection |= node.projection_attrs
            share[i] = group

    # -- arbitration (auto): shared pass now vs incremental per query
    if strategy == BATCH_AUTO and groups:
        _arbitrate_groups(session, prepared, groups, share)

    # -- shared passes: one relaxed detection/repair sweep per rule group
    group_reports: list[RuleGroupReport] = []
    for group in groups.values():
        if group.strategy == BATCH_SEQUENTIAL:
            group.report = RuleGroupReport(
                table=group.node.table,
                rule_keys=tuple(sorted(rule_key(r) for r in group.node.rules)),
                where_attrs=frozenset(group.node.where_attrs),
                query_indices=list(group.members),
                strategy=BATCH_SEQUENTIAL,
                decision=group.decision,
            )
            group_reports.append(group.report)
            continue
        node = group.node
        state = session.states[node.table]
        pass_before = state.counter.total()
        pass_started = clock()
        union: set[int] = set()
        for i in group.members:
            prep = prepared[i]
            tids = session._executor._filter_tids(
                state,
                prep.resolved.conditions_of(node.table),
                prep.query.connector,
            )
            # Statistics pruning per member (Fig. 9), exactly as the
            # sequential path applies it: members whose answers overlap no
            # dirty group contribute nothing to the shared pass.
            if _member_needs_cleaning(state, tids, node.rules):
                union |= tids
        report = CleanReport()
        if union:
            # The shared pass is the showcase entry point for sharded
            # execution: one clean_sigma whose scope is the whole rule
            # group's answer union, shard-partitioned and fanned out over
            # the session pool when the session runs with parallelism > 1.
            report = clean_sigma(
                state,
                union,
                where_attrs=node.where_attrs,
                projection=group.projection,
                dc_error_threshold=session.config.dc_error_threshold,
                force_rules=list(node.rules),
                parallel=session.parallel,
            )
        group.report = RuleGroupReport(
            table=node.table,
            rule_keys=tuple(sorted(rule_key(r) for r in node.rules)),
            where_attrs=frozenset(node.where_attrs),
            query_indices=list(group.members),
            scope_size=len(report.scope_tids),
            work_units=state.counter.total() - pass_before,
            seconds=clock() - pass_started,
            strategy=BATCH_SHARED,
            decision=group.decision,
            report=report,
        )
        group_reports.append(group.report)

    # -- routing: answer every query in original order
    results: list["QueryResult"] = []
    workload = WorkloadReport()
    for i, prep in enumerate(prepared):
        if share[i] is not None:
            # Covered by a shared pass: the filter re-runs over the cleaned
            # state (repaired cells match with possible-worlds semantics),
            # so plain execution suffices — no per-query cleaning operator.
            result = session._route_prepared(prep)
        else:
            result = session._execute_prepared(
                prep, (), observe=session.config.batch_observe_cost_model
            )
        entry = session.query_log[-1]
        workload.entries.append(entry)
        if entry.switched_to_full and workload.switch_query_index is None:
            workload.switch_query_index = i
        results.append(result)

    # Attribute each group's shared-pass cost to its first member's entry
    # (the query that would have paid most of that pass sequentially), so
    # sum(entry work/seconds) stays consistent with the batch totals and
    # cumulative curves remain comparable against sequential runs.
    # Sequential-decided groups carry no pass cost — their members paid
    # their own way on their query-log entries.
    for group_report in group_reports:
        if group_report.strategy == BATCH_SEQUENTIAL:
            continue
        first = workload.entries[group_report.query_indices[0]]
        first.work_units += group_report.work_units
        first.elapsed_seconds += group_report.seconds
        first.errors_fixed += group_report.report.errors_fixed
        first.extra_tuples += group_report.report.extra_tuples

    # Close the loop: feed each arbitrated group's observed work — the pass
    # (if any) plus its members' per-query work — back into the planner.
    for group_report in group_reports:
        if group_report.decision is None:
            continue
        # Shared groups: the pass cost is already folded into the first
        # member's entry, so the member sum covers both strategies.
        member_work = sum(
            workload.entries[i].work_units for i in group_report.query_indices
        )
        session.planner.observe(group_report.decision, member_work)

    workload.total_seconds = clock() - started
    workload.total_work_units = session.total_work() - work_before
    workload.decisions = session.planner.decisions_since(decision_mark)
    return BatchResult(results=results, report=workload, groups=group_reports)
