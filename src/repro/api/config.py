"""Engine configuration for the layered session API.

:class:`DaisyConfig` is the single frozen bundle of knobs the engine used to
take as loose ``Daisy(...)`` keyword arguments, plus the batching knobs of
:meth:`repro.api.Session.execute_batch`.  Freezing the config keeps a
session's behaviour stable for its whole lifetime: two sessions connected
with different configs can run side by side over the same registered tables
without trampling each other's strategy state.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.detection.maintenance import MAINTENANCE_AUTO, validate_maintenance_mode
from repro.parallel.pool import POOL_THREAD, validate_pool_kind
from repro.relation.columnview import BACKEND_COLUMNAR, validate_backend


@dataclass(frozen=True)
class DaisyConfig:
    """Immutable configuration for a :class:`repro.api.Session`.

    Parameters
    ----------
    use_cost_model:
        Enable the Section 5.2.3 strategy switch.  Disabled, the session
        always cleans incrementally ("Daisy w/o cost" in Fig. 7).
    expected_queries:
        The workload-length hint the cost model projects over.
    dc_error_threshold:
        Algorithm 2 threshold for escalating a DC query to full cleaning.
    backend:
        Execution backend for the detection/cleaning hot path:
        ``"columnar"`` (default) or ``"rowstore"`` (the per-Row semantics
        oracle — both return identical results).
    batch_rule_sharing:
        When true (default), :meth:`repro.api.Session.execute_batch` groups
        the batch's plans by the rules their clean-nodes touch and runs one
        shared relaxation/detection pass per rule group before answering
        the member queries.  When false, ``execute_batch`` degrades to the
        sequential per-query path (useful for A/B measurements).
    batch_observe_cost_model:
        Whether queries executed inside a batch also feed the cost model.
        Off by default: the shared pass *is* the batch's cleaning strategy,
        and rule-group members report zero residual errors, which would
        only skew the model's per-query averages.
    parallelism:
        Worker count for the session's executor pool.  ``1`` (default)
        keeps every path on the serial oracle; ``> 1`` fans theta-join
        matrix cells and shard-routed FD relaxation closures out over the
        pool.  Parallel results are byte-identical to serial, in both
        answers and work-unit totals.
    num_shards:
        Row-range shard count for the per-table shard routers; ``0``
        (default) means "same as ``parallelism``".
    pool:
        Pool kind: ``"thread"`` (default; shares engine state directly),
        ``"process"`` (fork-based workers — real CPU scaling for the cell
        checks, requires a fork-capable platform), or ``"serial"``.
    matrix_maintenance:
        How theta-join detection matrices follow external data updates
        (``Daisy.update_table`` / ``update_rows``): ``"auto"`` (default)
        lets the per-batch cost hook pick patch-vs-rebuild, ``"patch"``
        forces positional stripe patching (falling back to a rebuild only
        when the striped-row set itself changes), ``"rebuild"`` re-derives
        every stripe wholesale on each sync — the maintenance oracle.  The
        strategies are byte-identical in structure, checked-cell
        invalidation, violations, repairs, and work units; they differ only
        in maintenance cost.
    """

    use_cost_model: bool = True
    expected_queries: int = 50
    dc_error_threshold: float = 0.2
    backend: str = BACKEND_COLUMNAR
    batch_rule_sharing: bool = True
    batch_observe_cost_model: bool = False
    parallelism: int = 1
    num_shards: int = 0
    pool: str = POOL_THREAD
    matrix_maintenance: str = MAINTENANCE_AUTO

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_pool_kind(self.pool)
        validate_maintenance_mode(self.matrix_maintenance)
        if self.expected_queries < 1:
            raise ValueError("expected_queries must be >= 1")
        if not 0.0 <= self.dc_error_threshold <= 1.0:
            raise ValueError("dc_error_threshold must be within [0, 1]")
        if self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0")

    def replace(self, **changes) -> "DaisyConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)
