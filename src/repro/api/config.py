"""Engine configuration for the layered session API.

:class:`DaisyConfig` is the single frozen bundle of knobs the engine used to
take as loose ``Daisy(...)`` keyword arguments, plus the batching knobs of
:meth:`repro.api.Session.execute_batch`.  Freezing the config keeps a
session's behaviour stable for its whole lifetime: two sessions connected
with different configs can run side by side over the same registered tables
without trampling each other's strategy state.

Two knobs accept ``"auto"`` — ``parallelism`` and ``batch_strategy`` — and
hand the choice to the session's :class:`repro.core.AdaptivePlanner`, which
prices the alternatives per pass from table statistics plus calibrated
observed work (see ``docs/cost-model.md``).  Every adaptive choice is
byte-identical to the corresponding forced configuration in violations,
repairs, and merged work units; only wall-clock cost depends on it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any

from repro.detection.maintenance import MAINTENANCE_AUTO, validate_maintenance_mode
from repro.parallel.pool import POOL_THREAD, validate_pool_kind
from repro.relation.columnview import BACKEND_COLUMNAR, validate_backend
from repro.relation.kernels import COLUMN_AUTO, validate_column_backend
from repro.storage.modes import STORAGE_MEMORY, validate_storage_mode

#: ``parallelism="auto"``: the planner picks pool kind / workers / shards per pass.
PARALLELISM_AUTO = "auto"

#: ``batch_strategy`` values for :meth:`repro.api.Session.execute_batch`.
BATCH_SHARED = "shared"
BATCH_SEQUENTIAL = "sequential"
BATCH_AUTO = "auto"
BATCH_STRATEGIES = (BATCH_SHARED, BATCH_SEQUENTIAL, BATCH_AUTO)


def validate_batch_strategy(name: str) -> str:
    if name not in BATCH_STRATEGIES:
        raise ValueError(
            f"unknown batch strategy {name!r}; expected one of {BATCH_STRATEGIES}"
        )
    return name


#: ``diagnostics`` values: runtime validators attached to the engine.
DIAGNOSTICS_NONE = "none"
DIAGNOSTICS_WITNESS = "witness"
DIAGNOSTICS_MODES = (DIAGNOSTICS_NONE, DIAGNOSTICS_WITNESS)


def validate_diagnostics(name: str) -> str:
    if name not in DIAGNOSTICS_MODES:
        raise ValueError(
            f"unknown diagnostics mode {name!r}; expected one of {DIAGNOSTICS_MODES}"
        )
    return name


@dataclass(frozen=True)
class DaisyConfig:
    """Immutable configuration for a :class:`repro.api.Session`.

    Parameters
    ----------
    use_cost_model:
        Enable the Section 5.2.3 strategy switch.  Disabled, the session
        always cleans incrementally ("Daisy w/o cost" in Fig. 7).
    expected_queries:
        The workload-length hint the cost model projects over.
    dc_error_threshold:
        Algorithm 2 threshold for escalating a DC query to full cleaning.
    backend:
        Execution backend for the detection/cleaning hot path:
        ``"columnar"`` (default) or ``"rowstore"`` (the per-Row semantics
        oracle — both return identical results).
    batch_rule_sharing:
        When true (default), :meth:`repro.api.Session.execute_batch` groups
        the batch's plans by the rules their clean-nodes touch and can run
        one shared relaxation/detection pass per rule group before answering
        the member queries.  When false, ``execute_batch`` degrades to the
        sequential per-query path regardless of ``batch_strategy`` (useful
        for A/B measurements).
    batch_strategy:
        Per-rule-group arbitration inside ``execute_batch``: ``"shared"``
        (default — every rule group runs one shared pass, the pre-adaptive
        behaviour), ``"sequential"`` (every query cleans incrementally on
        its own, order preserved), or ``"auto"`` (the session's
        :class:`~repro.core.AdaptivePlanner` prices "shared pass now"
        against "incremental per query" per rule group from the members'
        scope estimates plus calibrated observed work).  All three are
        byte-identical in query results and repairs; they differ in work
        units and in whether the Section 5.2.3 strategy switch sees the
        member queries.
    batch_observe_cost_model:
        Whether queries executed inside a batch also feed the cost model.
        Off by default: the shared pass *is* the batch's cleaning strategy,
        and rule-group members report zero residual errors, which would
        only skew the model's per-query averages.
    parallelism:
        Worker count for the session's executor pool, or ``"auto"``.  ``1``
        (default) keeps every path on the serial oracle; ``> 1`` fans
        theta-join matrix cells and shard-routed FD relaxation closures out
        over the pool.  ``"auto"`` hands the choice to the adaptive
        planner, which picks serial / thread / process and a worker count
        *per pass* from the pass's estimated work: tiny scopes stay serial,
        full-matrix-scale DC checks escalate to the process pool.  Every
        choice is byte-identical to serial in answers and work-unit totals.
    num_shards:
        Row-range shard count for the per-table shard routers; ``0``
        (default) means "same as the worker count" (fixed mode) or "let the
        planner follow its chosen worker count" (auto mode).
    pool:
        Pool kind for fixed ``parallelism > 1``: ``"thread"`` (default;
        shares engine state directly), ``"process"`` (fork-based workers —
        real CPU scaling for the cell checks, requires a fork-capable
        platform), or ``"serial"``.  Ignored under ``parallelism="auto"``,
        where the planner picks the kind per pass.
    auto_max_workers:
        Worker-count ceiling for ``parallelism="auto"``; ``0`` (default)
        means the host CPU count.  Benchmarks and tests pin it to make
        auto-mode decisions host-independent.
    column_backend:
        Kernel backend for the columnar substrate's index construction,
        grouping, and linear scans: ``"numpy"`` (typed ndarray kernels —
        argsort sorted-index construction, searchsorted join windows,
        boundary-detection grouping, boolean-mask filters), ``"python"``
        (the pure-list semantics oracle, dependency-free), or ``"auto"``
        (default — the adaptive planner prices the choice per table from
        its row count and the ``kernel`` calibration bucket; NumPy absent
        forces ``"python"``).  Like ``backend`` this is data-scoped: it is
        baked into each table at registration and a connecting session
        must agree with it.  All choices are byte-identical in violations,
        repairs, relations, sort orders, and work units (see
        ``docs/kernels.md``); only wall-clock cost differs.
    matrix_maintenance:
        How theta-join detection matrices follow external data updates
        (``Daisy.update_table`` / ``update_rows``): ``"auto"`` (default)
        lets the per-batch cost hook pick patch-vs-rebuild, ``"patch"``
        forces positional stripe patching (falling back to a rebuild only
        when the striped-row set itself changes), ``"rebuild"`` re-derives
        every stripe wholesale on each sync — the maintenance oracle.  The
        strategies are byte-identical in structure, checked-cell
        invalidation, violations, repairs, and work units; they differ only
        in maintenance cost.
    storage:
        Where a table's columns live between passes: ``"memory"`` (default
        — fully RAM-resident, the historical behaviour and the parity
        oracle), ``"mmap"`` (columns spill to typed on-disk stripe chunks
        and are memory-mapped back on demand under the
        ``memory_budget_mb`` LRU residency budget), ``"sqlite"`` (stripe
        spill *plus* a SQLite mirror that serves selection filters,
        order-by, and inequality-join candidate windows as indexed range
        scans, returning only candidate position sets), or ``"auto"``
        (the adaptive planner prices the three per table at session
        connect and pins the choice — see ``docs/cost-model.md``).  Like
        ``backend`` this is data-scoped: baked into each table at
        registration, and a connecting session must agree with it.  All
        modes are byte-identical in violations, repairs, relations, sort
        orders, and work units; only where the bytes live differs.
    memory_budget_mb:
        Resident-column budget (in MiB) for the spill-to-disk modes.  ``0``
        (default) means unlimited; a positive budget makes the stripe
        store's LRU tracker evict least-recently-used loaded columns once
        their estimated bytes exceed it, so relations larger than RAM can
        register, detect, and repair.  Data-scoped alongside ``storage``.
    diagnostics:
        Runtime validators attached while the engine lives: ``"none"``
        (default) or ``"witness"`` — the race witness of
        :mod:`repro.diagnostics.witness`, which instruments every
        ownership-annotated class and records any write that contradicts
        its declared seams.  Diagnostics never change engine results;
        they only observe (the parity suites run byte-identical with the
        witness attached).
    """

    use_cost_model: bool = True
    expected_queries: int = 50
    dc_error_threshold: float = 0.2
    backend: str = BACKEND_COLUMNAR
    batch_rule_sharing: bool = True
    batch_strategy: str = BATCH_SHARED
    batch_observe_cost_model: bool = False
    parallelism: int | str = 1
    num_shards: int = 0
    pool: str = POOL_THREAD
    auto_max_workers: int = 0
    column_backend: str = COLUMN_AUTO
    matrix_maintenance: str = MAINTENANCE_AUTO
    storage: str = STORAGE_MEMORY
    memory_budget_mb: int = 0
    diagnostics: str = DIAGNOSTICS_NONE

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_diagnostics(self.diagnostics)
        validate_column_backend(self.column_backend)
        validate_pool_kind(self.pool)
        validate_maintenance_mode(self.matrix_maintenance)
        validate_batch_strategy(self.batch_strategy)
        validate_storage_mode(self.storage)
        if self.memory_budget_mb < 0:
            raise ValueError("memory_budget_mb must be >= 0")
        if self.expected_queries < 1:
            raise ValueError("expected_queries must be >= 1")
        if not 0.0 <= self.dc_error_threshold <= 1.0:
            raise ValueError("dc_error_threshold must be within [0, 1]")
        if isinstance(self.parallelism, str):
            if self.parallelism != PARALLELISM_AUTO:
                raise ValueError(
                    f"parallelism must be an int >= 1 or {PARALLELISM_AUTO!r}, "
                    f"got {self.parallelism!r}"
                )
        elif self.parallelism < 1:
            raise ValueError("parallelism must be >= 1")
        if self.num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        if self.auto_max_workers < 0:
            raise ValueError("auto_max_workers must be >= 0")

    @property
    def adaptive_parallelism(self) -> bool:
        """True when the planner picks the execution shape per pass."""
        return self.parallelism == PARALLELISM_AUTO

    def replace(self, **changes: Any) -> "DaisyConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)
