"""Prepared queries: parse/resolve/plan once, execute many times.

``session.prepare(sql)`` runs the whole front half of the pipeline — SQL
parsing, column resolution against the catalog, and cleaning-aware plan
construction — exactly once.  The resulting :class:`PreparedQuery` can then
be re-executed without re-planning, optionally binding ``?`` placeholders
(``WHERE city = ?``) to fresh constants per execution.  The logical plan is
safely reusable across bindings because cleaning-operator placement depends
only on the *attributes* a query accesses (the Section 4.1 overlap test),
never on the constants it compares against.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import QueryError
from repro.query.ast import Condition, Parameter, Query, sql_for_log
from repro.query.logical import PlanNode
from repro.query.planner import ResolvedQuery
from repro._ownership import session_owned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session
    from repro.query.executor import QueryResult


def _substitute(
    conditions: list[Condition], params: Sequence[Any]
) -> list[Condition]:
    out = []
    for cond in conditions:
        if isinstance(cond.value, Parameter):
            out.append(dataclasses.replace(cond, value=params[cond.value.index]))
        else:
            out.append(cond)
    return out


@session_owned
class PreparedQuery:
    """A parsed, resolved, and planned query handle bound to a session.

    Create via :meth:`repro.api.Session.prepare`.  ``execute(*params)``
    binds the placeholders positionally and runs the query through the
    session (cost-model accounting and query logging included), reusing the
    cached plan.

    Staleness semantics mirror the session plan cache: the plan is rebuilt
    when the engine's **registration version** moves (a new rule/table must
    appear in the cleaning operators), but survives **data epochs**
    (external updates via ``Daisy.update_table`` change cell values, and
    plan structure never depends on cell values — only the session's cost
    models refresh).
    """

    def __init__(
        self,
        session: "Session",
        query: Query,
        resolved: ResolvedQuery,
        plan: PlanNode,
        sql_text: str | None = None,
    ) -> None:
        self._session = session
        self.query = query
        self.resolved = resolved
        self.plan = plan
        self.sql = sql_text if sql_text is not None else sql_for_log(query)
        self._registration_version = session.engine.registration_version
        params = query.parameters()
        indices = [p.index for p in params]
        if indices != list(range(len(indices))):
            raise QueryError(
                f"parameter placeholders must be indexed 0..n-1, got {indices}"
            )
        self.param_count = len(indices)

    def refresh_if_stale(self) -> None:
        """Re-resolve and re-plan if tables/rules were registered since.

        Plans embed the cleaning operators of the rules known at prepare
        time; a rule added afterwards must show up on the next execution,
        so the cached plan is rebuilt whenever the engine's registration
        version moved (same trigger the session's cost models use).
        """
        engine_version = self._session.engine.registration_version
        if engine_version == self._registration_version:
            return
        from repro.query.planner import build_plan, resolve_query

        self.resolved = resolve_query(self.query, self._session.catalog)
        self.plan = build_plan(
            self.query, self._session.catalog, resolved=self.resolved
        )
        self._registration_version = engine_version

    # -- introspection ---------------------------------------------------------

    def explain(self) -> str:
        """The cleaning-aware logical plan, as text (re-planned only if the
        engine's registration changed since prepare time)."""
        self.refresh_if_stale()
        return self.plan.pretty()

    def __repr__(self) -> str:
        return (
            f"PreparedQuery({self.sql!r}, params={self.param_count}, "
            f"tables={self.query.tables})"
        )

    # -- execution -------------------------------------------------------------

    def bind(self, *params: Any) -> tuple[Query, ResolvedQuery]:
        """The (query, resolved) pair with placeholders replaced by ``params``.

        Returns the original objects untouched when the query has no
        placeholders; otherwise shallow copies with fresh condition lists —
        the plan is shared either way.
        """
        if len(params) != self.param_count:
            raise QueryError(
                f"prepared query expects {self.param_count} parameter(s), "
                f"got {len(params)}"
            )
        if not self.param_count:
            return self.query, self.resolved
        bound_query = dataclasses.replace(
            self.query, conditions=_substitute(self.query.conditions, params)
        )
        bound_resolved = ResolvedQuery(
            query=bound_query,
            conditions=_substitute(self.resolved.conditions, params),
            join_conditions=self.resolved.join_conditions,
            projection=self.resolved.projection,
            group_by=self.resolved.group_by,
        )
        return bound_query, bound_resolved

    def execute(self, *params: Any) -> "QueryResult":
        """Execute with the given positional parameters (may be empty)."""
        return self._session._execute_prepared(self, params)
