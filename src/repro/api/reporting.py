"""Per-query and per-workload execution reports.

These used to live on the ``Daisy`` god-object's module; they are now part
of the public API layer because sessions, prepared queries, and batches all
produce them.  ``repro.daisy`` re-exports both names for backward
compatibility.

Workload-level reports also carry the **adaptive decision audit trail**:
every choice the session's :class:`~repro.core.AdaptivePlanner` took while
the workload ran — strategy switches, per-pass pool/worker/shard
selections, per-rule-group batch arbitration — lands in
:attr:`WorkloadReport.decisions` as
:class:`~repro.core.costmodel.PassDecision` records (choice, the modeled
cost of every alternative, and the observed work units once the pass ran),
so benchmarks can audit the model against forced-choice runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.costmodel import PassDecision
from repro._ownership import session_owned


@dataclass
class QueryLogEntry:
    """Bookkeeping for one executed query (feeds the workload reports)."""

    sql: str
    result_size: int
    elapsed_seconds: float
    errors_fixed: int
    extra_tuples: int
    switched_to_full: bool = False
    work_units: int = 0


@session_owned
@dataclass
class WorkloadReport:
    """Aggregate of a workload execution."""

    entries: list[QueryLogEntry] = field(default_factory=list)
    total_seconds: float = 0.0
    total_work_units: int = 0
    switch_query_index: int | None = None
    #: Adaptive decisions taken while this workload ran, in order.
    decisions: list[PassDecision] = field(default_factory=list)

    def cumulative_seconds(self) -> list[float]:
        out, acc = [], 0.0
        for entry in self.entries:
            acc += entry.elapsed_seconds
            out.append(acc)
        return out

    def cumulative_work(self) -> list[int]:
        out, acc = [], 0
        for entry in self.entries:
            acc += entry.work_units
            out.append(acc)
        return out

    def decisions_of_kind(self, kind: str) -> list[PassDecision]:
        """The recorded decisions of one family (``"pool"``,
        ``"batch_strategy"``, ``"strategy_switch"``)."""
        return [d for d in self.decisions if d.kind == kind]
