"""Per-query and per-workload execution reports.

These used to live on the ``Daisy`` god-object's module; they are now part
of the public API layer because sessions, prepared queries, and batches all
produce them.  ``repro.daisy`` re-exports both names for backward
compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class QueryLogEntry:
    """Bookkeeping for one executed query (feeds the workload reports)."""

    sql: str
    result_size: int
    elapsed_seconds: float
    errors_fixed: int
    extra_tuples: int
    switched_to_full: bool = False
    work_units: int = 0


@dataclass
class WorkloadReport:
    """Aggregate of a workload execution."""

    entries: list[QueryLogEntry] = field(default_factory=list)
    total_seconds: float = 0.0
    total_work_units: int = 0
    switch_query_index: Optional[int] = None

    def cumulative_seconds(self) -> list[float]:
        out, acc = [], 0.0
        for entry in self.entries:
            acc += entry.elapsed_seconds
            out.append(acc)
        return out

    def cumulative_work(self) -> list[int]:
        out, acc = [], 0
        for entry in self.entries:
            acc += entry.work_units
            out.append(acc)
        return out
