"""Sessions: per-workload execution state over a shared engine.

A :class:`Session` owns everything that is scoped to *one workload* — the
query log, the per-table cost models (and their observations), the
executors — while the engine (:class:`repro.Daisy`) keeps what is scoped to
the *data*: registered tables, rules, provenance, theta-join matrices, work
counters.  Splitting the two means several sessions with different configs
(cost model on/off, different thresholds) can run against the same tables
without resetting each other's strategy state, and the engine object stops
being a god-object that conflates both lifetimes.

Create sessions with :meth:`repro.Daisy.connect`::

    daisy = Daisy()
    daisy.register_table("cities", relation)
    daisy.add_rule("cities", "zip -> city")
    with daisy.connect() as session:
        prepared = session.prepare("SELECT zip FROM cities WHERE city = ?")
        result = prepared.execute("Los Angeles")
        batch = session.execute_batch(queries)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro.constraints.dc import Rule
from repro.core.costmodel import (
    AdaptivePlanner,
    CostModel,
    CostModelConfig,
    QueryObservation,
    available_cpus,
)
from repro.core.operators import CleanReport, clean_full_table
from repro._ownership import session_owned
from repro.core.state import TableState
from repro.engine.stats import WorkCounter
from repro.errors import PlanError, SessionError
from repro.metrics.timing import clock
from repro.parallel.clean import ParallelContext
from repro.parallel.pool import fork_available
from repro.query.ast import Parameter, Query, sql_for_log
from repro.query.executor import Executor, QueryResult
from repro.query.logical import CleanJoinNode, CleanSigmaNode, PlanNode, plan_contains
from repro.query.planner import build_plan, explain as explain_plan, resolve_query
from repro.query.sql import parse_sql
from repro.relation.kernels import COLUMN_AUTO
from repro.relation.relation import Relation
from repro.storage.modes import STORAGE_AUTO

from repro.api.batch import BatchQuery, BatchResult, run_batch
from repro.api.config import DaisyConfig
from repro.api.prepared import PreparedQuery
from repro.api.reporting import QueryLogEntry, WorkloadReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.state import UpdateReport
    from repro.daisy import Daisy
    from repro.relation.relation import Row
    from repro.repair.provenance import ProvenanceStore
    from repro.service.snapshot import EpochLease, EpochSnapshot

#: LRU bound of the session's cross-query plan cache.
_PLAN_CACHE_LIMIT = 256


def _plan_structure_key(query: Query) -> tuple[Any, ...]:
    """A query's plan-relevant structure, constants erased.

    Cleaning-operator placement depends only on the tables and attributes a
    query accesses (the Section 4.1 overlap test), never on the constants it
    compares against — the same property that lets prepared queries share
    one plan across ``?`` bindings.  Two queries with equal structure keys
    therefore share one logical plan.

    Constants are erased as an opaque ``None`` marker — never as the value
    itself, so constants that hash/compare equal across types (``1`` vs
    ``1.0`` vs ``True``) cannot perturb the key, and two queries differing
    only in constants intentionally alias (their plans are identical).
    Parameters keep their index: queries with different placeholder
    wiring — e.g. one ``?`` bound twice vs two distinct ``?``s — are
    structurally different and must not share a cache slot.
    """
    return (
        tuple(query.tables),
        query.connector.value,
        tuple(
            (
                c.column.qualified(),
                c.op,
                ("?", c.value.index) if isinstance(c.value, Parameter) else None,
            )
            for c in query.conditions
        ),
        tuple(
            (jc.left.qualified(), jc.right.qualified())
            for jc in query.join_conditions
        ),
        tuple(p.qualified() for p in query.projection),
        tuple((a.func, a.column.qualified(), a.alias) for a in query.aggregates),
        tuple(g.qualified() for g in query.group_by),
        query.select_star,
    )


@session_owned
class Session:
    """One workload's execution context over a shared engine.

    Usable as a context manager; :meth:`close` marks the session closed and
    releases the session's executor pool (the engine and its table states
    outlive every session).

    The session also owns three workload-scoped accelerators:

    * the **adaptive planner** (:attr:`planner`, a
      :class:`~repro.core.AdaptivePlanner`): the unified cost model that
      prices the strategy switch, per-pass pool/worker/shard shapes
      (``parallelism="auto"``), and per-rule-group batch arbitration
      (``batch_strategy="auto"``) from table statistics plus calibrated
      observed work; every decision is recorded and surfaced on workload
      reports.  Invariant: whatever the planner picks is byte-identical to
      the forced-choice oracle in violations, repairs, and merged work
      units — adaptivity moves wall-clock time only;
    * the **parallel context** (``config.parallelism > 1`` or ``"auto"``):
      executor pools plus per-table shard routers, created lazily and
      closed with the session — see :mod:`repro.parallel`;
    * the **cross-query plan cache**: ad-hoc :meth:`execute` calls reuse
      the logical plan of any earlier same-structure query (constants
      erased), giving them :meth:`prepare`'s skip-replanning benefit;
      entries are invalidated by rule/table registration.
    """

    def __init__(self, engine: "Daisy", config: DaisyConfig | None = None) -> None:
        self._engine = engine
        self.config = config if config is not None else engine.config
        self.states: dict[str, TableState] = engine.states
        self.catalog = engine.catalog
        self.query_log: list[QueryLogEntry] = []
        self.cost_models: dict[str, CostModel | None] = {}
        #: (registration version, data version) each cost model was built at.
        self._cost_model_versions: dict[str, tuple[int, int]] = {}
        #: The unified adaptive cost model: prices strategy switches, pool
        #: shapes, and batch arbitration, and records every decision.
        self.planner = AdaptivePlanner(
            max_workers=(
                self.config.auto_max_workers or available_cpus()
                if self.config.adaptive_parallelism
                else 0
            ),
            process_pool_available=fork_available(),
        )
        self._parallel: ParallelContext | None = None
        if self.config.adaptive_parallelism:
            self._parallel = ParallelContext(
                self.config.pool,
                self.planner.max_workers,
                self.config.num_shards,
                planner=self.planner,
                adaptive=True,
            )
        elif self.config.parallelism > 1:
            self._parallel = ParallelContext(
                self.config.pool,
                self.config.parallelism,
                self.config.num_shards,
            )
        self._executor = Executor(
            self.states,
            self.catalog,
            dc_error_threshold=self.config.dc_error_threshold,
            parallel=self._parallel,
        )
        self._plain_executor = Executor(
            self.states,
            self.catalog,
            cleaning_enabled=False,
            dc_error_threshold=self.config.dc_error_threshold,
        )
        self._plan_cache: OrderedDict[tuple[Any, ...], PlanNode] = OrderedDict()
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self._closed = False
        # Price the column_backend="auto" knob for every registered table
        # and pin the first concrete choice (data-scoped, like `backend`).
        # Both alternatives are byte-identical in all outputs, so the
        # decision — recorded in the planner log like any other — moves
        # wall-clock time only; tables registered after connect resolve
        # statically until another session connects.
        if self.config.column_backend == COLUMN_AUTO:
            for table_name, state in self.states.items():
                if state.column_backend == COLUMN_AUTO:
                    decision = self.planner.choose_column_backend(
                        table_name, len(state.relation.rows)
                    )
                    state.pin_column_backend(decision.choice)
        # Price the storage="auto" knob the same way.  Storage, too, is
        # data-scoped and byte-identical across alternatives: the pinned
        # mode decides where column bytes live (RAM, mmap stripes, or the
        # SQLite pushdown mirror), never what the engine computes.
        if self.config.storage == STORAGE_AUTO:
            for table_name, state in self.states.items():
                if state.storage == STORAGE_AUTO:
                    decision = self.planner.choose_storage(
                        table_name,
                        len(state.relation.rows),
                        len(state.relation.schema.names),
                        self.config.memory_budget_mb,
                        theta_rules=bool(state.dc_rules()),
                    )
                    state.pin_storage(decision.choice)

    # -- lifecycle -------------------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Mark the session closed and release its executor pool.

        Also releases every storage OS handle (SQLite connections; stripe
        reads are already transient) — the engine reopens them lazily if
        another session connects, and ``Daisy.close()`` deletes the spill
        files themselves.  Further execution raises SessionError; closing
        twice is a no-op.
        """
        if self._parallel is not None:
            self._parallel.close()
        self._engine.storage_manager.release_handles()
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def engine(self) -> "Daisy":
        return self._engine

    @property
    def parallel(self) -> ParallelContext | None:
        """The session's parallel context (None when ``parallelism == 1``)."""
        return self._parallel

    def _check_open(self) -> None:
        if self._closed:
            raise SessionError("session is closed; connect() a new one")

    def _state(self, table: str) -> TableState:
        try:
            return self.states[table]
        except KeyError:
            raise PlanError(f"table {table!r} is not registered") from None

    # -- prepared queries -------------------------------------------------------------

    def prepare(self, query: Query | str) -> PreparedQuery:
        """Parse, resolve, and plan a query once; bind/execute it many times.

        ``?`` placeholders in the WHERE clause become positional parameters
        of :meth:`PreparedQuery.execute`.
        """
        self._check_open()
        if isinstance(query, str):
            parsed = parse_sql(query)
            sql_text: str | None = query
        else:
            parsed = query
            sql_text = None
        resolved = resolve_query(parsed, self.catalog)
        plan = build_plan(parsed, self.catalog, resolved=resolved)
        return PreparedQuery(self, parsed, resolved, plan, sql_text)

    # -- execution --------------------------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Execute one query with inline cleaning (and maybe switch strategy).

        Planning goes through the session's cross-query plan cache: queries
        sharing the structure (tables, attributes, operators — constants
        erased) of an earlier query reuse its logical plan, the same
        skip-replanning benefit :meth:`prepare` gives.  The cache is keyed
        on the engine's registration version, so adding a rule or table
        invalidates every cached plan at once.
        """
        self._check_open()
        if isinstance(query, str):
            parsed = parse_sql(query)
            sql_text = query
        else:
            parsed = query
            sql_text = sql_for_log(parsed)
        resolved = resolve_query(parsed, self.catalog)
        plan = self._cached_plan(parsed)
        if plan is None:
            plan = build_plan(parsed, self.catalog, resolved=resolved)
            self._store_plan(parsed, plan)
        return self._run(
            parsed,
            sql_text,
            lambda: self._executor.execute_resolved(parsed, resolved, plan),
        )

    def _plan_cache_key(self, query: Query) -> tuple[Any, ...]:
        return (self._engine.registration_version, _plan_structure_key(query))

    def _cached_plan(self, query: Query) -> PlanNode | None:
        key = self._plan_cache_key(query)
        plan = self._plan_cache.get(key)
        if plan is None:
            self.plan_cache_misses += 1
            return None
        self._plan_cache.move_to_end(key)
        self.plan_cache_hits += 1
        return plan

    def _store_plan(self, query: Query, plan: PlanNode) -> None:
        self._plan_cache[self._plan_cache_key(query)] = plan
        while len(self._plan_cache) > _PLAN_CACHE_LIMIT:
            self._plan_cache.popitem(last=False)

    def execute_workload(self, queries: Sequence[Query | str]) -> WorkloadReport:
        """Execute a query sequence one at a time (cumulative timing/work).

        This is the sequential baseline; use :meth:`execute_batch` to share
        cleaning passes between queries that touch the same rules.
        """
        self._check_open()
        report = WorkloadReport()
        started = clock()
        decision_mark = self.planner.mark()
        for i, query in enumerate(queries):
            self.execute(query)
            entry = self.query_log[-1]
            report.entries.append(entry)
            if entry.switched_to_full and report.switch_query_index is None:
                report.switch_query_index = i
        report.total_seconds = clock() - started
        report.total_work_units = sum(e.work_units for e in report.entries)
        report.decisions = self.planner.decisions_since(decision_mark)
        return report

    def execute_batch(self, queries: Sequence[BatchQuery]) -> BatchResult:
        """Execute a batch, sharing one cleaning pass per rule group.

        Accepts SQL strings, ASTs, and fully-bound prepared queries.  See
        :mod:`repro.api.batch` for grouping and equivalence semantics.
        """
        self._check_open()
        return run_batch(self, queries)

    def _execute_prepared(
        self,
        prepared: PreparedQuery,
        params: Sequence[Any],
        observe: bool = True,
    ) -> QueryResult:
        self._check_open()
        prepared.refresh_if_stale()
        bound_query, bound_resolved = prepared.bind(*params)
        sql_text = sql_for_log(bound_query) if params else prepared.sql
        return self._run(
            bound_query,
            sql_text,
            lambda: self._executor.execute_resolved(
                bound_query, bound_resolved, prepared.plan
            ),
            observe=observe,
        )

    def _route_prepared(self, prepared: PreparedQuery) -> QueryResult:
        """Answer a rule-group member over the already-cleaned state.

        Plain (cleaning-disabled) execution: the batch's shared pass did the
        relaxation/detection/repair, so the member only filters, joins, and
        aggregates — repaired cells match its conditions with
        possible-worlds semantics.
        """
        self._check_open()
        return self._run(
            prepared.query,
            prepared.sql,
            lambda: self._plain_executor.execute_resolved(
                prepared.query, prepared.resolved, prepared.plan
            ),
            observe=False,
        )

    def _run(
        self,
        parsed: Query,
        sql_text: str,
        runner: Callable[[], QueryResult],
        observe: bool = True,
    ) -> QueryResult:
        """Shared accounting around one query execution.

        Snapshots per-table work, runs the query, lets the cost model
        observe it (and possibly switch to full cleaning), and appends the
        query-log entry.
        """
        work_before = {t: self._state(t).counter.total() for t in parsed.tables}
        result = runner()
        switched = False

        # The cost model only reasons about queries that needed cleaning:
        # a query not touching any rule neither observes nor switches.
        query_cleaned = result.plan is not None and (
            plan_contains(result.plan, CleanSigmaNode)
            or plan_contains(result.plan, CleanJoinNode)
        )
        if observe and self.config.use_cost_model and query_cleaned:
            for table in parsed.tables:
                state = self.states[table]
                model = self._cost_model(table)
                if model is None or not state.rules:
                    continue
                model.observe(
                    QueryObservation(
                        result_size=len(result.result_tids.get(table, ())),
                        extra_tuples=result.report.extra_tuples,
                        errors=result.report.errors_fixed,
                        detection_cost=result.report.detection_cost,
                    )
                )
                pending = [
                    r for r in state.rules if not state.is_fully_cleaned(r)
                ]
                if pending:
                    # The planner evaluates the Section 5.2.3 inequality and
                    # records the verdict (both projected costs included) on
                    # the decision log the workload report slices.
                    decision = self.planner.strategy_switch(table, model)
                    if decision is not None and decision.choice == "full_clean_now":
                        started = clock()
                        clean_before = state.counter.total()
                        clean_full_table(state, pending, parallel=self._parallel)
                        self.planner.observe(
                            decision, state.counter.total() - clean_before
                        )
                        result.elapsed_seconds += clock() - started
                        switched = True

        work_after = {t: self.states[t].counter.total() for t in parsed.tables}
        entry = QueryLogEntry(
            sql=sql_text,
            result_size=len(result),
            elapsed_seconds=result.elapsed_seconds,
            errors_fixed=result.report.errors_fixed,
            extra_tuples=result.report.extra_tuples,
            switched_to_full=switched,
            work_units=sum(work_after[t] - work_before[t] for t in parsed.tables),
        )
        self.query_log.append(entry)
        return result

    # -- cost models ------------------------------------------------------------------

    def _cost_model(self, table: str) -> CostModel | None:
        """The session's cost model for one table (built lazily).

        Rebuilt from the engine's precomputed statistics whenever *this
        table's* registration changed (a new rule resets the projection,
        matching the old per-``add_rule`` refresh) **or its data epoch
        moved** (an external update rebuilt the statistics the model
        projects from); registrations and updates on other tables leave the
        model — and its accumulated observations — alone.
        """
        state = self._state(table)
        version = (
            self._engine.table_versions.get(table, 0),
            state.data_epoch,
        )
        if (
            table in self.cost_models
            and self._cost_model_versions.get(table) == version
        ):
            return self.cost_models[table]
        model: CostModel | None = None
        if state.rules:
            eps = state.statistics.total_erroneous()
            p = state.statistics.max_candidate_estimate()
            model = CostModel(
                dataset_size=len(state.relation),
                estimated_errors=eps,
                candidates_per_error=max(1.0, p),
                is_dc=bool(state.dc_rules()),
                config=CostModelConfig(expected_queries=self.config.expected_queries),
            )
        self.cost_models[table] = model
        self._cost_model_versions[table] = version
        return model

    # -- direct cleaning ---------------------------------------------------------------

    def clean_table(
        self, table: str, rules: Iterable[Rule] | None = None
    ) -> CleanReport:
        """Clean a whole table now (bypass the query-driven path)."""
        self._check_open()
        return clean_full_table(self._state(table), rules, parallel=self._parallel)

    # -- snapshot-pinned reads (service tier) -------------------------------------------

    def snapshot(self, *tables: str) -> "EpochSnapshot":
        """Pin the named tables at their current data epochs.

        Returns an :class:`~repro.service.snapshot.EpochSnapshot` whose
        ``verify()`` raises
        :class:`~repro.service.snapshot.SnapshotViolation` if any pinned
        table's epoch moved (or an update was mid-flight) while the read
        ran.  The pin tolerates the read's *own* cleaning — repairs
        replace the relation and advance storage generations without
        moving the data epoch, which is exactly what makes the epoch the
        unit of isolation.
        """
        from repro.service.snapshot import EpochSnapshot, SnapshotHandle

        self._check_open()
        handles = {}
        for table in sorted(tables):
            state = self._state(table)
            storage = self._engine.storage_manager.get(table)
            handles[table] = SnapshotHandle(table, state, storage)
        return EpochSnapshot(handles)

    def execute_pinned(
        self, query: Query | str
    ) -> "tuple[QueryResult, EpochSnapshot]":
        """Execute one query pinned to a data-epoch snapshot.

        Pins every table the query touches, executes through the normal
        cleaning path, then verifies the pin — raising
        :class:`~repro.service.snapshot.SnapshotViolation` if a concurrent
        external update tore the read.  Returns the result together with
        the (verified) snapshot, whose ``epochs()`` says exactly which
        epochs the answer reflects.
        """
        self._check_open()
        parsed = parse_sql(query) if isinstance(query, str) else query
        snap = self.snapshot(*parsed.tables)
        result = self.execute(query)
        snap.verify()
        return result, snap

    def epoch_lease(self, table: str) -> "EpochLease":
        """Acquire an epoch compare-and-swap lease for one table's write."""
        from repro.service.snapshot import EpochLease

        self._check_open()
        return EpochLease(table, self._state(table))

    # -- external data updates ----------------------------------------------------------

    def update_table(
        self,
        table: str,
        updates: dict[tuple[int, str], Any],
        lease: "EpochLease | None" = None,
    ) -> "UpdateReport":
        """Apply external cell updates through the engine (see
        :meth:`repro.Daisy.update_table`).  The session's cached plans stay
        valid — plan structure never depends on cell values — while its
        cost models refresh from the rebuilt statistics on next use.

        With ``lease`` (from :meth:`epoch_lease`), the update runs as an
        epoch compare-and-swap: the lease is checked immediately before
        the update applies and committed against the resulting report, so
        an interleaved writer surfaces as
        :class:`~repro.service.snapshot.EpochCasError` instead of silent
        lost updates."""
        self._check_open()
        if lease is not None:
            lease.check()
        report = self._engine.update_table(table, updates)
        if lease is not None:
            lease.commit(report)
        return report

    def update_rows(
        self,
        table: str,
        rows: Iterable["Row"],
        lease: "EpochLease | None" = None,
    ) -> "UpdateReport":
        """Apply external row replacements (see :meth:`repro.Daisy.update_rows`);
        ``lease`` adds the same epoch-CAS discipline as :meth:`update_table`."""
        self._check_open()
        if lease is not None:
            lease.check()
        report = self._engine.update_rows(table, rows)
        if lease is not None:
            lease.commit(report)
        return report

    # -- introspection -----------------------------------------------------------------

    def table(self, name: str) -> Relation:
        """The current (gradually cleaned) relation of a table."""
        return self._state(name).relation

    def work_counter(self, table: str) -> WorkCounter:
        return self._state(table).counter

    def total_work(self) -> int:
        return sum(s.counter.total() for s in self.states.values())

    def probabilistic_cells(self, table: str) -> int:
        return self._state(table).probabilistic_cells()

    def provenance(self, table: str) -> "ProvenanceStore":
        return self._state(table).provenance

    def explain(self, query: Query | str) -> str:
        """The cleaning-aware logical plan for a query, as text."""
        parsed = parse_sql(query) if isinstance(query, str) else query
        return explain_plan(parsed, self.catalog)
