"""Baselines: offline full-dataset cleaner and HoloClean-like inference."""

from repro.baselines.offline import OfflineCleaner, OfflineReport, offline_then_query
from repro.baselines.holoclean import (
    HoloCleanLike,
    HoloCleanReport,
    domains_from_daisy,
    most_probable_repairs,
)

__all__ = [
    "OfflineCleaner",
    "OfflineReport",
    "offline_then_query",
    "HoloCleanLike",
    "HoloCleanReport",
    "domains_from_daisy",
    "most_probable_repairs",
]
