"""A HoloClean-like probabilistic-inference baseline.

HoloClean repairs data by combining integrity constraints, quantitative
statistics, and inference.  This reimplementation follows the same pipeline
at laptop scale:

1. **Violation detection** over the given rules (same detectors as Daisy).
2. **Domain generation** per dirty cell from value co-occurrence statistics:
   candidate values for cell (t, A) are values v of A that co-occur with t's
   other attribute values; a pruning threshold keeps the top-k candidates
   (the pruning the paper notes can cost HoloClean accuracy when many rules
   are known).
3. **Inference**: weighted voting trained on the clean fraction of the
   dataset — each candidate scores the sum over other attributes B of
   P(A=v | B=t.B), estimated from co-occurrence counts; the argmax wins.

``domains_from_daisy`` plugs Daisy's candidate sets into step 3 — the
"DaisyH" configuration of Table 5 (populate HoloClean's cell_domain with
Daisy's candidates, run HoloClean inference on top).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.constraints.dc import Rule, as_dc, as_fd
from repro.detection.fd_detector import detect_fd_violations
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.metrics.timing import clock
from repro.probabilistic.value import PValue
from repro.relation.relation import Relation


@dataclass
class HoloCleanReport:
    """Cost/outcome accounting for one HoloClean-like run."""

    dirty_cells: int = 0
    domain_size_total: int = 0
    repairs_applied: int = 0
    elapsed_seconds: float = 0.0
    work: WorkCounter = field(default_factory=WorkCounter)


class HoloCleanLike:
    """Co-occurrence-statistics repair engine (HoloClean stand-in).

    Parameters
    ----------
    domain_prune_k:
        Keep at most this many candidates per cell (HoloClean's pruning
        threshold; smaller is faster but can drop the true value — the
        effect the paper observes when many rules are known).
    """

    def __init__(self, domain_prune_k: int = 5, keep_bias: float = 1.25):
        self.domain_prune_k = domain_prune_k
        #: Multiplier on the current value's score: a challenger must beat
        #: the current value by this factor before the cell is changed
        #: (repair minimality — don't touch cells the evidence supports).
        self.keep_bias = keep_bias

    # -- step 1: violation detection ---------------------------------------------------

    def dirty_cells(
        self,
        relation: Relation,
        rules: Sequence[Rule],
        counter: WorkCounter | None = None,
    ) -> set[tuple[int, str]]:
        """All (tid, attr) cells implicated in a violation of any rule."""
        out: set[tuple[int, str]] = set()
        for rule in rules:
            fd = as_fd(rule)
            if fd is not None:
                report = detect_fd_violations(relation, fd, counter=counter)
                for group in report.groups:
                    for tid in group.tids:
                        out.add((tid, fd.rhs))
                        for attr in fd.lhs:
                            out.add((tid, attr))
            else:
                dc = as_dc(rule)
                matrix = ThetaJoinMatrix(relation, dc, counter=counter)
                for pair in matrix.check_full():
                    for attr in dc.attributes():
                        out.add((pair.t1, attr))
                        out.add((pair.t2, attr))
        return out

    # -- step 2: domain generation --------------------------------------------------------

    def _cooccurrence(
        self, relation: Relation, counter: WorkCounter | None
    ) -> dict[tuple[str, Any, str], dict[Any, int]]:
        """counts[(B, b, A)][a] = #tuples with t.B = b and t.A = a."""
        counts: dict[tuple[str, Any, str], dict[Any, int]] = {}
        names = relation.schema.names
        for row in relation.rows:
            if counter is not None:
                counter.charge_scan()
            values = [
                cell.most_probable() if isinstance(cell, PValue) else cell
                for cell in row.values
            ]
            for i, b_attr in enumerate(names):
                for j, a_attr in enumerate(names):
                    if i == j:
                        continue
                    key = (b_attr, values[i], a_attr)
                    bucket = counts.setdefault(key, {})
                    bucket[values[j]] = bucket.get(values[j], 0) + 1
        return counts

    def generate_domains(
        self,
        relation: Relation,
        cells: set[tuple[int, str]],
        counter: WorkCounter | None = None,
    ) -> dict[tuple[int, str], list[Any]]:
        """Candidate domains per dirty cell, pruned to ``domain_prune_k``.

        Faithful to HoloClean's per-cell domain generation: for every dirty
        cell the dataset is traversed to score values of the cell's
        attribute that co-occur with the tuple's other attribute values.
        This O(|cells| · n · |attrs|) behaviour is what the paper measures
        against ("Holoclean traverses multiple times the dataset for each
        dirty group to compute the domain").
        """
        tid_rows = relation.tid_index()
        names = relation.schema.names
        indexes = {name: relation.schema.index_of(name) for name in names}
        domains: dict[tuple[int, str], list[Any]] = {}

        def concrete(cell: Any) -> Any:
            return cell.most_probable() if isinstance(cell, PValue) else cell

        for tid, attr in sorted(cells, key=lambda c: (c[0], c[1])):
            row = tid_rows.get(tid)
            if row is None:
                continue
            attr_idx = indexes[attr]
            current_val = concrete(row.values[attr_idx])
            context = {
                name: concrete(row.values[indexes[name]])
                for name in names
                if name != attr
            }
            scores: dict[Any, float] = {}
            # One dataset traversal per dirty cell.
            for other in relation.rows:
                if counter is not None:
                    counter.charge_scan()
                matches = 0
                for name, value in context.items():
                    if concrete(other.values[indexes[name]]) == value:
                        matches += 1
                if matches:
                    candidate = concrete(other.values[attr_idx])
                    scores[candidate] = scores.get(candidate, 0.0) + matches
            ranked = sorted(scores.items(), key=lambda kv: (-kv[1], str(kv[0])))
            domain = [v for v, _s in ranked[: self.domain_prune_k]]
            if current_val not in domain:
                domain.append(current_val)
            domains[(tid, attr)] = domain
        return domains

    # -- step 3: inference ----------------------------------------------------------------

    def infer(
        self,
        relation: Relation,
        domains: dict[tuple[int, str], list[Any]],
        clean_tids: set[int] | None = None,
        counter: WorkCounter | None = None,
    ) -> dict[tuple[int, str], Any]:
        """Pick the best candidate per cell by co-occurrence voting.

        Statistics are estimated over ``clean_tids`` (the non-violating
        fraction) when provided — HoloClean's "training on the clean part".
        When violations implicate most of the dataset the clean fraction is
        too small to be representative; statistics then fall back to the
        whole relation (errors are sparse at cell level, so the majority
        signal stays correct).
        """
        if clean_tids is not None and len(clean_tids) >= 0.5 * len(relation):
            train = relation.restrict_tids(clean_tids)
            if len(train) == 0:
                train = relation
        else:
            train = relation
        cooc = self._cooccurrence(train, counter)
        tid_rows = relation.tid_index()
        names = relation.schema.names
        repairs: dict[tuple[int, str], Any] = {}
        for (tid, attr), domain in domains.items():
            row = tid_rows.get(tid)
            if row is None or not domain:
                continue
            attr_idx = relation.schema.index_of(attr)
            current_cell = row.values[attr_idx]
            current_val = (
                current_cell.most_probable()
                if isinstance(current_cell, PValue)
                else current_cell
            )
            scores: dict[Any, float] = {}
            for value in domain:
                score = 0.0
                for other_attr in names:
                    if other_attr == attr:
                        continue
                    other_cell = row.values[relation.schema.index_of(other_attr)]
                    other_val = (
                        other_cell.most_probable()
                        if isinstance(other_cell, PValue)
                        else other_cell
                    )
                    bucket = cooc.get((other_attr, other_val, attr), {})
                    total = sum(bucket.values())
                    if total:
                        score += bucket.get(value, 0) / total
                    if counter is not None:
                        counter.charge_comparisons()
                scores[value] = score
            best_value = max(
                scores, key=lambda v: (scores[v], v == current_val, str(v))
            )
            # Minimality: keep the current value unless the challenger beats
            # it by the keep-bias margin.
            current_score = scores.get(current_val, 0.0)
            if (
                best_value != current_val
                and scores[best_value] < current_score * self.keep_bias
            ):
                best_value = current_val
            repairs[(tid, attr)] = best_value
        return repairs

    # -- end-to-end -----------------------------------------------------------------------

    def repair(
        self,
        relation: Relation,
        rules: Sequence[Rule],
        external_domains: dict[tuple[int, str], list[Any]] | None = None,
    ) -> tuple[Relation, dict[tuple[int, str], Any], HoloCleanReport]:
        """Full pipeline; ``external_domains`` enables the DaisyH variant."""
        report = HoloCleanReport()
        started = clock()
        cells = self.dirty_cells(relation, rules, counter=report.work)
        report.dirty_cells = len(cells)
        dirty_tids = {tid for tid, _ in cells}
        clean_tids = relation.tids() - dirty_tids
        if external_domains is not None:
            domains = {k: v for k, v in external_domains.items() if k in cells or True}
        else:
            domains = self.generate_domains(relation, cells, counter=report.work)
        report.domain_size_total = sum(len(d) for d in domains.values())
        repairs = self.infer(relation, domains, clean_tids, counter=report.work)
        updates = {}
        tid_rows = relation.tid_index()
        for (tid, attr), value in repairs.items():
            row = tid_rows.get(tid)
            if row is None:
                continue
            idx = relation.schema.index_of(attr)
            current = row.values[idx]
            current_val = (
                current.most_probable() if isinstance(current, PValue) else current
            )
            if value != current_val:
                updates[(tid, attr)] = value
        repaired = relation.update_cells(updates)
        report.repairs_applied = len(updates)
        report.work.charge_update(len(updates))
        report.elapsed_seconds = clock() - started
        return repaired, repairs, report


def domains_from_daisy(relation: Relation) -> dict[tuple[int, str], list[Any]]:
    """Extract Daisy's candidate domains from a probabilistic relation.

    The DaisyH configuration: every probabilistic cell contributes its
    concrete candidate values as the cell's domain for HoloClean inference.
    """
    domains: dict[tuple[int, str], list[Any]] = {}
    for row in relation.rows:
        for attr, cell in zip(relation.schema.names, row.values):
            if isinstance(cell, PValue):
                values = list(dict.fromkeys(cell.concrete_values()))
                if values:
                    domains[(row.tid, attr)] = values
    return domains


def most_probable_repairs(relation: Relation) -> dict[tuple[int, str], Any]:
    """The DaisyP configuration: blindly take each cell's most probable value."""
    out: dict[tuple[int, str], Any] = {}
    for row in relation.rows:
        for attr, cell in zip(relation.schema.names, row.values):
            if isinstance(cell, PValue):
                out[(row.tid, attr)] = cell.most_probable()
    return out
