"""The offline (full-dataset) cleaning baseline.

This is the comparator the paper builds for itself over Spark ("an optimized
implementation that detects FD and DC errors, and provides probabilistic
repairs"):

* FD error detection uses BigDansing's group-by optimization — O(n) per rule
  instead of a self-join;
* DC error detection uses the partitioned theta-join (same machinery as
  Daisy's, checked fully);
* probabilistic repair computes, **per violating group**, the candidate
  values by traversing the dataset — the O(ε·n) behaviour of Section 5.2.1
  ("the offline approach traverses the dataset for each erroneous value to
  compute the candidate values");
* the final update applies all fixes in one pass (the outer-join of the
  cost analysis).

The repair semantics match Daisy's exactly (same candidate sets and
frequencies), so on workloads that cover the whole dataset both systems
produce the same probabilistic relation — the paper's correctness claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, as_dc, as_fd
from repro.detection.fd_detector import detect_fd_violations
from repro.metrics.timing import clock
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.repair.dc_repair import compute_dc_fixes
from repro.repair.fd_repair import apply_fd_delta
from repro.repair.fixes import CandidateFix, CellFix, RepairDelta
from repro.repair.merge import merge_deltas
from repro.repair.provenance import ProvenanceStore
from repro.relation.columnview import BACKEND_COLUMNAR, validate_backend
from repro.relation.relation import Relation


@dataclass
class OfflineReport:
    """Cost accounting for one offline cleaning run."""

    violations_found: int = 0
    groups_repaired: int = 0
    cells_fixed: int = 0
    elapsed_seconds: float = 0.0
    work: WorkCounter = field(default_factory=WorkCounter)


class OfflineCleaner:
    """Full-dataset probabilistic cleaner (the paper's offline comparator)."""

    def __init__(self, sqrt_partitions: int = 8, backend: str = BACKEND_COLUMNAR):
        self.sqrt_partitions = sqrt_partitions
        self.backend = validate_backend(backend)
        self.provenance = ProvenanceStore()

    def clean(
        self,
        relation: Relation,
        rules: Sequence[Rule],
        counter: WorkCounter | None = None,
    ) -> tuple[Relation, OfflineReport]:
        """Detect and repair all violations of ``rules`` over the whole table."""
        report = OfflineReport()
        counter = counter if counter is not None else report.work
        started = clock()
        deltas: list[RepairDelta] = []
        for rule in rules:
            fd = as_fd(rule)
            if fd is not None:
                delta = self._clean_fd(relation, fd, counter, report)
            else:
                delta = self._clean_dc(relation, as_dc(rule), counter, report)
            if delta:
                deltas.append(delta)
        merged = merge_deltas(deltas)
        report.cells_fixed = len(merged.nontrivial_fixes())
        cleaned = apply_fd_delta(
            relation, merged, provenance=self.provenance, counter=counter
        )
        # The update is an outer join between the dataset and the fixes:
        # one pass over the relation.
        counter.charge_scan(len(relation))
        report.elapsed_seconds = clock() - started
        if counter is not report.work:
            report.work = counter.snapshot()
        return cleaned, report

    # -- FD path --------------------------------------------------------------------

    def _clean_fd(
        self,
        relation: Relation,
        fd: FunctionalDependency,
        counter: WorkCounter,
        report: OfflineReport,
    ) -> RepairDelta:
        view = (
            relation.column_view() if self.backend == BACKEND_COLUMNAR else None
        )
        detection = detect_fd_violations(
            relation, fd, counter=counter,
            originals=self.provenance.originals_map(), view=view,
        )
        report.violations_found += len(detection.violation_pairs())
        delta = RepairDelta()
        lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
        rhs_idx = relation.schema.index_of(fd.rhs)

        for group in detection.groups:
            report.groups_repaired += 1
            # One full dataset traversal per erroneous group (the O(ε·n)
            # candidate computation of Section 5.2.1): gather same-lhs and
            # same-rhs tuples for this group's candidates.
            rhs_support: dict = {}
            lhs_support_by_rhs: dict = {}
            for row in relation.rows:
                counter.charge_scan()
                key = tuple(
                    self._original(row, i, a) for i, a in zip(lhs_idx, fd.lhs)
                )
                rhs_val = self._original(row, rhs_idx, fd.rhs)
                if key == group.lhs_key:
                    rhs_support.setdefault(rhs_val, set()).add(row.tid)
                if rhs_val in set(group.rhs_values):
                    lhs_support_by_rhs.setdefault(rhs_val, {}).setdefault(
                        key, set()
                    ).add(row.tid)

            for tid, rhs_val in zip(group.tids, group.rhs_values):
                lhs_support = lhs_support_by_rhs.get(rhs_val, {})
                lhs_ambiguous = len(lhs_support) > 1
                rule_name = fd.name or str(fd)

                rhs_fix = CellFix(
                    tid=tid, attr=fd.rhs, original=rhs_val, rules={rule_name}
                )
                world = 1 if lhs_ambiguous else 0
                for value, support in rhs_support.items():
                    rhs_fix.add(
                        CandidateFix(
                            value=value, support=frozenset(support), world=world
                        )
                    )
                if lhs_ambiguous:
                    rhs_fix.add(
                        CandidateFix(
                            value=rhs_val,
                            support=frozenset(lhs_support.get(group.lhs_key, {tid})),
                            world=2,
                        )
                    )
                    if len(fd.lhs) == 1:
                        lhs_fix = CellFix(
                            tid=tid,
                            attr=fd.lhs[0],
                            original=group.lhs_key[0],
                            rules={rule_name},
                        )
                        lhs_fix.add(
                            CandidateFix(
                                value=group.lhs_key[0],
                                support=frozenset(rhs_support.get(rhs_val, {tid})),
                                world=1,
                            )
                        )
                        for value, support in lhs_support.items():
                            lhs_fix.add(
                                CandidateFix(
                                    value=value[0],
                                    support=frozenset(support),
                                    world=2,
                                )
                            )
                        delta.add_fix(lhs_fix)
                if not rhs_fix.is_trivial():
                    delta.add_fix(rhs_fix)
        return delta

    def _original(self, row, idx: int, attr: str):
        original = self.provenance.original(row.tid, attr)
        if original is not None:
            return original
        from repro.probabilistic.value import PValue

        cell = row.values[idx]
        return cell.most_probable() if isinstance(cell, PValue) else cell

    # -- DC path --------------------------------------------------------------------

    def _clean_dc(
        self,
        relation: Relation,
        dc: DenialConstraint,
        counter: WorkCounter,
        report: OfflineReport,
    ) -> RepairDelta:
        matrix = ThetaJoinMatrix(
            relation, dc, sqrt_p=self.sqrt_partitions, counter=counter,
            backend=self.backend,
        )
        violations = matrix.check_full()
        report.violations_found += len(violations)
        report.groups_repaired += len(violations)
        return compute_dc_fixes(
            relation, dc, violations, provenance=self.provenance, counter=counter
        )


def offline_then_query(
    relation: Relation,
    rules: Sequence[Rule],
    queries: Sequence[str],
    table_name: str = "data",
    sqrt_partitions: int = 8,
) -> tuple[Relation, OfflineReport, float]:
    """Clean everything upfront, then run the workload plainly.

    Returns (cleaned relation, cleaning report, total seconds including the
    query execution) — the "Full Cleaning + Queries 1-50" bars of Figs 5-10.
    """
    from repro.core.state import TableState
    from repro.query.executor import Executor
    from repro.query.planner import PlannerCatalog

    cleaner = OfflineCleaner(sqrt_partitions=sqrt_partitions)
    started = clock()
    cleaned, report = cleaner.clean(relation, rules)
    catalog = PlannerCatalog()
    catalog.add_table(table_name, cleaned.schema)
    states = {table_name: TableState(relation=cleaned)}
    executor = Executor(states, catalog, cleaning_enabled=False)
    for sql in queries:
        executor.execute(sql)
    total = clock() - started
    return cleaned, report, total
