"""Constraint language: predicates, denial constraints, FDs, parsing."""

from repro.constraints.predicate import OPERATORS, Predicate, eq, gt, lt, neq
from repro.constraints.dc import (
    DenialConstraint,
    FunctionalDependency,
    Rule,
    as_dc,
    as_fd,
    decompose_fd,
)
from repro.constraints.parser import parse_dc, parse_fd, parse_rule
from repro.constraints.analysis import (
    FilterSide,
    RuleOverlap,
    analyze_rule_overlap,
    filter_side,
    query_accesses_rule,
    relevant_rules,
    rule_attributes,
    rules_on_attribute,
    split_rules,
)

__all__ = [
    "Predicate",
    "OPERATORS",
    "eq",
    "neq",
    "lt",
    "gt",
    "DenialConstraint",
    "FunctionalDependency",
    "Rule",
    "as_dc",
    "as_fd",
    "decompose_fd",
    "parse_dc",
    "parse_fd",
    "parse_rule",
    "FilterSide",
    "RuleOverlap",
    "filter_side",
    "query_accesses_rule",
    "relevant_rules",
    "rule_attributes",
    "rules_on_attribute",
    "analyze_rule_overlap",
    "split_rules",
]
