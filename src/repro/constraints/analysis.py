"""Rule/query overlap analysis.

Section 4.1: a rule ϕ affects the correctness of a query iff the query
accesses at least one attribute of ϕ — formally, (X ∪ Y) ∩ (P ∪ W) ≠ ∅ where
P is the projection list and W the where-clause attributes.  The cleaning-
aware planner (Section 5.1) uses this test to decide which operators need a
cleaning operator attached.

This module also classifies how a filter interacts with an FD (on the lhs,
the rhs, or both), which determines how many relaxation iterations Algorithm
1 needs (Lemmas 1 and 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, as_dc, as_fd


class FilterSide(enum.Enum):
    """Which side of an FD a query filter restricts."""

    NONE = "none"
    LHS = "lhs"
    RHS = "rhs"
    BOTH = "both"


def rule_attributes(rule: Rule) -> set[str]:
    """All attributes mentioned by a rule (X ∪ Y for an FD)."""
    if isinstance(rule, FunctionalDependency):
        return rule.attributes()
    return rule.attributes()


def query_accesses_rule(
    projection: Iterable[str], where_attrs: Iterable[str], rule: Rule
) -> bool:
    """The paper's overlap test: (X ∪ Y) ∩ (P ∪ W) ≠ ∅."""
    accessed = set(projection) | set(where_attrs)
    return bool(accessed & rule_attributes(rule))


def relevant_rules(
    projection: Iterable[str], where_attrs: Iterable[str], rules: Sequence[Rule]
) -> list[Rule]:
    """The subset of ``rules`` that affect the query's correctness."""
    projection = list(projection)
    where_attrs = list(where_attrs)
    return [r for r in rules if query_accesses_rule(projection, where_attrs, r)]


def filter_side(where_attrs: Iterable[str], fd: FunctionalDependency) -> FilterSide:
    """Classify a filter's position relative to an FD.

    * RHS filter → Lemma 1: one relaxation iteration suffices.
    * LHS filter → Lemma 2: extra iterations (transitive closure) are needed.
    """
    attrs = set(where_attrs)
    on_lhs = bool(attrs & set(fd.lhs))
    on_rhs = fd.rhs in attrs
    if on_lhs and on_rhs:
        return FilterSide.BOTH
    if on_lhs:
        return FilterSide.LHS
    if on_rhs:
        return FilterSide.RHS
    return FilterSide.NONE


@dataclass(frozen=True)
class RuleOverlap:
    """How a set of rules interacts on shared attributes.

    Section 4.3: when multiple rules involve the same attribute, candidate
    fixes for cells of that attribute must be merged across rules.
    """

    shared_attributes: frozenset[str]
    rule_pairs: tuple[tuple[int, int], ...]


def analyze_rule_overlap(rules: Sequence[Rule]) -> RuleOverlap:
    """Find attributes shared between rules and the overlapping rule pairs."""
    attr_sets = [rule_attributes(r) for r in rules]
    shared: set[str] = set()
    pairs: list[tuple[int, int]] = []
    for i in range(len(rules)):
        for j in range(i + 1, len(rules)):
            common = attr_sets[i] & attr_sets[j]
            if common:
                shared |= common
                pairs.append((i, j))
    return RuleOverlap(frozenset(shared), tuple(pairs))


def rules_on_attribute(rules: Sequence[Rule], attr: str) -> list[Rule]:
    """The rules that mention ``attr``."""
    return [r for r in rules if attr in rule_attributes(r)]


def split_rules(rules: Sequence[Rule]) -> tuple[list[FunctionalDependency], list[DenialConstraint]]:
    """Partition rules into FDs and general DCs (FD-shaped DCs become FDs)."""
    fds: list[FunctionalDependency] = []
    dcs: list[DenialConstraint] = []
    for rule in rules:
        fd = as_fd(rule)
        if fd is not None:
            fds.append(fd)
        else:
            dcs.append(as_dc(rule))
    return fds, dcs
