"""Denial constraints and functional dependencies.

A :class:`DenialConstraint` is ∀t1,…,tk ¬(p1 ∧ … ∧ pm).  Functional
dependencies X→Y are the special case
``¬(t1.X=t2.X ∧ t1.Y!=t2.Y)``; :class:`FunctionalDependency` provides the
lhs/rhs view that Algorithm 1 (relaxation) and the FD repair path need, and
converts to/from the DC form.

Per the paper (Section 4.1), an FD with a multi-attribute rhs is decomposed
into one FD per rhs attribute.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConstraintError
from repro.constraints.predicate import Predicate
from repro.relation.relation import Relation, Row


@dataclass(frozen=True)
class DenialConstraint:
    """∀t1,…,tk ¬(p1 ∧ … ∧ pm) over one relation."""

    predicates: tuple[Predicate, ...]
    name: str = ""

    def __init__(self, predicates: Iterable[Predicate], name: str = ""):
        preds = tuple(predicates)
        if not preds:
            raise ConstraintError("a denial constraint needs at least one predicate")
        object.__setattr__(self, "predicates", preds)
        object.__setattr__(self, "name", name)

    # -- structure ---------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of tuple variables (k)."""
        return max(max(p.tuple_variables()) for p in self.predicates) + 1

    def attributes(self) -> set[str]:
        """All attributes mentioned anywhere in the constraint."""
        out: set[str] = set()
        for p in self.predicates:
            out |= p.attributes()
        return out

    def equality_predicates(self) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if p.op == "=")

    def inequality_predicates(self) -> tuple[Predicate, ...]:
        return tuple(p for p in self.predicates if p.is_inequality())

    def is_fd_shaped(self) -> bool:
        """True iff this DC encodes a functional dependency.

        FD shape: two tuple variables; every predicate is a two-tuple
        same-attribute comparison; all but one are ``=`` and exactly one is
        ``!=``.
        """
        if self.arity != 2:
            return False
        neq_count = 0
        for p in self.predicates:
            if p.is_constant() or p.left_attr != p.right_attr:
                return False
            if p.op == "=":
                continue
            if p.op == "!=":
                neq_count += 1
            else:
                return False
        eq_count = len(self.predicates) - neq_count
        return neq_count == 1 and eq_count >= 1

    def to_fd(self) -> "FunctionalDependency":
        """Convert an FD-shaped DC to a :class:`FunctionalDependency`."""
        if not self.is_fd_shaped():
            raise ConstraintError(f"constraint {self} is not FD-shaped")
        lhs = tuple(p.left_attr for p in self.predicates if p.op == "=")
        rhs = next(p.left_attr for p in self.predicates if p.op == "!=")
        return FunctionalDependency(lhs=lhs, rhs=rhs, name=self.name)

    # -- evaluation --------------------------------------------------------------

    def violates(self, rows: Sequence[Row], relation: Relation) -> bool:
        """Does the tuple assignment ``rows`` violate the constraint?

        A violation is an assignment under which every predicate holds.
        Possible-worlds semantics: a probabilistic cell may satisfy a
        predicate through any candidate.
        """
        if len(rows) != self.arity:
            raise ConstraintError(
                f"constraint has arity {self.arity}, got {len(rows)} rows"
            )
        indexes = {a: relation.schema.index_of(a) for a in self.attributes()}
        return all(p.evaluate(rows, indexes) for p in self.predicates)

    def find_violations(self, relation: Relation) -> list[tuple[int, ...]]:
        """Exhaustive violation search: all tid tuples that violate the DC.

        Quadratic (or worse for arity > 2); intended for tests and tiny data.
        Production paths use :mod:`repro.detection` instead.  Symmetric pairs
        (permutations of the same tids) are reported once, in sorted order,
        unless the constraint is asymmetric (contains inequalities), in which
        case the violating order is preserved.
        """
        indexes = {a: relation.schema.index_of(a) for a in self.attributes()}
        seen: set[tuple[int, ...]] = set()
        out: list[tuple[int, ...]] = []
        symmetric = all(p.op in ("=", "!=") for p in self.predicates)
        for combo in itertools.permutations(relation.rows, self.arity):
            if all(p.evaluate(combo, indexes) for p in self.predicates):
                tids = tuple(r.tid for r in combo)
                key = tuple(sorted(tids)) if symmetric else tids
                if key in seen:
                    continue
                seen.add(key)
                out.append(key)
        return out

    def __str__(self) -> str:
        body = " & ".join(str(p) for p in self.predicates)
        vars_ = ",".join(f"t{i + 1}" for i in range(self.arity))
        label = f"{self.name}: " if self.name else ""
        return f"{label}forall {vars_}: not({body})"


@dataclass(frozen=True)
class FunctionalDependency:
    """X → A with a single rhs attribute (multi-rhs FDs are decomposed)."""

    lhs: tuple[str, ...]
    rhs: str
    name: str = ""

    def __init__(self, lhs: Sequence[str] | str, rhs: str, name: str = ""):
        lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        if not lhs_tuple:
            raise ConstraintError("FD needs at least one lhs attribute")
        if rhs in lhs_tuple:
            raise ConstraintError(f"rhs {rhs!r} cannot also be on the lhs")
        object.__setattr__(self, "lhs", lhs_tuple)
        object.__setattr__(self, "rhs", rhs)
        object.__setattr__(self, "name", name)

    def attributes(self) -> set[str]:
        return set(self.lhs) | {self.rhs}

    def to_dc(self) -> DenialConstraint:
        """The canonical DC form ¬(∧ t1.X=t2.X ∧ t1.A!=t2.A)."""
        preds = [Predicate(0, a, "=", 1, a) for a in self.lhs]
        preds.append(Predicate(0, self.rhs, "!=", 1, self.rhs))
        return DenialConstraint(preds, name=self.name)

    def __str__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{','.join(self.lhs)} -> {self.rhs}"


def decompose_fd(
    lhs: Sequence[str] | str, rhs_attrs: Sequence[str], name: str = ""
) -> list[FunctionalDependency]:
    """Decompose X → (Y1,…,Yn) into n single-rhs FDs (Section 4.1)."""
    lhs_tuple = (lhs,) if isinstance(lhs, str) else tuple(lhs)
    out = []
    for i, rhs in enumerate(rhs_attrs):
        suffix = f"_{i + 1}" if len(rhs_attrs) > 1 and name else ""
        out.append(FunctionalDependency(lhs_tuple, rhs, name=f"{name}{suffix}"))
    return out


Rule = DenialConstraint | FunctionalDependency
"""Either constraint kind; most cleaning APIs accept both."""


def as_dc(rule: Rule) -> DenialConstraint:
    """Normalize a rule to its DC form."""
    if isinstance(rule, FunctionalDependency):
        return rule.to_dc()
    return rule


def as_fd(rule: Rule) -> FunctionalDependency | None:
    """Return the FD view of a rule, or None if it is a general DC."""
    if isinstance(rule, FunctionalDependency):
        return rule
    if rule.is_fd_shaped():
        return rule.to_fd()
    return None
