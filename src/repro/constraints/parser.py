"""Parser for the textual denial-constraint notation.

Accepts the notation used in the paper (ASCII-ized)::

    not(t1.zip = t2.zip & t1.city != t2.city)
    forall t1,t2: not(t1.salary < t2.salary & t1.tax > t2.tax)
    zip -> city                      (FD shorthand)
    county_code, state_code -> county_name

Grammar (informal)::

    rule        := fd | dc
    fd          := attr_list "->" attr_list
    dc          := [quantifier ":"] "not" "(" predicate ("&" predicate)* ")"
    quantifier  := "forall" tvar ("," tvar)*
    predicate   := operand op operand
    operand     := tvar "." attr | constant
    op          := "=" | "!=" | "<>" | "<" | "<=" | ">" | ">="
    constant    := number | quoted string

``<>`` is accepted as an alias for ``!=``.  Unicode ¬, ∧, ∀ are normalized
to ASCII before parsing.
"""

from __future__ import annotations

from types import MappingProxyType

import re
from typing import Any

from repro.errors import ConstraintParseError
from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, decompose_fd
from repro.constraints.predicate import Predicate
from repro._ownership import session_owned

_UNICODE_NORMALIZATION = MappingProxyType({
    "¬": "not",
    "⌝": "not",
    "∧": "&",
    "∀": "forall ",
    "≠": "!=",
    "≤": "<=",
    "≥": ">=",
    "→": "->",
})

_TOKEN_RE = re.compile(
    r"""
    \s*(
        not\b | forall\b | and\b |
        t\d+\.[A-Za-z_][A-Za-z0-9_.]* |      # tuple attribute ref
        t\d+ |                               # bare tuple var (quantifier list)
        '[^']*' | "[^"]*" |                  # string constants
        -?\d+\.\d+ | -?\d+ |                 # numeric constants
        <> | != | <= | >= | = | < | > |
        -> | \( | \) | & | , | :
    )
    """,
    re.VERBOSE,
)


def _normalize(text: str) -> str:
    for src, dst in _UNICODE_NORMALIZATION.items():
        text = text.replace(src, dst)
    return text.strip()


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise ConstraintParseError(
                f"unexpected character at position {pos}: {text[pos:pos + 20]!r}"
            )
        token = match.group(1)
        tokens.append(token)
        pos = match.end()
        while pos < len(text) and text[pos].isspace():
            pos += 1
    return tokens


@session_owned
class _TokenStream:
    def __init__(self, tokens: list[str]):
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> str | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise ConstraintParseError("unexpected end of constraint text")
        self._pos += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token != expected:
            raise ConstraintParseError(f"expected {expected!r}, got {token!r}")
        return token

    def exhausted(self) -> bool:
        return self._pos >= len(self._tokens)


_ATTR_REF_RE = re.compile(r"^t(\d+)\.([A-Za-z_][A-Za-z0-9_.]*)$")


def _parse_operand(stream: _TokenStream) -> tuple[int | None, str | None, Any]:
    """Return (tuple_index, attr, constant); attr is None for constants."""
    token = stream.next()
    match = _ATTR_REF_RE.match(token)
    if match:
        return int(match.group(1)) - 1, match.group(2), None
    if token.startswith(("'", '"')):
        return None, None, token[1:-1]
    try:
        if "." in token:
            return None, None, float(token)
        return None, None, int(token)
    except ValueError:
        raise ConstraintParseError(f"invalid operand {token!r}") from None


_OPS = frozenset(("=", "!=", "<>", "<", "<=", ">", ">="))


def _parse_predicate(stream: _TokenStream) -> Predicate:
    lt, la, lc = _parse_operand(stream)
    op = stream.next()
    if op not in _OPS:
        raise ConstraintParseError(f"expected comparison operator, got {op!r}")
    if op == "<>":
        op = "!="
    rt, ra, rc = _parse_operand(stream)
    if la is None and ra is None:
        raise ConstraintParseError("predicate compares two constants")
    if la is None:
        # constant op t.attr  ->  flip to t.attr flipped(op) constant
        flip = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}
        return Predicate(rt, ra, flip[op], constant=lc)  # type: ignore[arg-type]
    if ra is None:
        return Predicate(lt, la, op, constant=rc)  # type: ignore[arg-type]
    return Predicate(lt, la, op, rt, ra)  # type: ignore[arg-type]


def parse_dc(text: str, name: str = "") -> DenialConstraint:
    """Parse a denial constraint in textual notation."""
    normalized = _normalize(text)
    tokens = _tokenize(normalized)
    stream = _TokenStream(tokens)

    if stream.peek() == "forall":
        stream.next()
        while stream.peek() not in (":", "not"):
            token = stream.next()
            if token not in (",",) and not re.match(r"^t\d+$", token):
                raise ConstraintParseError(f"bad quantifier token {token!r}")
        if stream.peek() == ":":
            stream.next()

    stream.expect("not")
    stream.expect("(")
    predicates = [_parse_predicate(stream)]
    while stream.peek() in ("&", "and"):
        stream.next()
        predicates.append(_parse_predicate(stream))
    stream.expect(")")
    if not stream.exhausted():
        raise ConstraintParseError(f"trailing tokens after constraint: {stream.peek()!r}")
    return DenialConstraint(predicates, name=name)


def parse_fd(text: str, name: str = "") -> list[FunctionalDependency]:
    """Parse FD shorthand ``a, b -> c, d`` (decomposed per rhs attribute)."""
    normalized = _normalize(text)
    if "->" not in normalized:
        raise ConstraintParseError(f"FD text must contain '->': {text!r}")
    lhs_text, _, rhs_text = normalized.partition("->")
    lhs = [a.strip() for a in lhs_text.split(",") if a.strip()]
    rhs = [a.strip() for a in rhs_text.split(",") if a.strip()]
    if not lhs or not rhs:
        raise ConstraintParseError(f"FD needs attributes on both sides: {text!r}")
    for attr in lhs + rhs:
        if not re.match(r"^[A-Za-z_][A-Za-z0-9_.]*$", attr):
            raise ConstraintParseError(f"invalid attribute name {attr!r}")
    return decompose_fd(lhs, rhs, name=name)


def parse_rule(text: str, name: str = "") -> list[Rule]:
    """Parse either notation; FD-shaped DCs are returned as FDs.

    Returns a list because a multi-rhs FD decomposes into several rules.
    """
    normalized = _normalize(text)
    if "not" in normalized and "(" in normalized:
        dc = parse_dc(normalized, name=name)
        fd = dc.to_fd() if dc.is_fd_shaped() else None
        return [fd if fd is not None else dc]
    return list(parse_fd(normalized, name=name))
