"""Predicates of denial constraints.

A denial constraint ∀t1,…,tk ¬(p1 ∧ … ∧ pm) is a conjunction of predicates
under negation.  Each predicate compares an attribute of one tuple variable
with either an attribute of a (possibly different) tuple variable or a
constant: ``t1.salary < t2.salary``, ``t1.city != t2.city``,
``t1.age >= 18``.

This module defines the :class:`Predicate` dataclass plus evaluation with
possible-worlds semantics (a predicate *may hold* if some candidate
combination satisfies it) and the usual operator algebra (negation).
"""

from __future__ import annotations

from types import MappingProxyType

from dataclasses import dataclass
from typing import Any, Sequence

from repro.errors import ConstraintError
from repro.probabilistic.value import cell_compare, plain
from repro.relation.relation import Relation, Row

#: Comparison operators supported in predicates.
OPERATORS = ("=", "!=", "<", "<=", ">", ">=")

_NEGATION = MappingProxyType({
    "=": "!=",
    "!=": "=",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
})

_FLIP = MappingProxyType({
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
})


@dataclass(frozen=True)
class Predicate:
    """One atom of a denial constraint.

    ``left_tuple`` / ``right_tuple`` are 0-based tuple-variable indexes
    (``t1`` -> 0).  If ``right_attr`` is None the right side is the constant
    ``constant``.
    """

    left_tuple: int
    left_attr: str
    op: str
    right_tuple: int | None = None
    right_attr: str | None = None
    constant: Any = None

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ConstraintError(f"unknown operator {self.op!r}; use one of {OPERATORS}")
        if (self.right_tuple is None) != (self.right_attr is None):
            raise ConstraintError(
                "right_tuple and right_attr must both be set (attribute comparison) "
                "or both be None (constant comparison)"
            )

    # -- classification --------------------------------------------------------

    def is_constant(self) -> bool:
        """True for predicates comparing against a constant."""
        return self.right_attr is None

    def is_single_tuple(self) -> bool:
        """True if the predicate mentions only one tuple variable."""
        return self.is_constant() or self.left_tuple == self.right_tuple

    def is_equality(self) -> bool:
        return self.op == "="

    def is_inequality(self) -> bool:
        return self.op in ("<", "<=", ">", ">=")

    def attributes(self) -> set[str]:
        """All attribute names mentioned by the predicate."""
        attrs = {self.left_attr}
        if self.right_attr is not None:
            attrs.add(self.right_attr)
        return attrs

    def tuple_variables(self) -> set[int]:
        out = {self.left_tuple}
        if self.right_tuple is not None:
            out.add(self.right_tuple)
        return out

    def negated(self) -> "Predicate":
        """The logical negation (same operands, complemented operator)."""
        return Predicate(
            left_tuple=self.left_tuple,
            left_attr=self.left_attr,
            op=_NEGATION[self.op],
            right_tuple=self.right_tuple,
            right_attr=self.right_attr,
            constant=self.constant,
        )

    def flipped(self) -> "Predicate":
        """Swap operand sides (only for attribute comparisons)."""
        if self.is_constant():
            raise ConstraintError("cannot flip a constant predicate")
        return Predicate(
            left_tuple=self.right_tuple,  # type: ignore[arg-type]
            left_attr=self.right_attr,  # type: ignore[arg-type]
            op=_FLIP[self.op],
            right_tuple=self.left_tuple,
            right_attr=self.left_attr,
        )

    # -- evaluation -------------------------------------------------------------

    def evaluate(self, rows: Sequence[Row], schema_indexes: dict[str, int]) -> bool:
        """Possible-worlds evaluation over an assignment of tuple variables.

        ``rows[i]`` is the row bound to tuple variable ``i``.  Returns True
        iff the predicate *may* hold (at least one candidate combination).
        """
        left_cell = rows[self.left_tuple].values[schema_indexes[self.left_attr]]
        if self.is_constant():
            return cell_compare(left_cell, self.op, self.constant)
        right_cell = rows[self.right_tuple].values[schema_indexes[self.right_attr]]  # type: ignore[index]
        return cell_compare(left_cell, self.op, right_cell)

    def evaluate_concrete(
        self, rows: Sequence[Row], schema_indexes: dict[str, int]
    ) -> bool:
        """Evaluate using most-probable values (a single designated world)."""
        left = plain(rows[self.left_tuple].values[schema_indexes[self.left_attr]])
        if self.is_constant():
            right = self.constant
        else:
            right = plain(
                rows[self.right_tuple].values[schema_indexes[self.right_attr]]  # type: ignore[index]
            )
        return cell_compare(left, self.op, right)

    def bind_indexes(self, relation: Relation) -> dict[str, int]:
        """Resolve the predicate's attributes against a relation schema."""
        out = {self.left_attr: relation.schema.index_of(self.left_attr)}
        if self.right_attr is not None:
            out[self.right_attr] = relation.schema.index_of(self.right_attr)
        return out

    # -- display ---------------------------------------------------------------

    def __str__(self) -> str:
        left = f"t{self.left_tuple + 1}.{self.left_attr}"
        if self.is_constant():
            right = repr(self.constant)
        else:
            right = f"t{self.right_tuple + 1}.{self.right_attr}"
        return f"{left}{self.op}{right}"


def eq(attr: str) -> Predicate:
    """Shorthand: ``t1.attr = t2.attr`` (two-tuple equality)."""
    return Predicate(0, attr, "=", 1, attr)


def neq(attr: str) -> Predicate:
    """Shorthand: ``t1.attr != t2.attr`` (two-tuple inequality)."""
    return Predicate(0, attr, "!=", 1, attr)


def lt(attr_a: str, attr_b: str | None = None) -> Predicate:
    """Shorthand: ``t1.attr_a < t2.attr_b`` (default attr_b = attr_a)."""
    return Predicate(0, attr_a, "<", 1, attr_b or attr_a)


def gt(attr_a: str, attr_b: str | None = None) -> Predicate:
    """Shorthand: ``t1.attr_a > t2.attr_b`` (default attr_b = attr_a)."""
    return Predicate(0, attr_a, ">", 1, attr_b or attr_a)
