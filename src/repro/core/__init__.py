"""Daisy's core: relaxation, cleaning operators, cost model, statistics."""

from repro.core.relaxation import (
    RelaxationResult,
    estimate_relaxed_size,
    extra_iteration_probability,
    frequency_distribution,
    iterations_needed_rhs_filter,
    relax_fd,
    relaxed_size_upper_bound,
)
from repro.core.state import TableState, rule_key
from repro.core.operators import (
    CleanReport,
    clean_full_table,
    clean_join,
    clean_sigma,
)
from repro.core.costmodel import (
    AdaptivePlanner,
    CostCalibration,
    CostModel,
    CostModelConfig,
    PassDecision,
    PoolPlan,
    QueryObservation,
    available_cpus,
    incremental_query_cost,
    offline_cost,
)
from repro.core.statistics import (
    FdStatistics,
    TableStatistics,
    build_fd_statistics,
)
from repro.core.resolve import (
    domain_coverage,
    refine_probabilities,
    resolve_keep_original,
    resolve_most_probable,
    resolve_with,
    resolve_with_master,
)

__all__ = [
    "relax_fd",
    "RelaxationResult",
    "iterations_needed_rhs_filter",
    "extra_iteration_probability",
    "relaxed_size_upper_bound",
    "estimate_relaxed_size",
    "frequency_distribution",
    "TableState",
    "rule_key",
    "clean_sigma",
    "clean_join",
    "clean_full_table",
    "CleanReport",
    "CostModel",
    "CostModelConfig",
    "QueryObservation",
    "AdaptivePlanner",
    "CostCalibration",
    "PassDecision",
    "PoolPlan",
    "available_cpus",
    "offline_cost",
    "incremental_query_cost",
    "FdStatistics",
    "TableStatistics",
    "build_fd_statistics",
    "resolve_with",
    "resolve_most_probable",
    "resolve_keep_original",
    "resolve_with_master",
    "domain_coverage",
    "refine_probabilities",
]
