"""The unified adaptive cost model: strategy × parallelism × batching.

Three layers, bottom up:

* **Section 5.2 formulas** (:func:`offline_cost`,
  :func:`incremental_query_cost`) and the per-table :class:`CostModel` that
  evaluates the Section 5.2.3 inequality — while the workload executes,
  should Daisy keep cleaning incrementally or clean the remaining dirty
  part at once (the Fig. 7 / Fig. 12 strategy switch)?  The model works on
  observed per-query measurements plus the precomputed statistics (ε and p
  estimates from :mod:`repro.core.statistics`).
* **:class:`CostCalibration`** — a feedback loop from *observed*
  :class:`~repro.engine.stats.WorkCounter` totals back into the estimates:
  per pass kind (``"dc_check"``, ``"fd_relax"``, ``"batch"``) an EWMA of
  the observed/estimated work ratio rescales every later estimate of that
  kind, so the planner's prices track what passes actually cost on this
  workload.
* **:class:`AdaptivePlanner`** — the session-owned arbiter that prices
  every remaining per-pass decision in the same work-unit currency:

  1. the strategy switch (via :meth:`AdaptivePlanner.strategy_switch`,
     wrapping :meth:`CostModel.switch_costs`),
  2. per-pass pool kind / worker count / shard count
     (:meth:`AdaptivePlanner.choose_pool` — ``DaisyConfig(parallelism="auto")``;
     tiny scopes stay serial, mid-size passes take the thread pool,
     full-matrix-scale checks escalate to the process pool),
  3. per rule group, "shared pass now" vs "incremental per query" inside
     :meth:`repro.api.Session.execute_batch`
     (:meth:`AdaptivePlanner.choose_batch_strategy` —
     ``DaisyConfig(batch_strategy="auto")``).

  Every decision is recorded as a :class:`PassDecision` (choice, the
  estimates of every alternative, and — once the pass ran — the observed
  work units) and surfaced on
  :attr:`repro.api.WorkloadReport.decisions` so benchmarks can audit the
  model against the forced-choice oracles.

**Invariant:** adaptive choices select *how* a pass executes, never *what*
it computes — every alternative is byte-identical in violations, repairs,
and merged work-unit totals (the pool/shard parity guarantee of
:mod:`repro.parallel`, and the batch-vs-sequential equivalence pinned by
``tests/test_api.py``), so a wrong price costs wall-clock time, not
correctness.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Callable

from repro._ownership import session_owned


@dataclass(frozen=True)
class QueryObservation:
    """Measured quantities for one executed query."""

    result_size: int       # q_i
    extra_tuples: int      # e_i (relaxation additions)
    errors: int            # ε_i (erroneous entities repaired)
    detection_cost: float  # d_i work units


@dataclass
class CostModelConfig:
    """Tuning knobs for the cost model."""

    #: Expected number of queries in the workload (q in the inequality).
    expected_queries: int = 50
    #: Safety factor: switch only when incremental exceeds full by this much.
    hysteresis: float = 1.0


def offline_cost(
    n: int,
    errors: int,
    candidates_per_error: float,
    num_queries: int,
    is_dc: bool = False,
) -> float:
    """Total offline cost: q·n + d_full + ε·n + n + ε·p (Section 5.2.3).

    ``d_full`` is O(n) for FDs (hash grouping) and the triangular
    n·(n+1)/2 for DCs.
    """
    d_full = (n * (n + 1)) / 2.0 if is_dc else float(n)
    repair = errors * float(n)
    update = n + errors * candidates_per_error
    return num_queries * float(n) + d_full + repair + update


def incremental_query_cost(
    n: int,
    seen_tuples: int,
    result_size: int,
    extra_tuples: int,
    errors: int,
    prior_prob_values: float,
    candidates_per_error: float,
    is_dc: bool = False,
    partitions: int = 64,
) -> float:
    """Cost of cleaning one query incrementally (formula (1), Section 5.2.2).

    ``seen_tuples`` = Σ_{j<i} q_j, ``prior_prob_values`` = Σ_{j<i} ε_j·p.
    """
    relaxation = max(0, n - seen_tuples)
    if is_dc:
        detection = (n * result_size) / max(1, partitions)
    else:
        detection = result_size + extra_tuples
    repair = errors * (result_size + extra_tuples)
    update = (
        max(0, n - prior_prob_values / max(1.0, candidates_per_error))
        + prior_prob_values
        + errors * candidates_per_error
    )
    return relaxation + detection + repair + update


@session_owned
@dataclass
class CostModel:
    """Adaptive incremental-vs-full decision, updated after every query.

    Usage: construct with the dataset size and statistics estimates, call
    :meth:`observe` after each query, then :meth:`should_switch_to_full`.
    The decision compares the projected cost of finishing the workload
    incrementally against cleaning the remaining dirty part now and running
    the remaining queries plainly.
    """

    dataset_size: int
    estimated_errors: int
    candidates_per_error: float = 2.0
    is_dc: bool = False
    config: CostModelConfig = field(default_factory=CostModelConfig)

    observations: list[QueryObservation] = field(default_factory=list)
    cumulative_incremental_cost: float = 0.0
    errors_cleaned: int = 0
    tuples_seen: int = 0

    def observe(self, obs: QueryObservation) -> None:
        """Record one executed query's measurements."""
        prior_prob_values = self.errors_cleaned * self.candidates_per_error
        cost = incremental_query_cost(
            n=self.dataset_size,
            seen_tuples=self.tuples_seen,
            result_size=obs.result_size,
            extra_tuples=obs.extra_tuples,
            errors=obs.errors,
            prior_prob_values=prior_prob_values,
            candidates_per_error=self.candidates_per_error,
            is_dc=self.is_dc,
        )
        self.cumulative_incremental_cost += cost
        self.observations.append(obs)
        self.errors_cleaned += obs.errors
        self.tuples_seen += obs.result_size + obs.extra_tuples

    # -- projections ------------------------------------------------------------

    def remaining_errors(self) -> int:
        return max(0, self.estimated_errors - self.errors_cleaned)

    def _avg(self, selector: Callable[[QueryObservation], float]) -> float:
        if not self.observations:
            return 0.0
        return sum(selector(o) for o in self.observations) / len(self.observations)

    def projected_incremental_remaining(self, remaining_queries: int) -> float:
        """Projected cost of finishing the workload incrementally."""
        if remaining_queries <= 0:
            return 0.0
        avg_q = self._avg(lambda o: o.result_size) or self.dataset_size * 0.02
        avg_e = self._avg(lambda o: o.extra_tuples)
        total_remaining_err = self.remaining_errors()
        avg_err = (
            total_remaining_err / remaining_queries if remaining_queries else 0.0
        )
        total = 0.0
        seen = float(self.tuples_seen)
        cleaned = float(self.errors_cleaned)
        for _ in range(remaining_queries):
            total += incremental_query_cost(
                n=self.dataset_size,
                seen_tuples=int(seen),
                result_size=int(avg_q),
                extra_tuples=int(avg_e),
                errors=int(avg_err),
                prior_prob_values=cleaned * self.candidates_per_error,
                candidates_per_error=self.candidates_per_error,
                is_dc=self.is_dc,
            )
            seen += avg_q + avg_e
            cleaned += avg_err
        return total

    def full_clean_now_cost(self, remaining_queries: int) -> float:
        """Cost of cleaning the remaining dirty part now + plain queries.

        Cheaper than a from-scratch offline clean because only the dirty
        remainder is processed (the Fig. 7 observation that the switched
        strategy beats pure offline).
        """
        n = self.dataset_size
        remaining_err = self.remaining_errors()
        unseen = max(0, n - self.tuples_seen)
        d_full = (unseen * (unseen + 1)) / 2.0 if self.is_dc else float(unseen)
        repair = remaining_err * float(unseen if unseen > 0 else n)
        update = unseen + remaining_err * self.candidates_per_error
        queries = remaining_queries * float(n)
        return d_full + repair + update + queries

    def switch_costs(
        self, remaining_queries: int | None = None
    ) -> tuple[float, float] | None:
        """Both sides of the Section 5.2.3 inequality, or None when the
        workload is projected to be over (no remaining queries to finish
        either way).  Returns ``(incremental, full_clean_now)``."""
        if remaining_queries is None:
            remaining_queries = max(
                0, self.config.expected_queries - len(self.observations)
            )
        if remaining_queries <= 0:
            return None
        incremental = self.projected_incremental_remaining(remaining_queries)
        full = self.full_clean_now_cost(remaining_queries)
        return incremental, full

    def switch_exceeds(self, incremental: float, full: float) -> bool:
        """The Section 5.2.3 inequality over already-computed costs — the
        single definition both :meth:`should_switch_to_full` and the
        planner's recorded verdicts evaluate."""
        return incremental > full * self.config.hysteresis

    def should_switch_to_full(
        self, remaining_queries: int | None = None
    ) -> bool:
        """The Section 5.2.3 inequality, evaluated with current estimates."""
        costs = self.switch_costs(remaining_queries)
        if costs is None:
            return False
        return self.switch_exceeds(*costs)


# ---------------------------------------------------------------------------
# Adaptive planning: calibration + the unified per-pass decision layer
# ---------------------------------------------------------------------------

#: Decision families recorded on :class:`PassDecision.kind`.
DECISION_POOL = "pool"
DECISION_BATCH = "batch_strategy"
DECISION_STRATEGY = "strategy_switch"
DECISION_COLUMN_BACKEND = "column_backend"
DECISION_STORAGE = "storage"
DECISION_ADMISSION = "admission"

#: Calibration buckets (``PassDecision.pass_kind``): one observed/estimated
#: ratio is maintained per kind of priced work.
PASS_DC_CHECK = "dc_check"
PASS_FD_RELAX = "fd_relax"
PASS_BATCH = "batch"
PASS_KERNEL = "kernel"
PASS_STORAGE = "storage"
PASS_ADMISSION = "admission"


@session_owned
@dataclass
class PassDecision:
    """One adaptive choice: what was priced, what was picked, what it cost.

    ``alternatives`` holds the modeled completion cost of every option the
    planner considered (including the chosen one, under its ``choice`` key);
    ``estimated_cost`` is the chosen option's modeled cost; ``raw_units`` is
    the uncalibrated work estimate the model started from (the quantity
    :class:`CostCalibration` learns to rescale); ``observed_cost`` is filled
    in after the pass ran with the work units it actually charged — ``None``
    for decisions whose outcome is not a measurable pass (e.g. a
    ``continue_incremental`` strategy verdict).
    """

    kind: str
    pass_kind: str
    table: str
    choice: str
    estimated_cost: float
    raw_units: float = 0.0
    alternatives: dict[str, float] = field(default_factory=dict)
    observed_cost: float | None = None


@session_owned
class CostCalibration:
    """EWMA feedback from observed work units into future estimates.

    For each pass kind the calibration tracks ``factor = EWMA(observed /
    estimated)``; :meth:`calibrated` rescales a raw estimate by the current
    factor.  With a stationary workload (constant true ratio ``r``) each
    :meth:`observe` moves the factor geometrically toward ``r`` — the
    absolute estimation error shrinks by ``(1 - alpha)`` per observation,
    which is the monotone-improvement property ``tests/test_costmodel.py``
    pins on replayed work logs.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self._factors: dict[str, float] = {}
        self._samples: dict[str, int] = {}

    def factor(self, pass_kind: str) -> float:
        """Current observed/estimated ratio for one pass kind (1.0 = raw)."""
        return self._factors.get(pass_kind, 1.0)

    def samples(self, pass_kind: str) -> int:
        return self._samples.get(pass_kind, 0)

    def calibrated(self, pass_kind: str, raw_units: float) -> float:
        """``raw_units`` rescaled by the learned factor for this pass kind."""
        return raw_units * self.factor(pass_kind)

    def observe(self, pass_kind: str, raw_units: float, observed: float) -> None:
        """Feed one (estimate, observation) pair back into the factor."""
        if raw_units <= 0 or observed < 0 or not math.isfinite(observed):
            return
        ratio = observed / raw_units
        previous = self._factors.get(pass_kind)
        if previous is None:
            # First sample: adopt the observed ratio outright (an EWMA from
            # the arbitrary prior 1.0 would just slow convergence down).
            self._factors[pass_kind] = ratio
        else:
            self._factors[pass_kind] = previous + self.alpha * (ratio - previous)
        self._samples[pass_kind] = self._samples.get(pass_kind, 0) + 1


@dataclass(frozen=True)
class PoolPlan:
    """A per-pass execution shape: pool kind, worker count, shard count."""

    kind: str      # "serial" | "thread" | "process"
    workers: int
    shards: int

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and self.kind != "serial"

    def label(self) -> str:
        if not self.parallel:
            return "serial"
        return f"{self.kind}:{self.workers}/shards:{self.shards}"


def available_cpus() -> int:
    """Worker-count ceiling for auto mode (``os.cpu_count`` floor 1)."""
    return os.cpu_count() or 1


@session_owned
class AdaptivePlanner:
    """Unified per-pass arbiter: strategy × parallelism × batching.

    One instance per :class:`repro.api.Session`.  All prices are in the
    deterministic work-unit currency of
    :class:`~repro.engine.stats.WorkCounter` (comparisons, scans, …), so
    decisions are reproducible across hosts; wall-clock enters only through
    :class:`CostCalibration`-learned ratios of observed work to raw
    estimates.

    The completion-cost model for a pass of ``u`` (calibrated) units:

    * serial — ``u``;
    * thread pool, ``w`` workers — ``u / (1 + (w - 1) · eff_t) + c_t · w``
      (``eff_t < 1``: under the GIL threads overlap C-level work only);
    * process pool, ``w`` workers — ``u / w + c_p · w`` (fork + result
      pickling make ``c_p ≫ c_t``).

    The planner picks the argmin over {serial} ∪ {thread, process} ×
    worker counts ≤ the cap — small scopes stay serial, mid-size passes
    take threads, full-matrix-scale checks escalate to the process pool.
    """

    #: Modeled spawn/merge overhead per worker, in work units.
    THREAD_OVERHEAD = 256.0
    PROCESS_OVERHEAD = 4096.0
    #: Effective extra-worker efficiency of the thread pool under the GIL.
    THREAD_EFFICIENCY = 0.5
    #: Modeled fixed setup cost of one cleaning pass (batch arbitration).
    BATCH_PASS_OVERHEAD = 32.0
    #: Kernel-backend pricing: fixed ndarray construction / dtype-inference
    #: overhead per index build, and the modeled per-unit advantage of the
    #: vectorized kernels over the pure-Python loops.  336 = 64·log2(64) ×
    #: (1 − 1/KERNEL_SPEEDUP): the uncalibrated tipping point sits at the
    #: same 64-row threshold the static ``column_backend="auto"`` resolver
    #: uses (:data:`repro.relation.kernels.AUTO_MIN_ROWS`).
    KERNEL_OVERHEAD = 336.0
    KERNEL_SPEEDUP = 8.0
    #: Modeled cleaning cost per scope tuple relative to one filter/routing
    #: charge per answer tuple (a relaxation + detection + repair sweep
    #: touches a tuple many times; an index-served filter once).
    BATCH_CLEAN_WEIGHT = 8.0
    #: Decision-log cap: long-lived sessions (e.g. the engine's cached
    #: default session) must not grow memory linearly in queries executed.
    MAX_DECISIONS = 4096

    def __init__(
        self,
        cpu_count: int | None = None,
        max_workers: int = 0,
        calibration: CostCalibration | None = None,
        process_pool_available: bool = True,
    ) -> None:
        self.cpu_count = cpu_count if cpu_count is not None else available_cpus()
        self.max_workers = max_workers if max_workers > 0 else self.cpu_count
        self.calibration = calibration if calibration is not None else CostCalibration()
        self.process_pool_available = process_pool_available
        #: The retained decision tail, oldest first (see :attr:`MAX_DECISIONS`).
        self.decisions: list[PassDecision] = []
        #: How many old decisions the cap has discarded (monotonic).
        self.decisions_dropped = 0

    # -- decision log ------------------------------------------------------------

    def _append(self, decision: PassDecision) -> None:
        self.decisions.append(decision)
        overflow = len(self.decisions) - self.MAX_DECISIONS
        if overflow > 0:
            del self.decisions[:overflow]
            self.decisions_dropped += overflow

    def mark(self) -> int:
        """Absolute slice point for reports (stable across cap trimming)."""
        return len(self.decisions) + self.decisions_dropped

    def decisions_since(self, mark: int) -> list[PassDecision]:
        """Decisions appended since ``mark`` (minus any the cap discarded)."""
        start = max(0, mark - self.decisions_dropped)
        return list(self.decisions[start:])

    def observe(self, decision: PassDecision, observed_units: float) -> None:
        """Record a pass's actual work units and feed the calibration.

        Strategy-switch verdicts only record: their estimate projects the
        remaining workload's execution while the observation is the full
        clean's counter delta — not commensurate quantities, so they must
        not contaminate a calibration bucket.
        """
        decision.observed_cost = float(observed_units)
        if decision.kind == DECISION_STRATEGY:
            return
        self.calibration.observe(
            decision.pass_kind, decision.raw_units, float(observed_units)
        )

    # -- (2) per-pass pool / worker / shard selection ------------------------------

    def _worker_candidates(self) -> list[int]:
        cap = max(1, self.max_workers)
        out = {2, max(2, cap // 2), cap}
        return sorted(w for w in out if w >= 2 and w <= max(2, cap))

    def pool_alternatives(self, pass_kind: str, raw_units: float) -> dict[str, float]:
        """Modeled completion cost of every execution shape considered."""
        units = self.calibration.calibrated(pass_kind, max(0.0, raw_units))
        alternatives: dict[str, float] = {"serial": units}
        if self.max_workers <= 1:
            return alternatives
        for w in self._worker_candidates():
            thread_speedup = 1.0 + (w - 1) * self.THREAD_EFFICIENCY
            alternatives[f"thread:{w}"] = units / thread_speedup + self.THREAD_OVERHEAD * w
            if self.process_pool_available:
                alternatives[f"process:{w}"] = units / w + self.PROCESS_OVERHEAD * w
        return alternatives

    def choose_pool(
        self,
        pass_kind: str,
        table: str,
        raw_units: float,
        num_shards: int = 0,
    ) -> tuple[PoolPlan, PassDecision]:
        """Pick serial / thread / process (+ worker and shard counts) for one
        pass estimated at ``raw_units`` uncalibrated work units.

        ``num_shards > 0`` forces the shard count (the
        ``DaisyConfig(num_shards=)`` override); otherwise shards follow the
        chosen worker count.  The decision is appended to the log; call
        :meth:`observe` with the pass's counter delta afterwards.
        """
        alternatives = self.pool_alternatives(pass_kind, raw_units)
        choice = min(alternatives, key=lambda k: (alternatives[k], k))
        if choice == "serial":
            plan = PoolPlan("serial", 1, 1)
        else:
            kind, _, workers_text = choice.partition(":")
            workers = int(workers_text)
            plan = PoolPlan(kind, workers, num_shards or workers)
        decision = PassDecision(
            kind=DECISION_POOL,
            pass_kind=pass_kind,
            table=table,
            choice=plan.label(),
            estimated_cost=alternatives[choice],
            raw_units=float(raw_units),
            alternatives=alternatives,
        )
        self._append(decision)
        return plan, decision

    # -- (2b) per-table column-kernel backend ---------------------------------------

    def choose_column_backend(self, table: str, n_rows: int) -> PassDecision:
        """Price the ``column_backend="auto"`` knob for one table.

        Both alternatives are byte-identical in every output (the kernel
        parity invariant), so this decision is pure wall-clock pricing: a
        representative index build costs ``n·log2(n)`` units on the
        pure-Python path, versus a fixed ndarray-construction overhead
        plus the same units shrunk by the modeled vectorization speedup —
        rescaled by the ``kernel`` calibration bucket as observations of
        kernel-heavy passes arrive.  Tiny tables stay on the Python path
        (the overhead dominates); NumPy being absent forces it.  The
        decision lands in the log like any other strategy choice.
        """
        from repro.relation.kernels import COLUMN_NUMPY, COLUMN_PYTHON, HAVE_NUMPY

        units = float(n_rows) * math.log2(max(2, n_rows))
        python_est = self.calibration.calibrated(PASS_KERNEL, units)
        numpy_raw = self.KERNEL_OVERHEAD + units / self.KERNEL_SPEEDUP
        numpy_est = self.calibration.calibrated(PASS_KERNEL, numpy_raw)
        alternatives = {COLUMN_PYTHON: python_est}
        if HAVE_NUMPY:
            alternatives[COLUMN_NUMPY] = numpy_est
            choice = COLUMN_NUMPY if numpy_est <= python_est else COLUMN_PYTHON
        else:
            choice = COLUMN_PYTHON
        decision = PassDecision(
            kind=DECISION_COLUMN_BACKEND,
            pass_kind=PASS_KERNEL,
            table=table,
            choice=choice,
            estimated_cost=alternatives[choice],
            raw_units=units,
            alternatives=alternatives,
        )
        self._append(decision)
        return decision

    # -- (2c) per-table storage backend ---------------------------------------------

    #: Storage pricing: fixed spill cost (stripe encode of the whole table,
    #: amortized over the session), the modeled per-unit drag of decoding
    #: mmap-ed chunks on reload, the extra one-off cost of building the
    #: SQLite mirror + indexes, and the modeled per-unit advantage of
    #: serving filters/windows as indexed range scans instead of full
    #: column materialization.
    STORAGE_SPILL_OVERHEAD = 512.0
    STORAGE_MMAP_DRAG = 1.5
    STORAGE_SQLITE_MIRROR = 1024.0
    STORAGE_PUSHDOWN_FACTOR = 1.25

    def choose_storage(
        self,
        table: str,
        n_rows: int,
        n_cols: int,
        memory_budget_mb: int = 0,
        theta_rules: bool = False,
    ) -> PassDecision:
        """Price the ``storage="auto"`` knob for one table.

        All three modes are byte-identical in every output (the storage
        parity invariant), so — like :meth:`choose_column_backend` — this
        is pure wall-clock pricing over one representative full-table
        touch of ``n_rows × n_cols`` cells, rescaled by the ``storage``
        calibration bucket.  A table whose modeled resident footprint fits
        ``memory_budget_mb`` stays in memory (always fastest: no encode /
        decode / SQL round-trips); one that does not *must* spill, and the
        planner picks mmap stripes vs the SQLite pushdown mirror.

        ``theta_rules`` is whether the table carries general denial
        constraints: the mirror's pushdown surfaces — order-by for the
        theta-join rebuild sort, indexed ``BETWEEN`` candidate windows —
        only fire on that path.  An FD-only table never consumes them, so
        for it the mirror is pure overhead (every repair patch also pays
        an ``UPDATE`` round-trip) and plain stripes always win.
        """
        from repro.storage.modes import (
            STORAGE_MEMORY,
            STORAGE_MMAP,
            STORAGE_SQLITE,
            storage_fits_budget,
        )

        units = float(max(1, n_rows) * max(1, n_cols))
        memory_est = self.calibration.calibrated(PASS_STORAGE, units)
        mmap_est = self.calibration.calibrated(
            PASS_STORAGE, self.STORAGE_SPILL_OVERHEAD + units * self.STORAGE_MMAP_DRAG
        )
        sqlite_factor = (
            self.STORAGE_PUSHDOWN_FACTOR if theta_rules else self.STORAGE_MMAP_DRAG
        )
        sqlite_est = self.calibration.calibrated(
            PASS_STORAGE,
            self.STORAGE_SPILL_OVERHEAD
            + self.STORAGE_SQLITE_MIRROR
            + units * sqlite_factor,
        )
        alternatives = {
            STORAGE_MEMORY: memory_est,
            STORAGE_MMAP: mmap_est,
            STORAGE_SQLITE: sqlite_est,
        }
        if storage_fits_budget(n_rows, n_cols, memory_budget_mb):
            choice = STORAGE_MEMORY
        else:
            # Over budget: memory is not an admissible choice — the budget
            # is a correctness constraint, not a preference.
            choice = (
                STORAGE_MMAP if mmap_est < sqlite_est else STORAGE_SQLITE
            )
        decision = PassDecision(
            kind=DECISION_STORAGE,
            pass_kind=PASS_STORAGE,
            table=table,
            choice=choice,
            estimated_cost=alternatives[choice],
            raw_units=units,
            alternatives=alternatives,
        )
        self._append(decision)
        return decision

    # -- (3) batch rule-group arbitration ------------------------------------------

    def choose_batch_strategy(
        self,
        table: str,
        members: int,
        cleaning_members: int,
        shared_units: float,
        sequential_units: float,
        routing_units: float = 0.0,
    ) -> PassDecision:
        """Price "one shared pass over the member union" against
        "incremental cleaning per member query" for one rule group.

        ``shared_units`` is the union-scope estimate (one relaxation +
        detection sweep); ``sequential_units`` the sum of per-member scope
        estimates (overlapping members re-pay their shared clusters);
        ``routing_units`` the **extra** filtering the shared path performs —
        each member's answer is filtered once for the pass union and once
        more when the member query is routed over the cleaned state, where
        the sequential path filters once inside normal execution.  Cleaning
        a tuple costs ~:attr:`BATCH_CLEAN_WEIGHT`× one filter charge, so:

        * heavy scope overlap (union ≪ sum) → the shared pass wins, the
          cleaning savings dwarf the re-filtering;
        * disjoint scopes (union ≈ sum) → sequential wins — sharing saves
          no cleaning and still re-filters every member.

        A single-member group always goes sequential (identical work, and
        the per-query path keeps the Section 5.2.3 strategy switch and
        cost-model observation in the loop — the ROADMAP's "the shared pass
        is the strategy" gap); a group in which *no* member needs cleaning
        always shares (the pass is a no-op and members route plainly).
        """
        overhead = self.BATCH_PASS_OVERHEAD
        weight = self.BATCH_CLEAN_WEIGHT
        shared_raw = shared_units * weight + routing_units
        sequential_raw = sequential_units * weight
        shared_est = (
            self.calibration.calibrated(PASS_BATCH, shared_raw) + overhead
        )
        sequential_est = (
            self.calibration.calibrated(PASS_BATCH, sequential_raw)
            + overhead * max(1, cleaning_members)
        )
        if members <= 1:
            choice = "sequential"
        elif cleaning_members == 0:
            choice = "shared"
        else:
            choice = "shared" if shared_est <= sequential_est else "sequential"
        decision = PassDecision(
            kind=DECISION_BATCH,
            pass_kind=PASS_BATCH,
            table=table,
            choice=choice,
            estimated_cost=shared_est if choice == "shared" else sequential_est,
            raw_units=float(shared_raw if choice == "shared" else sequential_raw),
            alternatives={"shared": shared_est, "sequential": sequential_est},
        )
        self._append(decision)
        return decision

    # -- (4) service-tier admission control -----------------------------------------

    def choose_admission(
        self,
        table: str,
        raw_units: float,
        queued_units: float,
        budget_units: float,
    ) -> PassDecision:
        """Price admitting one service request against the queue budget.

        ``raw_units`` is the request's uncalibrated work estimate (scope
        rows for a read, cells for an update batch), rescaled by the
        ``admission`` calibration bucket as observed work-unit deltas are
        fed back via :meth:`observe`.  ``queued_units`` is the calibrated
        work already admitted but not yet completed; ``budget_units`` the
        queue ceiling (``<= 0`` = unbounded, every request admits).

        * ``admit`` — the request fits under the ceiling now;
        * ``delay`` — it would overflow the ceiling but fits an empty
          queue: hold it until enough queued work completes;
        * ``shed`` — its own estimate exceeds the whole budget: no amount
          of draining will ever make it fit, reject outright.
        """
        est = self.calibration.calibrated(PASS_ADMISSION, max(0.0, raw_units))
        queued = max(0.0, queued_units)
        alternatives = {"admit": queued + est, "delay": queued, "shed": queued}
        if budget_units <= 0 or queued + est <= budget_units:
            choice = "admit"
        elif est > budget_units:
            choice = "shed"
        else:
            choice = "delay"
        decision = PassDecision(
            kind=DECISION_ADMISSION,
            pass_kind=PASS_ADMISSION,
            table=table,
            choice=choice,
            estimated_cost=alternatives[choice],
            raw_units=float(raw_units),
            alternatives=alternatives,
        )
        self._append(decision)
        return decision

    # -- (1) the Section 5.2.3 strategy switch --------------------------------------

    def strategy_switch(
        self,
        table: str,
        model: CostModel,
        remaining_queries: int | None = None,
    ) -> PassDecision | None:
        """Evaluate the strategy-switch inequality and record the verdict.

        Returns ``None`` when the workload is projected to be over (no
        decision to take, matching :meth:`CostModel.should_switch_to_full`
        returning False).  The caller performs the full clean when
        ``choice == "full_clean_now"`` and then reports the clean's counter
        delta via :meth:`observe`; ``continue_incremental`` verdicts keep
        ``observed_cost`` as ``None`` — their outcome is the *next* queries'
        incremental costs, which the per-table :class:`CostModel` already
        accumulates.
        """
        costs = model.switch_costs(remaining_queries)
        if costs is None:
            return None
        incremental, full = costs
        switched = model.switch_exceeds(incremental, full)
        decision = PassDecision(
            kind=DECISION_STRATEGY,
            pass_kind="strategy",
            table=table,
            choice="full_clean_now" if switched else "continue_incremental",
            estimated_cost=full if switched else incremental,
            raw_units=full if switched else incremental,
            alternatives={"continue_incremental": incremental, "full_clean_now": full},
        )
        self._append(decision)
        return decision
