"""The Section 5.2 cost model: offline vs incremental cleaning.

Implements the paper's cost formulas and the switch decision of
Section 5.2.3:

* offline (full) cleaning cost — detection + per-error repair + dataset
  update, plus plain query execution for the workload;
* incremental cleaning cost — per query: relaxation over the unknown
  remainder, detection and repair over the enhanced result, and the
  probabilistic dataset update;
* the inequality that decides, while the workload executes, whether to keep
  cleaning incrementally or to clean the remaining dirty part at once
  (the Fig. 7 / Fig. 12 strategy switch).

The model works on observed per-query measurements plus the precomputed
statistics (ε and p estimates from :mod:`repro.core.statistics`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class QueryObservation:
    """Measured quantities for one executed query."""

    result_size: int       # q_i
    extra_tuples: int      # e_i (relaxation additions)
    errors: int            # ε_i (erroneous entities repaired)
    detection_cost: float  # d_i work units


@dataclass
class CostModelConfig:
    """Tuning knobs for the cost model."""

    #: Expected number of queries in the workload (q in the inequality).
    expected_queries: int = 50
    #: Safety factor: switch only when incremental exceeds full by this much.
    hysteresis: float = 1.0


def offline_cost(
    n: int,
    errors: int,
    candidates_per_error: float,
    num_queries: int,
    is_dc: bool = False,
) -> float:
    """Total offline cost: q·n + d_full + ε·n + n + ε·p (Section 5.2.3).

    ``d_full`` is O(n) for FDs (hash grouping) and the triangular
    n·(n+1)/2 for DCs.
    """
    d_full = (n * (n + 1)) / 2.0 if is_dc else float(n)
    repair = errors * float(n)
    update = n + errors * candidates_per_error
    return num_queries * float(n) + d_full + repair + update


def incremental_query_cost(
    n: int,
    seen_tuples: int,
    result_size: int,
    extra_tuples: int,
    errors: int,
    prior_prob_values: float,
    candidates_per_error: float,
    is_dc: bool = False,
    partitions: int = 64,
) -> float:
    """Cost of cleaning one query incrementally (formula (1), Section 5.2.2).

    ``seen_tuples`` = Σ_{j<i} q_j, ``prior_prob_values`` = Σ_{j<i} ε_j·p.
    """
    relaxation = max(0, n - seen_tuples)
    if is_dc:
        detection = (n * result_size) / max(1, partitions)
    else:
        detection = result_size + extra_tuples
    repair = errors * (result_size + extra_tuples)
    update = (
        max(0, n - prior_prob_values / max(1.0, candidates_per_error))
        + prior_prob_values
        + errors * candidates_per_error
    )
    return relaxation + detection + repair + update


@dataclass
class CostModel:
    """Adaptive incremental-vs-full decision, updated after every query.

    Usage: construct with the dataset size and statistics estimates, call
    :meth:`observe` after each query, then :meth:`should_switch_to_full`.
    The decision compares the projected cost of finishing the workload
    incrementally against cleaning the remaining dirty part now and running
    the remaining queries plainly.
    """

    dataset_size: int
    estimated_errors: int
    candidates_per_error: float = 2.0
    is_dc: bool = False
    config: CostModelConfig = field(default_factory=CostModelConfig)

    observations: list[QueryObservation] = field(default_factory=list)
    cumulative_incremental_cost: float = 0.0
    errors_cleaned: int = 0
    tuples_seen: int = 0

    def observe(self, obs: QueryObservation) -> None:
        """Record one executed query's measurements."""
        prior_prob_values = self.errors_cleaned * self.candidates_per_error
        cost = incremental_query_cost(
            n=self.dataset_size,
            seen_tuples=self.tuples_seen,
            result_size=obs.result_size,
            extra_tuples=obs.extra_tuples,
            errors=obs.errors,
            prior_prob_values=prior_prob_values,
            candidates_per_error=self.candidates_per_error,
            is_dc=self.is_dc,
        )
        self.cumulative_incremental_cost += cost
        self.observations.append(obs)
        self.errors_cleaned += obs.errors
        self.tuples_seen += obs.result_size + obs.extra_tuples

    # -- projections ------------------------------------------------------------

    def remaining_errors(self) -> int:
        return max(0, self.estimated_errors - self.errors_cleaned)

    def _avg(self, selector) -> float:
        if not self.observations:
            return 0.0
        return sum(selector(o) for o in self.observations) / len(self.observations)

    def projected_incremental_remaining(self, remaining_queries: int) -> float:
        """Projected cost of finishing the workload incrementally."""
        if remaining_queries <= 0:
            return 0.0
        avg_q = self._avg(lambda o: o.result_size) or self.dataset_size * 0.02
        avg_e = self._avg(lambda o: o.extra_tuples)
        total_remaining_err = self.remaining_errors()
        avg_err = (
            total_remaining_err / remaining_queries if remaining_queries else 0.0
        )
        total = 0.0
        seen = float(self.tuples_seen)
        cleaned = float(self.errors_cleaned)
        for _ in range(remaining_queries):
            total += incremental_query_cost(
                n=self.dataset_size,
                seen_tuples=int(seen),
                result_size=int(avg_q),
                extra_tuples=int(avg_e),
                errors=int(avg_err),
                prior_prob_values=cleaned * self.candidates_per_error,
                candidates_per_error=self.candidates_per_error,
                is_dc=self.is_dc,
            )
            seen += avg_q + avg_e
            cleaned += avg_err
        return total

    def full_clean_now_cost(self, remaining_queries: int) -> float:
        """Cost of cleaning the remaining dirty part now + plain queries.

        Cheaper than a from-scratch offline clean because only the dirty
        remainder is processed (the Fig. 7 observation that the switched
        strategy beats pure offline).
        """
        n = self.dataset_size
        remaining_err = self.remaining_errors()
        unseen = max(0, n - self.tuples_seen)
        d_full = (unseen * (unseen + 1)) / 2.0 if self.is_dc else float(unseen)
        repair = remaining_err * float(unseen if unseen > 0 else n)
        update = unseen + remaining_err * self.candidates_per_error
        queries = remaining_queries * float(n)
        return d_full + repair + update + queries

    def should_switch_to_full(
        self, remaining_queries: Optional[int] = None
    ) -> bool:
        """The Section 5.2.3 inequality, evaluated with current estimates."""
        if remaining_queries is None:
            remaining_queries = max(
                0, self.config.expected_queries - len(self.observations)
            )
        if remaining_queries <= 0:
            return False
        incremental = self.projected_incremental_remaining(remaining_queries)
        full = self.full_clean_now_cost(remaining_queries)
        return incremental > full * self.config.hysteresis
