"""The cleaning operators: ``clean_sigma`` and ``clean_join``.

``clean_sigma`` (Definition 2) cleans the result of a select operator:
(a) relax the result with correlated tuples, (b) detect and fix errors,
(c) update the dataset in place.  FDs use Algorithm 1 relaxation + group
repair; general DCs use the incremental partial theta-join + holistic
repair, with the Algorithm 2 estimator optionally escalating to a full
matrix check.

``clean_join`` (Definition 3) cleans a join result: extract each side's
qualifying part through lineage, clean each side with the ``clean_sigma``
machinery, then update the join incrementally with the tuples the repairs
added or changed (Lemma 5 guarantees no further checks are needed).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.constraints.analysis import FilterSide, filter_side, relevant_rules
from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, as_dc, as_fd
from repro.core.relaxation import relax_fd
from repro.core.statistics import FdStatistics
from repro.core.state import TableState, rule_key
from repro.engine.stats import WorkCounter
from repro.detection.estimator import decide_cleaning
from repro.parallel.clean import ParallelContext, parallel_relax_fd
from repro.probabilistic.lineage import JoinResult, incremental_join_update
from repro.repair.dc_repair import compute_dc_fixes
from repro.repair.fd_repair import apply_fd_delta, compute_fd_fixes
from repro.repair.fixes import RepairDelta
from repro.repair.merge import merge_deltas
from repro._ownership import session_owned

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.relation.relation import Row


@session_owned
@dataclass
class CleanReport:
    """What one cleaning-operator invocation did."""

    scope_tids: set[int] = field(default_factory=set)
    extra_tuples: int = 0
    errors_fixed: int = 0
    relaxation_iterations: int = 0
    detection_cost: float = 0.0
    used_full_matrix: bool = False
    changed_tids: set[int] = field(default_factory=set)

    def merge(self, other: "CleanReport") -> None:
        self.scope_tids |= other.scope_tids
        self.extra_tuples += other.extra_tuples
        self.errors_fixed += other.errors_fixed
        self.relaxation_iterations += other.relaxation_iterations
        self.detection_cost += other.detection_cost
        self.used_full_matrix |= other.used_full_matrix
        self.changed_tids |= other.changed_tids


def clean_sigma(
    state: TableState,
    answer_tids: Iterable[int],
    where_attrs: Iterable[str] = (),
    projection: Iterable[str] = (),
    dc_error_threshold: float = 0.2,
    force_rules: Iterable[Rule] | None = None,
    parallel: ParallelContext | None = None,
) -> CleanReport:
    """Clean an SP query result in place.

    ``answer_tids`` is the dirty answer; ``where_attrs`` / ``projection``
    feed the rule-overlap test (rules not accessed by the query are
    skipped).  ``force_rules`` bypasses the overlap test (used by
    ``clean_join`` and by full-table cleanup).

    ``parallel`` (a :class:`~repro.parallel.clean.ParallelContext`) shards
    FD relaxation closures by tid range and fans DC matrix cells out over
    the context's executor pool; results and work-unit totals are
    byte-identical to the serial run (``parallel=None``), which remains the
    default and the semantics oracle.

    The operator mutates ``state.relation`` (applying the repair delta) and
    the provenance store, and returns a :class:`CleanReport`.
    """
    answer = set(answer_tids)
    if force_rules is not None:
        rules = list(force_rules)
    else:
        rules = relevant_rules(projection, where_attrs, state.rules)

    report = CleanReport(scope_tids=set(answer))
    deltas: list[RepairDelta] = []
    fd_marks: list[tuple[str, set[int]]] = []

    where_set = set(where_attrs)
    for rule in rules:
        if state.is_fully_cleaned(rule):
            continue
        fd = as_fd(rule)
        if fd is not None:
            sub_report, delta, repaired = _clean_sigma_fd(
                state, answer, fd, where_set, parallel=parallel
            )
            report.merge(sub_report)
            if repaired:
                fd_marks.append((rule_key(rule), repaired))
            if delta:
                deltas.append(delta)
        else:
            dc = as_dc(rule)
            sub_report, delta = _clean_sigma_dc(
                state, answer, dc, dc_error_threshold, parallel=parallel
            )
            report.merge(sub_report)
            if delta:
                deltas.append(delta)

    if deltas:
        merged = merge_deltas(deltas)
        updated = apply_fd_delta(
            state.relation, merged, provenance=state.provenance, counter=state.counter
        )
        state.replace_relation(updated)
        report.changed_tids |= merged.touched_tids()
        report.errors_fixed += len(merged.nontrivial_fixes())
    for key, repaired in fd_marks:
        state.provenance.mark_checked(key, repaired)
    return report


def fd_scope_needs_cleaning(
    state: TableState,
    answer: set[int],
    fd: FunctionalDependency,
    counter: WorkCounter | None = None,
) -> bool:
    """Statistics pruning (Fig. 9) as a standalone test.

    True iff the answer overlaps a dirty group of ``fd`` — through its lhs
    keys or through rhs values that co-occur with a dirty group — or no
    statistics exist for the rule (then cleaning must look).  Shared by
    :func:`clean_sigma`'s FD path and by the batch executor, which prunes
    whole member queries out of a rule group's shared pass with it.

    ``counter`` overrides the table counter the test charges — the batch
    planner's *decision phase* passes a throwaway counter so pricing a rule
    group never perturbs the work-unit totals the forced-choice oracles
    charge (estimation is model overhead, not cleaning work).
    """
    counter = counter if counter is not None else state.counter
    stats = state.statistics.get(rule_key(fd)) or state.statistics.get(fd.name or str(fd))
    if stats is None:
        return True
    from repro.probabilistic.value import PValue

    view = state.column_view()
    if view is not None:
        from repro.repair.fd_repair import fd_grouping_keys

        pos_map = view.pos_of_tid
        lhs_keys = fd_grouping_keys(view, fd, state.provenance).lhs_keys

        def key_of(tid: int) -> tuple[Any, ...]:
            return lhs_keys[pos_map[tid]]

        present = pos_map
    else:
        lhs_idx = [state.relation.schema.index_of(a) for a in fd.lhs]
        tid_rows = state.relation.tid_index()

        def key_of(tid: int) -> tuple[Any, ...]:
            row = tid_rows[tid]
            out = []
            for i, attr in zip(lhs_idx, fd.lhs):
                original = state.provenance.original(tid, attr)
                if original is not None:
                    out.append(original)
                    continue
                cell = row.values[i]
                out.append(
                    cell.most_probable() if isinstance(cell, PValue) else cell
                )
            return tuple(out)

        present = tid_rows

    answer_keys = {key_of(tid) for tid in answer if tid in present}
    counter.charge_comparisons(len(answer_keys))
    dirty_hit = any(stats.is_dirty_key(k) for k in answer_keys)
    # rhs-filtered queries may relax into dirty groups via rhs values, so
    # only prune when the rule has no dirty group at all overlapping the
    # answer AND the answer's rhs values don't appear in dirty groups.
    return dirty_hit or _rhs_touches_dirty(state, answer, fd, stats, counter)


def _clean_sigma_fd(
    state: TableState,
    answer: set[int],
    fd: FunctionalDependency,
    where_attrs: set[str],
    parallel: ParallelContext | None = None,
) -> tuple[CleanReport, RepairDelta | None, set[int]]:
    """FD path: relaxation + group detection/repair with statistics pruning.

    With an enabled ``parallel`` context and a columnar view, the relaxation
    closure runs sharded (:func:`~repro.parallel.clean.parallel_relax_fd`);
    everything downstream — grouping, fix computation, accounting — is the
    serial code over the identical merged scope.
    """
    report = CleanReport()
    view = state.column_view()

    # Statistics pruning (Fig. 9): if none of the answer's lhs keys belong to
    # a dirty group, skip relaxation and repair for this rule entirely.
    if not fd_scope_needs_cleaning(state, answer, fd):
        return report, None, set()

    side = filter_side(where_attrs, fd)
    if side is FilterSide.NONE:
        # The rule was forced (join cleaning / full-table cleanup): the safe
        # general behaviour is the transitive closure.
        side = FilterSide.LHS
    seen = state.seen_for(fd)
    plan = None
    work_before = state.counter.total()
    if parallel is not None and view is not None:
        plan = parallel.plan_fd_relax(state, len(answer))
    if plan is not None and plan.parallel:
        relaxation = parallel_relax_fd(
            state, answer, fd, side, view, parallel, plan=plan
        )
    else:
        relaxation = relax_fd(
            state.relation, answer, fd, filter_side=side, counter=state.counter,
            skip_tids=seen, view=view,
        )
    report.extra_tuples += len(relaxation.extra_tids)
    report.relaxation_iterations += relaxation.iterations
    scope = relaxation.relaxed_tids(answer)
    report.scope_tids |= scope
    state.mark_seen(fd, scope)

    checked = state.provenance.checked(rule_key(fd))
    delta, repaired = compute_fd_fixes(
        state.relation,
        fd,
        scope,
        provenance=state.provenance,
        counter=state.counter,
        skip_group_keys=checked,  # type: ignore[arg-type]
        consult_tids=relaxation.consult_tids,
        view=view,
    )
    report.detection_cost += len(scope) + len(relaxation.consult_tids)
    if plan is not None and parallel is not None:
        # Feed the whole FD pass's observed work (relaxation + detection)
        # back into the fd_relax calibration bucket.
        parallel.observe(plan.decision, state.counter.total() - work_before)
    return report, delta, repaired


def _rhs_touches_dirty(
    state: TableState,
    answer: set[int],
    fd: FunctionalDependency,
    stats: FdStatistics,
    counter: WorkCounter | None = None,
) -> bool:
    """Do any of the answer's rhs values co-occur with a dirty lhs group?"""
    from repro.probabilistic.value import PValue

    counter = counter if counter is not None else state.counter

    dirty_rhs = stats.dirty_rhs_values
    view = state.column_view()
    if view is not None:
        pos_map = view.pos_of_tid
        rhs_col = view.columns[fd.rhs]
        for tid in answer:
            pos = pos_map.get(tid)
            if pos is None:
                continue
            cell = rhs_col[pos]
            values = cell.concrete_values() if isinstance(cell, PValue) else (cell,)
            counter.charge_comparisons()
            if any(v in dirty_rhs for v in values):
                return True
        return False

    rhs_idx = state.relation.schema.index_of(fd.rhs)
    tid_rows = state.relation.tid_index()
    for tid in answer:
        row = tid_rows.get(tid)
        if row is None:
            continue
        cell = row.values[rhs_idx]
        values = cell.concrete_values() if isinstance(cell, PValue) else (cell,)
        counter.charge_comparisons()
        if any(v in dirty_rhs for v in values):
            return True
    return False


def _clean_sigma_dc(
    state: TableState,
    answer: set[int],
    dc: DenialConstraint,
    threshold: float,
    parallel: ParallelContext | None = None,
) -> tuple[CleanReport, RepairDelta | None]:
    """General-DC path: partial theta-join + Algorithm 2 + holistic repair.

    The matrix's candidate cells fan out over the parallel context's pool
    when one is enabled; cell results merge in cell order, so violations
    and work units match the serial check exactly.
    """
    report = CleanReport()
    matrix = state.matrix_for(dc)

    decision = decide_cleaning(
        matrix, sorted(answer), state.relation, threshold=threshold,
        counter=state.counter,
    )
    # Resolve the candidate cells first so the (free) pair-count estimate
    # can price the pool choice: full-matrix-scale checks escalate to the
    # process pool, small partial checks stay serial under "auto".
    if decision.full_cleaning:
        cells = matrix.candidate_cells()
    else:
        cells = matrix.candidate_cells(answer)
    plan = (
        parallel.plan_dc_check(matrix, cells, state.relation.name or "")
        if parallel is not None
        else None
    )
    pool = plan.pool if plan is not None else None
    work_before = state.counter.total()
    violations = matrix.check_cells(cells, pool=pool)
    if plan is not None and parallel is not None:
        parallel.observe(plan.decision, state.counter.total() - work_before)
    if decision.full_cleaning:
        report.used_full_matrix = True
        state.mark_fully_cleaned(dc)
    report.detection_cost += float(len(violations))

    if not violations:
        return report, None
    delta = compute_dc_fixes(
        state.relation,
        dc,
        violations,
        provenance=state.provenance,
        counter=state.counter,
    )
    return report, delta


def clean_full_table(
    state: TableState,
    rules: Iterable[Rule] | None = None,
    parallel: ParallelContext | None = None,
) -> CleanReport:
    """Clean the whole table for the given rules (the strategy-switch path).

    Equivalent to a clean_sigma whose answer is every tuple; marks rules as
    fully cleaned.
    """
    all_tids = state.relation.tids()
    rules = list(rules) if rules is not None else list(state.rules)
    report = clean_sigma(state, all_tids, force_rules=rules, parallel=parallel)
    for rule in rules:
        state.mark_fully_cleaned(rule)
    return report


def clean_join(
    left_state: TableState,
    right_state: TableState,
    join_result: JoinResult,
    left_where_attrs: Iterable[str] = (),
    right_where_attrs: Iterable[str] = (),
    dc_error_threshold: float = 0.2,
    left_filter: Callable[["Row"], bool] | None = None,
    right_filter: Callable[["Row"], bool] | None = None,
    parallel: ParallelContext | None = None,
) -> tuple[JoinResult, CleanReport]:
    """Clean a join result (Definition 3).

    1. Extract the qualifying tids of each side from the lineage.
    2. Clean each side with the ``clean_sigma`` machinery (forcing the
       side's rules: the join itself accessed the join key, and callers pass
       the filter attributes of each side).
    3. Update each relation in place, then update the join incrementally
       with the changed/added tuples of both sides.

    ``left_filter`` / ``right_filter`` are optional row predicates (the
    query's side filters, evaluated with possible-worlds semantics):
    relaxation-added tuples only enter the incremental join when they
    satisfy their side's filter — in Table 4e the (10001, San Francisco)
    city does not join even though relaxation read it.
    """
    report = CleanReport()

    left_tids = join_result.lineage.left_tids()
    right_tids = join_result.lineage.right_tids()

    left_rules = relevant_rules(
        (), set(left_where_attrs) | {join_result.left_attr}, left_state.rules
    )
    right_rules = relevant_rules(
        (), set(right_where_attrs) | {join_result.right_attr}, right_state.rules
    )

    left_report = clean_sigma(
        left_state,
        left_tids,
        force_rules=left_rules,
        dc_error_threshold=dc_error_threshold,
        parallel=parallel,
    )
    right_report = clean_sigma(
        right_state,
        right_tids,
        force_rules=right_rules,
        dc_error_threshold=dc_error_threshold,
        parallel=parallel,
    )
    report.merge(left_report)
    report.merge(right_report)

    # Tuples the repairs changed, plus relaxation additions that satisfy the
    # side filter: candidates for new join pairs (Fig. 3's incremental join).
    new_left = (left_report.changed_tids | left_report.scope_tids) - left_tids
    new_left |= left_report.changed_tids
    new_right = (right_report.changed_tids | right_report.scope_tids) - right_tids
    new_right |= right_report.changed_tids
    if left_filter is not None:
        rows = left_state.relation.tid_index()
        new_left = {
            t for t in new_left if t in rows and left_filter(rows[t])
        }
    if right_filter is not None:
        rows = right_state.relation.tid_index()
        new_right = {
            t for t in new_right if t in rows and right_filter(rows[t])
        }

    # The incremental join runs over the *qualifying* parts only: the
    # original join inputs plus the filtered additions.
    left_part = left_state.relation.restrict_tids(left_tids | new_left)
    right_part = right_state.relation.restrict_tids(right_tids | new_right)
    updated = incremental_join_update(
        join_result,
        left_part,
        right_part,
        new_left,
        new_right,
    )
    left_state.counter.charge_join_probe(
        len(new_left) * max(1, len(right_state.relation))
        + len(new_right) * max(1, len(left_state.relation))
    )

    # Rebuild output rows for pairs whose underlying tuples changed, so the
    # join result reflects the repaired (probabilistic) cells.
    changed = left_report.changed_tids | right_report.changed_tids
    if changed:
        updated = _refresh_join_rows(
            updated, left_state, right_state,
            left_report.changed_tids, right_report.changed_tids,
        )
    return updated, report


def _refresh_join_rows(
    join_result: JoinResult,
    left_state: TableState,
    right_state: TableState,
    changed_left: set[int],
    changed_right: set[int],
) -> JoinResult:
    """Re-materialize join output rows whose input tuples were repaired."""
    from repro.relation.relation import Relation, Row

    left_rows = left_state.relation.tid_index()
    right_rows = right_state.relation.tid_index()
    out_rows = []
    for row in join_result.relation.rows:
        ltid, rtid = join_result.lineage.pairs.get(row.tid, (None, None))
        if ltid in changed_left or rtid in changed_right:
            lrow = left_rows.get(ltid)
            rrow = right_rows.get(rtid)
            if lrow is not None and rrow is not None:
                out_rows.append(Row(row.tid, lrow.values + rrow.values))
                continue
        out_rows.append(row)
    relation = Relation(
        join_result.relation.schema, out_rows, name=join_result.relation.name
    )
    return JoinResult(
        relation=relation,
        lineage=join_result.lineage,
        left_attr=join_result.left_attr,
        right_attr=join_result.right_attr,
        left_name=join_result.left_name,
        right_name=join_result.right_name,
    )
