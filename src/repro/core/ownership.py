"""Public face of the ownership annotation registry.

The implementation lives in :mod:`repro._ownership`, a dependency-free
top-level module, so that leaf modules deep in the engine (``engine.stats``,
``constraints.parser``, ``relation.columnview``, …) can annotate themselves
without dragging in :mod:`repro.core`'s import graph mid-initialization.
Engine internals import from ``repro._ownership`` directly; everything
else — user code, tests, the diagnostics layer — should use this module.

See :mod:`repro._ownership` for the full contract documentation
(``@shared_engine_state`` / ``@session_owned`` / ``@immutable_after_init``,
``MUTATED_UNDER`` seam tables, ``MUTATING_ACCESSORS``).
"""

from __future__ import annotations

from repro._ownership import (
    DEFAULT_INIT_METHODS,
    IMMUTABLE_AFTER_INIT,
    OWNERSHIP_KINDS,
    OWNERSHIP_REGISTRY,
    SESSION_OWNED,
    SHARED_ENGINE_STATE,
    OwnershipSpec,
    immutable_after_init,
    ownership_of,
    seam_matches,
    session_owned,
    shared_engine_state,
    site_allowed,
)

__all__ = [
    "IMMUTABLE_AFTER_INIT",
    "SESSION_OWNED",
    "SHARED_ENGINE_STATE",
    "OWNERSHIP_KINDS",
    "DEFAULT_INIT_METHODS",
    "OwnershipSpec",
    "OWNERSHIP_REGISTRY",
    "shared_engine_state",
    "session_owned",
    "immutable_after_init",
    "ownership_of",
    "seam_matches",
    "site_allowed",
]
