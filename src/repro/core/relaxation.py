"""Query-result relaxation (Algorithm 1) and its analytical estimators.

Relaxation enhances a query result with *correlated tuples*: tuples sharing
an lhs or rhs value with the result under an FD.  The shape of the
relaxation depends on which side of the FD the query filter restricts:

* **rhs filter** (Lemma 1, Example 2): one iteration suffices.  The repair
  scope is the answer plus tuples sharing an lhs value with it (candidates
  to obtain a qualifying rhs).  A further *consultation* set — tuples
  sharing an rhs value with the repair scope — is needed to compute lhs
  candidate probabilities (P(lhs | rhs)), but those tuples are not
  themselves repaired: in Table 2b the (10001, San Francisco) tuple feeds
  tuple 2's zip candidates yet stays untouched.

* **lhs filter** (Lemma 2, Example 3): transitive closure.  Newly added
  tuples contribute new lhs/rhs values that pull in further tuples, until a
  full iteration adds nothing; the whole correlated cluster is repaired
  (Table 3 repairs both the 9001 and the 10001 groups).

Lemma 2's hypergeometric estimate of needing an extra iteration and
Lemma 3's relaxed-size upper bound are provided as analytical helpers.

For general DCs, relaxation is the partial theta-join of
:mod:`repro.detection.thetajoin`; this module covers the FD path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.constraints.analysis import FilterSide
from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation.relation import Relation, Row


@dataclass
class RelaxationResult:
    """Output of Algorithm 1.

    ``extra_tids`` join the repair scope; ``consult_tids`` are additionally
    read when computing candidate probabilities but are not repaired.
    """

    extra_tids: set[int] = field(default_factory=set)
    consult_tids: set[int] = field(default_factory=set)
    iterations: int = 0
    scanned_tuples: int = 0

    def relaxed_tids(self, answer_tids: Iterable[int]) -> set[int]:
        """The repair scope: answer ∪ extra."""
        return set(answer_tids) | self.extra_tids

    def full_scope(self, answer_tids: Iterable[int]) -> set[int]:
        """Everything read: answer ∪ extra ∪ consult."""
        return set(answer_tids) | self.extra_tids | self.consult_tids


def _cell_values(cell: Any) -> tuple[Any, ...]:
    """Values a cell contributes to the correlated-value sets."""
    if isinstance(cell, PValue):
        return cell.concrete_values()
    return (cell,)


def relax_fd(
    relation: Relation,
    answer_tids: Iterable[int],
    fd: FunctionalDependency,
    filter_side: FilterSide = FilterSide.LHS,
    counter: Optional[WorkCounter] = None,
    max_iterations: Optional[int] = None,
    skip_tids: Optional[set[int]] = None,
) -> RelaxationResult:
    """Algorithm 1: SP query-result relaxation for one FD.

    ``filter_side`` selects the Lemma 1 single-pass behaviour (RHS) or the
    Lemma 2 transitive closure (LHS / BOTH / NONE — closure is the safe
    general case).  Work accounting mirrors the paper's cost analysis:
    every unvisited tuple inspected by a filter pass is charged as a scan.

    ``skip_tids`` are tuples already processed by this rule in earlier
    queries (the paper's incremental cost n − Σ_{j<i} q_j): they are
    excluded from the closure passes — sound, because every earlier scope
    was lhs-group-complete, so no unseen violation can hide behind a seen
    tuple — but still consulted in a final support pass so candidate
    probabilities stay identical to the offline result.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)
    answer = set(answer_tids)
    skip = (skip_tids or set()) - answer

    def lhs_values_of(row: Row) -> tuple[tuple[Any, ...], ...]:
        per_attr = [_cell_values(row.values[i]) for i in lhs_idx]
        combos: list[tuple[Any, ...]] = [()]
        for values in per_attr:
            combos = [c + (v,) for c in combos for v in values]
        return tuple(combos)

    def rhs_values_of(row: Row) -> tuple[Any, ...]:
        return _cell_values(row.values[rhs_idx])

    result_lhs: set[tuple[Any, ...]] = set()
    result_rhs: set[Any] = set()
    tid_rows = relation.tid_index()
    for tid in answer:
        row = tid_rows.get(tid)
        if row is None:
            continue
        result_lhs.update(lhs_values_of(row))
        result_rhs.update(rhs_values_of(row))

    unvisited: list[Row] = [
        r for r in relation.rows if r.tid not in answer and r.tid not in skip
    ]
    skipped_rows: list[Row] = (
        [r for r in relation.rows if r.tid in skip] if skip else []
    )
    result = RelaxationResult()

    def support_pass(rows: Iterable[Row]) -> None:
        """One pass collecting same-rhs tuples for P(lhs | rhs) support."""
        for row in rows:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(v in result_rhs for v in rhs_values_of(row)):
                result.consult_tids.add(row.tid)

    if filter_side is FilterSide.RHS:
        # Lemma 1: one iteration.  Pass 1 — same-lhs tuples join the repair
        # scope; pass 2 — same-rhs tuples against the *answer's* rhs values
        # are already in the answer (they satisfy the filter), so nothing new
        # is repaired.  The consultation pass collects same-rhs tuples of the
        # enlarged scope for P(lhs | rhs) computation.
        result.iterations = 1
        remaining: list[Row] = []
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(key in result_lhs for key in lhs_values_of(row)):
                result.extra_tids.add(row.tid)
                result_rhs.update(rhs_values_of(row))
            else:
                remaining.append(row)
        support_pass(remaining)
        support_pass(skipped_rows)
        return result

    # Transitive closure (lhs filter / general case).
    while True:
        if max_iterations is not None and result.iterations >= max_iterations:
            break
        result.iterations += 1
        added: list[Row] = []
        remaining = []
        # Pass 1: tuples sharing an lhs value with the (relaxed) result.
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(key in result_lhs for key in lhs_values_of(row)):
                added.append(row)
            else:
                remaining.append(row)
        unvisited = remaining
        # Pass 2: tuples sharing an rhs value with the (relaxed) result.
        remaining = []
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(v in result_rhs for v in rhs_values_of(row)):
                added.append(row)
            else:
                remaining.append(row)
        unvisited = remaining
        if not added:
            break
        for row in added:
            result.extra_tids.add(row.tid)
            result_lhs.update(lhs_values_of(row))
            result_rhs.update(rhs_values_of(row))
    # Support pass over the skipped tuples: they cannot open new violations
    # (their groups were already checked) but their values still weight the
    # lhs-candidate probabilities of newly found errors.
    support_pass(skipped_rows)
    return result


# ---------------------------------------------------------------------------
# Analytical estimators (Lemmas 1-3)
# ---------------------------------------------------------------------------


def iterations_needed_rhs_filter() -> int:
    """Lemma 1: one iteration suffices for a filter on the FD's rhs."""
    return 1


def extra_iteration_probability(
    dataset_size: int, violations: int, relaxed_size: int
) -> float:
    """Lemma 2: P(≥1 violation in a relaxed result of maximal size |AR|).

    Hypergeometric: 1 - C(#vio,0)·C(n-#vio,|AR|)/C(n,|AR|).
    """
    n, k, m = dataset_size, violations, relaxed_size
    if k <= 0 or m <= 0:
        return 0.0
    if m > n:
        m = n
    if k >= n:
        return 1.0
    if m > n - k:
        return 1.0
    log_p0 = _log_comb(n - k, m) - _log_comb(n, m)
    return 1.0 - math.exp(log_p0)


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def relaxed_size_upper_bound(
    dataset_freq: dict[str, dict[Any, int]],
    result_freq: dict[str, dict[Any, int]],
) -> int:
    """Lemma 3: upper bound on the relaxed-result growth per iteration.

    ``dataset_freq[attr][value]`` is the dataset-wide frequency of ``value``
    in constraint attribute ``attr``; ``result_freq`` the same over the query
    result.  The bound sums, per attribute, the dataset frequency mass of
    the result's values minus the mass already in the result:

        R = Σ_attr ( Σ_{v in result values} D[v] − Σ_{v} Dq[v] ).
    """
    total = 0
    for attr, rf in result_freq.items():
        df = dataset_freq.get(attr, {})
        dataset_mass = sum(df.get(value, 0) for value in rf)
        result_mass = sum(rf.values())
        total += max(0, dataset_mass - result_mass)
    return total


def frequency_distribution(
    relation: Relation, attr: str, tids: Optional[Iterable[int]] = None
) -> dict[Any, int]:
    """Value frequencies of one attribute (over a tid subset if given)."""
    idx = relation.schema.index_of(attr)
    tid_filter = set(tids) if tids is not None else None
    out: dict[Any, int] = {}
    for row in relation.rows:
        if tid_filter is not None and row.tid not in tid_filter:
            continue
        for value in _cell_values(row.values[idx]):
            out[value] = out.get(value, 0) + 1
    return out


def estimate_relaxed_size(
    relation: Relation,
    answer_tids: Iterable[int],
    fd: FunctionalDependency,
) -> int:
    """Lemma 3 applied to a concrete query answer and FD."""
    answer = set(answer_tids)
    attrs = list(fd.lhs) + [fd.rhs]
    dataset_freq = {a: frequency_distribution(relation, a) for a in attrs}
    result_freq = {a: frequency_distribution(relation, a, answer) for a in attrs}
    return relaxed_size_upper_bound(dataset_freq, result_freq)
