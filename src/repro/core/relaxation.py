"""Query-result relaxation (Algorithm 1) and its analytical estimators.

Relaxation enhances a query result with *correlated tuples*: tuples sharing
an lhs or rhs value with the result under an FD.  The shape of the
relaxation depends on which side of the FD the query filter restricts:

* **rhs filter** (Lemma 1, Example 2): one iteration suffices.  The repair
  scope is the answer plus tuples sharing an lhs value with it (candidates
  to obtain a qualifying rhs).  A further *consultation* set — tuples
  sharing an rhs value with the repair scope — is needed to compute lhs
  candidate probabilities (P(lhs | rhs)), but those tuples are not
  themselves repaired: in Table 2b the (10001, San Francisco) tuple feeds
  tuple 2's zip candidates yet stays untouched.

* **lhs filter** (Lemma 2, Example 3): transitive closure.  Newly added
  tuples contribute new lhs/rhs values that pull in further tuples, until a
  full iteration adds nothing; the whole correlated cluster is repaired
  (Table 3 repairs both the 9001 and the 10001 groups).

Lemma 2's hypergeometric estimate of needing an extra iteration and
Lemma 3's relaxed-size upper bound are provided as analytical helpers.

For general DCs, relaxation is the partial theta-join of
:mod:`repro.detection.thetajoin`; this module covers the FD path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.constraints.analysis import FilterSide
from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation.columnview import ColumnView
from repro.relation.relation import Relation, Row
from repro._ownership import session_owned


@session_owned
@dataclass
class RelaxationResult:
    """Output of Algorithm 1.

    ``extra_tids`` join the repair scope; ``consult_tids`` are additionally
    read when computing candidate probabilities but are not repaired.
    """

    extra_tids: set[int] = field(default_factory=set)
    consult_tids: set[int] = field(default_factory=set)
    iterations: int = 0
    scanned_tuples: int = 0

    def relaxed_tids(self, answer_tids: Iterable[int]) -> set[int]:
        """The repair scope: answer ∪ extra."""
        return set(answer_tids) | self.extra_tids

    def full_scope(self, answer_tids: Iterable[int]) -> set[int]:
        """Everything read: answer ∪ extra ∪ consult."""
        return set(answer_tids) | self.extra_tids | self.consult_tids


def _cell_values(cell: Any) -> tuple[Any, ...]:
    """Values a cell contributes to the correlated-value sets."""
    if isinstance(cell, PValue):
        return cell.concrete_values()
    return (cell,)


def relax_fd(
    relation: Relation,
    answer_tids: Iterable[int],
    fd: FunctionalDependency,
    filter_side: FilterSide = FilterSide.LHS,
    counter: WorkCounter | None = None,
    max_iterations: int | None = None,
    skip_tids: set[int] | None = None,
    view: ColumnView | None = None,
) -> RelaxationResult:
    """Algorithm 1: SP query-result relaxation for one FD.

    ``filter_side`` selects the Lemma 1 single-pass behaviour (RHS) or the
    Lemma 2 transitive closure (LHS / BOTH / NONE — closure is the safe
    general case).  Work accounting mirrors the paper's cost analysis:
    every unvisited tuple inspected by a filter pass is charged as a scan.

    ``skip_tids`` are tuples already processed by this rule in earlier
    queries (the paper's incremental cost n − Σ_{j<i} q_j): they are
    excluded from the closure passes — sound, because every earlier scope
    was lhs-group-complete, so no unseen violation can hide behind a seen
    tuple — but still consulted in a final support pass so candidate
    probabilities stay identical to the offline result.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    answer = set(answer_tids)
    skip = (skip_tids or set()) - answer
    if view is not None:
        return _relax_fd_columnar(
            view, answer, skip, fd, filter_side, counter, max_iterations
        )
    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)

    def lhs_values_of(row: Row) -> tuple[tuple[Any, ...], ...]:
        per_attr = [_cell_values(row.values[i]) for i in lhs_idx]
        combos: list[tuple[Any, ...]] = [()]
        for values in per_attr:
            combos = [c + (v,) for c in combos for v in values]
        return tuple(combos)

    def rhs_values_of(row: Row) -> tuple[Any, ...]:
        return _cell_values(row.values[rhs_idx])

    result_lhs: set[tuple[Any, ...]] = set()
    result_rhs: set[Any] = set()
    tid_rows = relation.tid_index()
    for tid in answer:
        row = tid_rows.get(tid)
        if row is None:
            continue
        result_lhs.update(lhs_values_of(row))
        result_rhs.update(rhs_values_of(row))

    unvisited: list[Row] = [
        r for r in relation.rows if r.tid not in answer and r.tid not in skip
    ]
    skipped_rows: list[Row] = (
        [r for r in relation.rows if r.tid in skip] if skip else []
    )
    result = RelaxationResult()

    def support_pass(rows: Iterable[Row]) -> None:
        """One pass collecting same-rhs tuples for P(lhs | rhs) support."""
        for row in rows:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(v in result_rhs for v in rhs_values_of(row)):
                result.consult_tids.add(row.tid)

    if filter_side is FilterSide.RHS:
        # Lemma 1: one iteration.  Pass 1 — same-lhs tuples join the repair
        # scope; pass 2 — same-rhs tuples against the *answer's* rhs values
        # are already in the answer (they satisfy the filter), so nothing new
        # is repaired.  The consultation pass collects same-rhs tuples of the
        # enlarged scope for P(lhs | rhs) computation.
        result.iterations = 1
        remaining: list[Row] = []
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(key in result_lhs for key in lhs_values_of(row)):
                result.extra_tids.add(row.tid)
                result_rhs.update(rhs_values_of(row))
            else:
                remaining.append(row)
        support_pass(remaining)
        support_pass(skipped_rows)
        return result

    # Transitive closure (lhs filter / general case).
    while True:
        if max_iterations is not None and result.iterations >= max_iterations:
            break
        result.iterations += 1
        added: list[Row] = []
        remaining = []
        # Pass 1: tuples sharing an lhs value with the (relaxed) result.
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(key in result_lhs for key in lhs_values_of(row)):
                added.append(row)
            else:
                remaining.append(row)
        unvisited = remaining
        # Pass 2: tuples sharing an rhs value with the (relaxed) result.
        remaining = []
        for row in unvisited:
            counter.charge_scan()
            result.scanned_tuples += 1
            if any(v in result_rhs for v in rhs_values_of(row)):
                added.append(row)
            else:
                remaining.append(row)
        unvisited = remaining
        if not added:
            break
        for row in added:
            result.extra_tids.add(row.tid)
            result_lhs.update(lhs_values_of(row))
            result_rhs.update(rhs_values_of(row))
    # Support pass over the skipped tuples: they cannot open new violations
    # (their groups were already checked) but their values still weight the
    # lhs-candidate probabilities of newly found errors.
    support_pass(skipped_rows)
    return result


# ---------------------------------------------------------------------------
# Columnar relaxation
# ---------------------------------------------------------------------------


class _FdCorrelationIndex:
    """Inverted correlated-value indexes of one FD over a column view.

    ``lhs_index`` maps every lhs value-combination to its row positions and
    ``rhs_index`` every rhs candidate value to its positions, so relaxation
    becomes index lookups over the frontier of newly discovered values
    instead of repeated full-table passes.  Cached on the view via
    :meth:`ColumnView.derived` and **patched positionally** when a repair
    touches one of the FD's attributes — only the repaired rows' entries
    are recomputed.
    """

    __slots__ = ("lhs", "rhs", "combos_of_pos", "rhs_of_pos", "lhs_index", "rhs_index")

    def __init__(self, view: ColumnView, fd: FunctionalDependency) -> None:
        self.lhs = tuple(fd.lhs)
        self.rhs = fd.rhs
        lhs_cols = [view.columns[a] for a in self.lhs]
        rhs_col = view.columns[self.rhs]
        n = len(view)
        self.combos_of_pos: list[tuple[tuple[Any, ...], ...]] = []
        self.rhs_of_pos: list[tuple[Any, ...]] = []
        self.lhs_index: dict[tuple[Any, ...], set[int]] = {}
        self.rhs_index: dict[Any, set[int]] = {}
        for pos in range(n):
            combos = _lhs_combos(lhs_cols, pos)
            self.combos_of_pos.append(combos)
            for combo in combos:
                self.lhs_index.setdefault(combo, set()).add(pos)
            rhs_values = _cell_values(rhs_col[pos])
            self.rhs_of_pos.append(rhs_values)
            for value in rhs_values:
                self.rhs_index.setdefault(value, set()).add(pos)

    def patched_for_view(
        self, view: ColumnView, touched: dict[str, list[int]]
    ) -> "_FdCorrelationIndex":
        """Copy-on-write refresh of the touched positions only."""
        clone = _FdCorrelationIndex.__new__(_FdCorrelationIndex)
        clone.lhs = self.lhs
        clone.rhs = self.rhs
        clone.combos_of_pos = list(self.combos_of_pos)
        clone.rhs_of_pos = list(self.rhs_of_pos)
        lhs_index = dict(self.lhs_index)
        rhs_index = dict(self.rhs_index)
        copied_lhs: set[Any] = set()
        copied_rhs: set[Any] = set()

        def lhs_entry(combo: tuple[Any, ...]) -> set[int]:
            if combo not in copied_lhs:
                copied_lhs.add(combo)
                lhs_index[combo] = set(lhs_index.get(combo, ()))
            return lhs_index[combo]

        def rhs_entry(value: Any) -> set[int]:
            if value not in copied_rhs:
                copied_rhs.add(value)
                rhs_index[value] = set(rhs_index.get(value, ()))
            return rhs_index[value]

        lhs_positions: set[int] = set()
        for attr in self.lhs:
            lhs_positions.update(touched.get(attr, ()))
        if lhs_positions:
            lhs_cols = [view.columns[a] for a in self.lhs]
            for pos in lhs_positions:
                for combo in clone.combos_of_pos[pos]:
                    lhs_entry(combo).discard(pos)
                combos = _lhs_combos(lhs_cols, pos)
                clone.combos_of_pos[pos] = combos
                for combo in combos:
                    lhs_entry(combo).add(pos)
        rhs_positions = touched.get(self.rhs, ())
        if rhs_positions:
            rhs_col = view.columns[self.rhs]
            for pos in rhs_positions:
                for value in clone.rhs_of_pos[pos]:
                    rhs_entry(value).discard(pos)
                rhs_values = _cell_values(rhs_col[pos])
                clone.rhs_of_pos[pos] = rhs_values
                for value in rhs_values:
                    rhs_entry(value).add(pos)
        clone.lhs_index = lhs_index
        clone.rhs_index = rhs_index
        return clone


def _lhs_combos(lhs_cols: list[list[Any]], pos: int) -> tuple[Any, ...]:
    """All lhs value combinations a row contributes (candidate product).

    Combination keys are opaque to the relaxation loops, so a single-attr
    lhs — the common case — contributes its raw candidate values instead of
    1-tuples (cheaper to build and hash).
    """
    if len(lhs_cols) == 1:
        cell = lhs_cols[0][pos]
        if isinstance(cell, PValue):
            return cell.concrete_values()
        return (cell,)
    acc: list[tuple[Any, ...]] = [()]
    for col in lhs_cols:
        values = _cell_values(col[pos])
        acc = [c + (v,) for c in acc for v in values]
    return tuple(acc)


def _relax_fd_columnar(
    view: ColumnView,
    answer: set[int],
    skip: set[int],
    fd: FunctionalDependency,
    filter_side: FilterSide,
    counter: WorkCounter,
    max_iterations: int | None,
) -> RelaxationResult:
    """Index-driven Algorithm 1 — same outputs as the row-store passes.

    The closure expands a *frontier* of newly discovered lhs/rhs values;
    an older value's positions were already claimed when it entered the
    frontier, so frontier-only lookups cover exactly what the row-store
    full passes would find.
    """
    index: _FdCorrelationIndex = view.derived(
        ("relax_fd", fd.lhs, fd.rhs),
        set(fd.lhs) | {fd.rhs},
        lambda: _FdCorrelationIndex(view, fd),
    )
    pos_map = view.pos_of_tid
    tids = view.tids
    result = RelaxationResult()
    answer_pos = {pos_map[t] for t in answer if t in pos_map}
    skip_pos = {pos_map[t] for t in skip if t in pos_map}

    result_lhs: set[tuple[Any, ...]] = set()
    result_rhs: set[Any] = set()
    for pos in answer_pos:
        result_lhs.update(index.combos_of_pos[pos])
        result_rhs.update(index.rhs_of_pos[pos])

    def charge(n: int) -> None:
        counter.charge_scan(n)
        result.scanned_tuples += n

    if filter_side is FilterSide.RHS:
        # Lemma 1: one iteration — same-lhs tuples join the repair scope,
        # then one support pass collects same-rhs tuples (skip included).
        result.iterations = 1
        extra_pos: set[int] = set()
        for combo in result_lhs:
            hits = index.lhs_index.get(combo)
            if hits:
                extra_pos |= hits
        extra_pos -= answer_pos
        extra_pos -= skip_pos
        charge(len(extra_pos))
        for pos in extra_pos:
            result.extra_tids.add(tids[pos])
            result_rhs.update(index.rhs_of_pos[pos])
        consult_pos: set[int] = set()
        for value in result_rhs:
            hits = index.rhs_index.get(value)
            if hits:
                consult_pos |= hits
        consult_pos -= answer_pos
        consult_pos -= extra_pos
        charge(len(consult_pos))
        result.consult_tids.update(tids[pos] for pos in consult_pos)
        return result

    # Transitive closure (lhs filter / general case).
    pool = set(range(len(tids)))
    pool -= answer_pos
    pool -= skip_pos
    frontier_lhs = set(result_lhs)
    frontier_rhs = set(result_rhs)
    while True:
        if max_iterations is not None and result.iterations >= max_iterations:
            break
        result.iterations += 1
        added: set[int] = set()
        # Pass 1: same-lhs tuples; pass 2: same-rhs tuples (both against the
        # value sets as of the round start, like the row-store passes).
        for combo in frontier_lhs:
            hits = index.lhs_index.get(combo)
            if hits:
                added |= hits & pool
        pool -= added
        for value in frontier_rhs:
            hits = index.rhs_index.get(value)
            if hits:
                added |= hits & pool
        pool -= added
        charge(len(added))
        if not added:
            break
        frontier_lhs = set()
        frontier_rhs = set()
        for pos in added:
            result.extra_tids.add(tids[pos])
            for combo in index.combos_of_pos[pos]:
                if combo not in result_lhs:
                    result_lhs.add(combo)
                    frontier_lhs.add(combo)
            for value in index.rhs_of_pos[pos]:
                if value not in result_rhs:
                    result_rhs.add(value)
                    frontier_rhs.add(value)

    # Support pass over the skipped tuples (candidate-probability weights).
    if skip_pos:
        charge(len(skip_pos))
        for value in result_rhs:
            for pos in index.rhs_index.get(value, ()):
                if pos in skip_pos:
                    result.consult_tids.add(tids[pos])
    return result


# ---------------------------------------------------------------------------
# Analytical estimators (Lemmas 1-3)
# ---------------------------------------------------------------------------


def iterations_needed_rhs_filter() -> int:
    """Lemma 1: one iteration suffices for a filter on the FD's rhs."""
    return 1


def extra_iteration_probability(
    dataset_size: int, violations: int, relaxed_size: int
) -> float:
    """Lemma 2: P(≥1 violation in a relaxed result of maximal size |AR|).

    Hypergeometric: 1 - C(#vio,0)·C(n-#vio,|AR|)/C(n,|AR|).
    """
    n, k, m = dataset_size, violations, relaxed_size
    if k <= 0 or m <= 0:
        return 0.0
    if m > n:
        m = n
    if k >= n:
        return 1.0
    if m > n - k:
        return 1.0
    log_p0 = _log_comb(n - k, m) - _log_comb(n, m)
    return 1.0 - math.exp(log_p0)


def _log_comb(n: int, k: int) -> float:
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def relaxed_size_upper_bound(
    dataset_freq: dict[str, dict[Any, int]],
    result_freq: dict[str, dict[Any, int]],
) -> int:
    """Lemma 3: upper bound on the relaxed-result growth per iteration.

    ``dataset_freq[attr][value]`` is the dataset-wide frequency of ``value``
    in constraint attribute ``attr``; ``result_freq`` the same over the query
    result.  The bound sums, per attribute, the dataset frequency mass of
    the result's values minus the mass already in the result:

        R = Σ_attr ( Σ_{v in result values} D[v] − Σ_{v} Dq[v] ).
    """
    total = 0
    for attr, rf in result_freq.items():
        df = dataset_freq.get(attr, {})
        dataset_mass = sum(df.get(value, 0) for value in rf)
        result_mass = sum(rf.values())
        total += max(0, dataset_mass - result_mass)
    return total


def frequency_distribution(
    relation: Relation, attr: str, tids: Iterable[int] | None = None
) -> dict[Any, int]:
    """Value frequencies of one attribute (over a tid subset if given)."""
    idx = relation.schema.index_of(attr)
    tid_filter = set(tids) if tids is not None else None
    out: dict[Any, int] = {}
    for row in relation.rows:
        if tid_filter is not None and row.tid not in tid_filter:
            continue
        for value in _cell_values(row.values[idx]):
            out[value] = out.get(value, 0) + 1
    return out


def estimate_relaxed_size(
    relation: Relation,
    answer_tids: Iterable[int],
    fd: FunctionalDependency,
) -> int:
    """Lemma 3 applied to a concrete query answer and FD."""
    answer = set(answer_tids)
    attrs = list(fd.lhs) + [fd.rhs]
    dataset_freq = {a: frequency_distribution(relation, a) for a in attrs}
    result_freq = {a: frequency_distribution(relation, a, answer) for a in attrs}
    return relaxed_size_upper_bound(dataset_freq, result_freq)
