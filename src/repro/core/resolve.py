"""Committing a probabilistic dataset back to a deterministic one.

Daisy leaves repaired cells probabilistic; Section 3 notes that once all
rules are known, the candidate suggestions can be resolved by *inference
when master data exist* or by a human.  This module provides the resolution
step as explicit, composable policies:

* :func:`resolve_most_probable` — each probabilistic cell takes its most
  probable candidate (the DaisyP policy).
* :func:`resolve_keep_original` — revert every repaired cell to its original
  value (undo, via the provenance store).
* :func:`resolve_with_master` — pick the candidate matching the master data
  when one exists, else fall back to most probable (the upper bound an
  oracle inference could reach given Daisy's domains).
* :func:`resolve_with` — bring-your-own ``chooser(tid, attr, pvalue)``
  callable, e.g. a human-in-the-loop prompt.

All functions return a *new* relation plus the repair map (cell -> chosen
value) so accuracy can be scored with :mod:`repro.metrics`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.probabilistic.value import PValue, ValueRange
from repro.relation.relation import Relation
from repro.repair.provenance import ProvenanceStore

Chooser = Callable[[int, str, PValue], Any]


def _concretize(value: Any) -> Any:
    """Turn a range candidate into a representative concrete value."""
    if isinstance(value, ValueRange):
        return value.midpoint()
    return value


def resolve_with(
    relation: Relation, chooser: Chooser
) -> tuple[Relation, dict[tuple[int, str], Any]]:
    """Resolve every probabilistic cell with a custom chooser."""
    updates: dict[tuple[int, str], Any] = {}
    for row in relation.rows:
        for attr, cell in zip(relation.schema.names, row.values):
            if isinstance(cell, PValue):
                chosen = _concretize(chooser(row.tid, attr, cell))
                updates[(row.tid, attr)] = chosen
    return relation.update_cells(updates, origin="resolve"), updates


def resolve_most_probable(
    relation: Relation,
) -> tuple[Relation, dict[tuple[int, str], Any]]:
    """The DaisyP policy: blindly take each cell's most probable candidate."""
    return resolve_with(relation, lambda _tid, _attr, pv: pv.most_probable())


def resolve_keep_original(
    relation: Relation, provenance: ProvenanceStore
) -> tuple[Relation, dict[tuple[int, str], Any]]:
    """Undo: every repaired cell reverts to its provenance original."""

    def choose(tid: int, attr: str, pv: PValue) -> Any:
        original = provenance.original(tid, attr)
        return original if original is not None else pv.most_probable()

    return resolve_with(relation, choose)


def resolve_with_master(
    relation: Relation, master: Relation
) -> tuple[Relation, dict[tuple[int, str], Any]]:
    """Oracle resolution: prefer the candidate equal to the master value.

    Cells whose candidate set does not contain the master value fall back to
    the most probable candidate — measuring this fallback rate tells how
    often Daisy's domains missed the truth.
    """
    master_rows = master.tid_index()

    def choose(tid: int, attr: str, pv: PValue) -> Any:
        row = master_rows.get(tid)
        if row is not None and attr in master.schema:
            truth = row.values[master.schema.index_of(attr)]
            for candidate in pv.candidates:
                if candidate.matches(truth):
                    return truth
        return pv.most_probable()

    return resolve_with(relation, choose)


def domain_coverage(relation: Relation, master: Relation) -> float:
    """Fraction of probabilistic cells whose candidates include the truth.

    The paper argues relaxation produces the "pruned domain of values that a
    system, or a user needs to infer the correct value"; this measures how
    often that domain actually covers it.
    """
    master_rows = master.tid_index()
    total = 0
    covered = 0
    for row in relation.rows:
        truth_row = master_rows.get(row.tid)
        if truth_row is None:
            continue
        for attr, cell in zip(relation.schema.names, row.values):
            if not isinstance(cell, PValue) or attr not in master.schema:
                continue
            total += 1
            truth = truth_row.values[master.schema.index_of(attr)]
            if any(c.matches(truth) for c in cell.candidates):
                covered += 1
    return covered / total if total else 1.0


def refine_probabilities(
    cell: PValue, evidence_counts: dict[Any, int], weight: float = 1.0
) -> PValue:
    """Update a cell's candidate probabilities with new frequency evidence.

    The paper's future-work direction ("updating the probabilities after
    accessing more data, thereby incrementally inferring the correct
    value"): existing candidate weights are combined with new evidence
    counts; unseen candidates keep their mass, candidates confirmed by
    evidence gain proportionally.  ``weight`` scales the evidence's
    influence relative to the prior.
    """
    from repro.probabilistic.value import Candidate

    total_evidence = sum(evidence_counts.values())
    if total_evidence <= 0:
        return cell
    raw = []
    for cand in cell.candidates:
        boost = evidence_counts.get(cand.value, 0) / total_evidence
        raw.append((cand, cand.prob + weight * boost))
    norm = sum(w for _c, w in raw)
    updated = [
        Candidate(value=c.value, prob=w / norm, world=c.world) for c, w in raw
    ]
    return PValue(updated)
