"""Mutable per-table cleaning state shared by the cleaning operators.

A :class:`TableState` bundles everything Daisy keeps per registered table:

* the current relation (gradually becoming probabilistic),
* the registered rules,
* the provenance store (original values + per-rule progress),
* precomputed statistics (dirty groups, ε/p estimates),
* one incremental theta-join matrix per general DC,
* the work counter that accumulates this table's cleaning cost.

The theta-join matrices are built once over the original data and keep their
checked-cell bookkeeping across queries; violation detection always reasons
about original values (via provenance), so the matrices stay valid as cells
turn probabilistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, as_dc, as_fd
from repro.core.statistics import FdStatistics, TableStatistics, build_fd_statistics
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.relation.columnview import BACKEND_COLUMNAR, ColumnView, validate_backend
from repro.relation.relation import Relation
from repro.repair.provenance import ProvenanceStore


def rule_key(rule: Rule) -> str:
    """A stable identifier for a rule (its name, else its string form)."""
    return rule.name or str(rule)


@dataclass
class TableState:
    """All cleaning state for one registered table."""

    relation: Relation
    rules: list[Rule] = field(default_factory=list)
    provenance: ProvenanceStore = field(default_factory=ProvenanceStore)
    statistics: TableStatistics = field(default_factory=TableStatistics)
    counter: WorkCounter = field(default_factory=WorkCounter)
    matrices: dict[str, ThetaJoinMatrix] = field(default_factory=dict)
    fully_cleaned_rules: set[str] = field(default_factory=set)
    sqrt_partitions: int = 8
    #: Per-rule tuples already processed (answers + relaxation extras) —
    #: the incremental-cost memory of Section 5.2.2 (n − Σ q_j).
    seen_tids: dict[str, set[int]] = field(default_factory=dict)
    #: Execution backend for the detection/cleaning hot path ("columnar"
    #: by default; "rowstore" is the per-Row semantics oracle).
    backend: str = BACKEND_COLUMNAR

    def __post_init__(self) -> None:
        validate_backend(self.backend)

    def column_view(self) -> Optional[ColumnView]:
        """The relation's columnar view, or None on the row-store backend."""
        if self.backend != BACKEND_COLUMNAR:
            return None
        return self.relation.column_view()

    # -- rule management -----------------------------------------------------------

    def add_rule(self, rule: Rule, precompute: bool = True) -> None:
        """Register a rule; optionally precompute its statistics/matrix."""
        self.rules.append(rule)
        if not precompute:
            return
        fd = as_fd(rule)
        if fd is not None:
            stats = build_fd_statistics(self.relation, fd, counter=self.counter)
            self.statistics.add(rule_key(rule), stats)
        else:
            dc = as_dc(rule)
            self.matrices[rule_key(rule)] = ThetaJoinMatrix(
                self.relation, dc, sqrt_p=self.sqrt_partitions,
                counter=self.counter, backend=self.backend,
            )

    def fd_rules(self) -> list[FunctionalDependency]:
        return [fd for rule in self.rules if (fd := as_fd(rule)) is not None]

    def dc_rules(self) -> list[DenialConstraint]:
        return [as_dc(rule) for rule in self.rules if as_fd(rule) is None]

    def fd_stats(self, rule: Rule) -> Optional[FdStatistics]:
        return self.statistics.get(rule_key(rule))

    def matrix_for(self, dc: DenialConstraint) -> ThetaJoinMatrix:
        key = rule_key(dc)
        if key not in self.matrices:
            self.matrices[key] = ThetaJoinMatrix(
                self.relation, dc, sqrt_p=self.sqrt_partitions,
                counter=self.counter, backend=self.backend,
            )
        return self.matrices[key]

    def seen_for(self, rule: Rule) -> set[int]:
        """Tuples already processed by ``rule`` in earlier queries."""
        return self.seen_tids.setdefault(rule_key(rule), set())

    def mark_seen(self, rule: Rule, tids: set[int]) -> None:
        self.seen_tids.setdefault(rule_key(rule), set()).update(tids)

    def is_fully_cleaned(self, rule: Rule) -> bool:
        return rule_key(rule) in self.fully_cleaned_rules

    def mark_fully_cleaned(self, rule: Rule) -> None:
        self.fully_cleaned_rules.add(rule_key(rule))

    # -- updates ---------------------------------------------------------------------

    def replace_relation(self, relation: Relation) -> None:
        """Install an updated relation (after applying a repair delta)."""
        self.relation = relation

    def probabilistic_cells(self) -> int:
        return self.relation.probabilistic_cell_count()
