"""Mutable per-table cleaning state shared by the cleaning operators.

A :class:`TableState` bundles everything Daisy keeps per registered table:

* the current relation (gradually becoming probabilistic),
* the registered rules,
* the provenance store (original values + per-rule progress),
* precomputed statistics (dirty groups, ε/p estimates),
* one incremental theta-join matrix per general DC,
* the work counter that accumulates this table's cleaning cost.

The theta-join matrices are built once over the original data and keep their
checked-cell bookkeeping across queries; violation detection always reasons
about original values (via provenance), so the matrices stay valid as cells
turn probabilistic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.constraints.analysis import rule_attributes
from repro.constraints.dc import DenialConstraint, FunctionalDependency, Rule, as_dc, as_fd
from repro._ownership import session_owned, shared_engine_state
from repro.core.statistics import FdStatistics, TableStatistics, build_fd_statistics
from repro.detection.maintenance import (
    MaintenancePolicy,
    MaintenanceReport,
    sync_matrix,
)
from repro.detection.thetajoin import ThetaJoinMatrix
from repro.engine.stats import WorkCounter
from repro.relation.columnview import (
    BACKEND_COLUMNAR,
    PATCH_DATA,
    ColumnView,
    validate_backend,
)
from repro.relation.kernels import (
    COLUMN_AUTO,
    resolve_column_backend,
    validate_column_backend,
)
from repro.relation.relation import Relation, Row
from repro.repair.provenance import ProvenanceStore
from repro.storage.modes import (
    STORAGE_AUTO,
    STORAGE_MEMORY,
    resolve_storage_mode,
    validate_storage_mode,
)
from repro.storage.provider import TableStorage


#: Pending patch batches tolerated before lagging matrices are force-synced
#: (bounds the patch log on long-running evolving-data engines).
_PATCH_LOG_SOFT_LIMIT = 64

#: Maintenance reports retained for introspection.
_MAINTENANCE_LOG_LIMIT = 256


def rule_key(rule: Rule) -> str:
    """A stable identifier for a rule (its name, else its string form)."""
    return rule.name or str(rule)


@session_owned
@dataclass
class UpdateReport:
    """What one external update (:meth:`TableState.apply_updates`) did."""

    epoch: int = 0
    cells_requested: int = 0
    cells_applied: int = 0
    attrs_touched: set[str] = field(default_factory=set)
    rules_invalidated: list[str] = field(default_factory=list)
    stats_rebuilt: list[str] = field(default_factory=list)
    provenance_forgotten: int = 0


@shared_engine_state
@dataclass
class TableState:
    """All cleaning state for one registered table.

    One TableState serves every session connected to the engine, so every
    mutable attribute declares its synchronization seam below — the only
    functions allowed to write it post-construction.  The service tier
    serializes entry into these seams (single writer per table); daisylint
    DL101 enforces the seams statically and the race witness
    (``diagnostics="witness"``) validates them at runtime.
    """

    MUTATED_UNDER = {
        "relation": ("TableState.replace_relation",),
        "matrices": ("TableState.add_rule", "TableState.matrix_for"),
        "matrix_epochs": (
            "TableState.add_rule",
            "TableState.matrix_for",
            "TableState._sync_matrix",
        ),
        "maintenance_log": ("TableState._sync_matrix",),
        "patch_log": ("TableState.apply_updates", "TableState._trim_patch_log"),
        "data_epoch": ("TableState.apply_updates",),
        "write_in_progress": ("TableState.apply_updates",),
        # ``seen_for`` hands out the live set (a declared mutating
        # accessor), so its callers are part of the seam.
        "seen_tids": (
            "TableState.mark_seen",
            "_clean_sigma_fd",
            "parallel_relax_fd",
        ),
        "fully_cleaned_rules": (
            "TableState.mark_fully_cleaned",
            "TableState.apply_updates",
        ),
        "column_backend": ("TableState.pin_column_backend",),
        "storage": ("TableState.pin_storage",),
        "storage_provider": ("TableState._ensure_storage", "Daisy.close"),
        "rules": ("TableState.add_rule",),
        "statistics": ("TableState.add_rule",),
        "provenance": ("TableState.apply_updates",),
    }
    #: ``seen_for`` hands back the live per-rule seen-tid set; callers
    #: mutate ``seen_tids`` through that alias.
    MUTATING_ACCESSORS = {"seen_for": "seen_tids"}

    relation: Relation
    rules: list[Rule] = field(default_factory=list)
    provenance: ProvenanceStore = field(default_factory=ProvenanceStore)
    statistics: TableStatistics = field(default_factory=TableStatistics)
    counter: WorkCounter = field(default_factory=WorkCounter)
    matrices: dict[str, ThetaJoinMatrix] = field(default_factory=dict)
    fully_cleaned_rules: set[str] = field(default_factory=set)
    sqrt_partitions: int = 8
    #: Per-rule tuples already processed (answers + relaxation extras) —
    #: the incremental-cost memory of Section 5.2.2 (n − Σ q_j).
    seen_tids: dict[str, set[int]] = field(default_factory=dict)
    #: Execution backend for the detection/cleaning hot path ("columnar"
    #: by default; "rowstore" is the per-Row semantics oracle).
    backend: str = BACKEND_COLUMNAR
    #: Kernel backend for columnar index construction / grouping / scans:
    #: "numpy", "python", or "auto" (resolved per access on the table's
    #: row count; a connecting session's planner may pin it).  Data-scoped
    #: like :attr:`backend`; every choice is byte-identical in results.
    column_backend: str = COLUMN_AUTO
    #: Patch-vs-rebuild policy for incremental matrix maintenance.
    maintenance: MaintenancePolicy = field(default_factory=MaintenancePolicy)
    #: Storage mode for this table's columns: "memory" (default), "mmap",
    #: "sqlite", or "auto" (resolved statically per access on the table's
    #: size/budget; a connecting session's planner may pin it).  Data-
    #: scoped like :attr:`backend`; every mode is byte-identical in results.
    storage: str = STORAGE_MEMORY
    #: Resident-column budget (MiB) for the spill modes; 0 = unlimited.
    memory_budget_mb: int = 0
    #: Factory for this table's :class:`~repro.storage.provider.TableStorage`
    #: (wired by the engine at registration; None = in-memory only).
    storage_factory: "Any | None" = None
    #: The attached per-table storage facade (created lazily on the first
    #: columnar view built under a spill mode).
    storage_provider: "TableStorage | None" = None
    #: Data epoch: bumped by every external update batch that changed a
    #: cell.  Mirrors the session plan cache's registration epoch, but for
    #: *data* — plans survive data updates, matrices and statistics do not.
    data_epoch: int = 0
    #: The table's pending patch stream: (epoch, applied updates) batches,
    #: trimmed once every matrix has synced past them.
    patch_log: list[tuple[int, dict[tuple[int, str], Any]]] = field(
        default_factory=list
    )
    #: Per-matrix synced data epoch (key: rule key).
    matrix_epochs: dict[str, int] = field(default_factory=dict)
    #: Maintenance actions taken so far (patch/rebuild decisions + stats).
    maintenance_log: list[MaintenanceReport] = field(default_factory=list)
    #: True while :meth:`apply_updates` is mid-flight: the relation / epoch /
    #: patch-log writes of one update batch are not yet all visible.  The
    #: service tier's snapshot pins (:mod:`repro.service.snapshot`) refuse to
    #: pin — and fail verification — while this is set, turning a torn read
    #: (a reader racing into the middle of an update) into a hard
    #: ``SnapshotViolation`` instead of silently inconsistent answers.
    write_in_progress: bool = False

    def __post_init__(self) -> None:
        validate_backend(self.backend)
        validate_column_backend(self.column_backend)
        validate_storage_mode(self.storage)

    def resolved_column_backend(self) -> str:
        """The concrete kernel backend ("numpy" or "python") for this table.

        ``auto`` resolves statically on the row count (the planner-priced
        resolution in :meth:`pin_column_backend` may have replaced it with
        a concrete choice at session connect); ``numpy`` degrades to
        ``python`` when NumPy is absent.
        """
        return resolve_column_backend(
            self.column_backend, len(self.relation.rows)
        )

    def pin_column_backend(self, choice: str) -> None:
        """Replace an ``auto`` knob with a planner-priced concrete choice.

        Called by the first :class:`repro.api.Session` to connect; a no-op
        once the backend is concrete (data-scoped, like :attr:`backend`).
        Matrices built before the pin keep their resolved backend — both
        backends are byte-identical, so mixing costs nothing but speed.
        """
        if self.column_backend == COLUMN_AUTO:
            self.column_backend = validate_column_backend(choice)

    def resolved_storage(self) -> str:
        """The concrete storage mode for this table.

        ``auto`` resolves statically on the table's size and budget (the
        planner-priced resolution in :meth:`pin_storage` may have replaced
        it with a concrete choice at session connect).
        """
        return resolve_storage_mode(
            self.storage,
            len(self.relation.rows),
            len(self.relation.schema.names),
            self.memory_budget_mb,
            theta_rules=bool(self.dc_rules()),
        )

    def pin_storage(self, choice: str) -> None:
        """Replace an ``auto`` storage knob with a planner-priced choice.

        Called by the first :class:`repro.api.Session` to connect; a no-op
        once the mode is concrete (data-scoped, like :attr:`backend`).
        All modes are byte-identical in results, so pinning moves only
        where the bytes live.
        """
        if self.storage == STORAGE_AUTO:
            self.storage = validate_storage_mode(choice)

    def column_view(self) -> ColumnView | None:
        """The relation's columnar view, or None on the row-store backend."""
        if self.backend != BACKEND_COLUMNAR:
            return None
        view = self.relation.column_view()
        view.column_backend = self.resolved_column_backend()
        self._ensure_storage(view)
        return view

    def _ensure_storage(self, view: ColumnView) -> None:
        """Attach the spill/pushdown storage to a view (spill modes only).

        Lazy and idempotent: the facade is created on the first columnar
        view built under a spill mode, re-attaches after a cold rebuild
        (row churn produces a plain-dict view), and leaves patched
        descendants — which already carry storage-backed columns — alone.
        """
        mode = self.resolved_storage()
        if mode == STORAGE_MEMORY or self.storage_factory is None:
            return
        if self.storage_provider is None:
            self.storage_provider = self.storage_factory(mode)
        self.storage_provider.ensure_attached(view)

    # -- rule management -----------------------------------------------------------

    def add_rule(self, rule: Rule, precompute: bool = True) -> None:
        """Register a rule; optionally precompute its statistics/matrix."""
        self.rules.append(rule)
        if not precompute:
            return
        fd = as_fd(rule)
        if fd is not None:
            stats = build_fd_statistics(self.relation, fd, counter=self.counter)
            self.statistics.add(rule_key(rule), stats)
        else:
            dc = as_dc(rule)
            self.column_view()  # attach storage before the matrix snapshots
            self.matrices[rule_key(rule)] = ThetaJoinMatrix(
                self.relation, dc, sqrt_p=self.sqrt_partitions,
                counter=self.counter, backend=self.backend,
                column_backend=self.resolved_column_backend(),
                storage=self.storage_provider,
            )
            self.matrix_epochs[rule_key(rule)] = self.data_epoch

    def fd_rules(self) -> list[FunctionalDependency]:
        return [fd for rule in self.rules if (fd := as_fd(rule)) is not None]

    def dc_rules(self) -> list[DenialConstraint]:
        return [as_dc(rule) for rule in self.rules if as_fd(rule) is None]

    def fd_stats(self, rule: Rule) -> FdStatistics | None:
        return self.statistics.get(rule_key(rule))

    def matrix_for(self, dc: DenialConstraint) -> ThetaJoinMatrix:
        """The (lazily built, lazily synced) matrix of one DC.

        A matrix built before external updates is brought up to date here by
        replaying the coalesced pending patch batches through
        :func:`repro.detection.maintenance.sync_matrix` — the patch-vs-
        rebuild decision and its outcome land in :attr:`maintenance_log`.
        """
        key = rule_key(dc)
        matrix = self.matrices.get(key)
        if matrix is None:
            self.column_view()  # attach storage before the matrix snapshots
            matrix = ThetaJoinMatrix(
                self.relation, dc, sqrt_p=self.sqrt_partitions,
                counter=self.counter, backend=self.backend,
                column_backend=self.resolved_column_backend(),
                storage=self.storage_provider,
            )
            self.matrices[key] = matrix
            self.matrix_epochs[key] = self.data_epoch
            return matrix
        self._sync_matrix(key, matrix)
        return matrix

    def _sync_matrix(self, key: str, matrix: ThetaJoinMatrix) -> None:
        synced = self.matrix_epochs.get(key, 0)
        if synced >= self.data_epoch:
            return
        merged: dict[tuple[int, str], Any] = {}
        for epoch, updates in self.patch_log:
            if epoch > synced:
                merged.update(updates)
        report = sync_matrix(matrix, merged, policy=self.maintenance)
        report.rule = key
        report.epoch = self.data_epoch
        self.matrix_epochs[key] = self.data_epoch
        self.maintenance_log.append(report)
        if len(self.maintenance_log) > _MAINTENANCE_LOG_LIMIT:
            del self.maintenance_log[:-_MAINTENANCE_LOG_LIMIT]
        self._trim_patch_log()

    def _trim_patch_log(self) -> None:
        """Drop patch batches every existing matrix has synced past."""
        if not self.patch_log:
            return
        if not self.matrices:
            self.patch_log.clear()
            return
        floor = min(self.matrix_epochs.get(k, 0) for k in self.matrices)
        self.patch_log = [e for e in self.patch_log if e[0] > floor]

    def seen_for(self, rule: Rule) -> set[int]:
        """Tuples already processed by ``rule`` in earlier queries."""
        return self.seen_tids.setdefault(rule_key(rule), set())

    def mark_seen(self, rule: Rule, tids: set[int]) -> None:
        self.seen_tids.setdefault(rule_key(rule), set()).update(tids)

    def is_fully_cleaned(self, rule: Rule) -> bool:
        return rule_key(rule) in self.fully_cleaned_rules

    def mark_fully_cleaned(self, rule: Rule) -> None:
        self.fully_cleaned_rules.add(rule_key(rule))

    # -- updates ---------------------------------------------------------------------

    def replace_relation(self, relation: Relation) -> None:
        """Install an updated relation (after applying a repair delta)."""
        self.relation = relation

    def apply_updates(
        self, updates: dict[tuple[int, str], Any]
    ) -> UpdateReport:
        """Apply an *external* cell-update batch (the data itself evolved).

        Unlike the repair path — whose rewrites keep the matrices valid via
        provenance — an external update changes ground truth, so every
        cache derived from the old values must be patched or invalidated:

        * the relation (and its columnar view, patched positionally) is
          replaced; the applied batch is emitted on the view's patch stream
          (:meth:`ColumnView.subscribe` observers see an origin-tagged
          :class:`PatchBatch`) and appended to :attr:`patch_log` under a
          fresh :attr:`data_epoch`;
        * theta-join matrices sync lazily on next :meth:`matrix_for` —
          re-sorting only touched stripes and invalidating only affected
          cells (or rebuilding, per the maintenance policy);
        * FD statistics of rules mentioning a touched attribute are rebuilt
          and those rules lose their fully-cleaned flag, their checked-group
          marks, and the touched tids from their seen sets;
        * provenance originals of the updated cells are forgotten (the new
          cell is the new ground truth).

        Updates addressing absent tids are ignored, mirroring
        ``Relation.update_cells``.
        """
        report = UpdateReport(
            epoch=self.data_epoch, cells_requested=len(updates)
        )
        if not updates:
            return report

        # Drop updates that do not change the cell (same-value re-sends are
        # common in idempotent upsert streams) and updates addressing absent
        # tids — mirroring Relation.cell_diff, so the cell form and the row
        # form (:meth:`apply_row_updates`) invalidate identically.  One
        # exception: an update to a *repaired* cell always applies, even
        # when it re-sends the current value — the external source is
        # confirming the repair as ground truth, which must still forget
        # the (now obsolete) provenance original and advance the matrices'
        # source snapshots.
        applied = self.relation.changed_cells(updates)
        present = (
            self.relation._colview.pos_of_tid
            if self.relation._colview is not None
            else self.relation.tid_index()
        )
        for (tid, attr), value in updates.items():
            key = (tid, attr)
            if key not in applied and tid in present and (
                self.provenance.is_repaired(tid, attr)
            ):
                applied[key] = value
        if not applied:
            return report

        # The mutating tail below replaces the relation, bumps the epoch,
        # appends to the patch log and invalidates derived state — several
        # writes a concurrent reader must see all-or-nothing.  The marker
        # lets snapshot pins detect (and refuse) a torn read of the middle.
        self.write_in_progress = True
        try:
            # Columnar backend: make sure the view exists *before* the update
            # so update_cells patches it positionally (preserving shared
            # indexes) and the patch batch is emitted for stream subscribers.
            self.column_view()
            updated = self.relation.update_cells(applied, origin=PATCH_DATA)
            self.replace_relation(updated)
            report.cells_applied = len(applied)

            self.data_epoch += 1
            report.epoch = self.data_epoch
            self.patch_log.append((self.data_epoch, applied))
            if len(self.patch_log) > _PATCH_LOG_SOFT_LIMIT:
                # A matrix nobody queries anymore would pin the log forever;
                # sync every matrix now so the log trims back to empty.
                for key, matrix in self.matrices.items():
                    self._sync_matrix(key, matrix)
            report.attrs_touched = {attr for (_tid, attr) in applied}

            for tid, attr in applied:
                if self.provenance.is_repaired(tid, attr):
                    self.provenance.forget_cell(tid, attr)
                    report.provenance_forgotten += 1

            for rule in self.rules:
                attrs = rule_attributes(rule)
                if not (attrs & report.attrs_touched):
                    continue
                key = rule_key(rule)
                report.rules_invalidated.append(key)
                touched_tids = {
                    tid for (tid, attr) in applied if attr in attrs
                }
                seen = self.seen_tids.get(key)
                if seen:
                    seen -= touched_tids
                self.fully_cleaned_rules.discard(key)
                # Conservative: checked-group marks may cover groups the
                # update rewired; forget them all rather than track keys.
                self.provenance.reset_rule(key)
                fd = as_fd(rule)
                if fd is not None:
                    self.statistics.add(
                        key,
                        build_fd_statistics(updated, fd, counter=self.counter),
                    )
                    report.stats_rebuilt.append(key)
            self._trim_patch_log()
        finally:
            self.write_in_progress = False
        return report

    def apply_row_updates(self, delta: dict[int, Row]) -> UpdateReport:
        """Apply an external row-replacement batch (``tid -> new Row``).

        Reduced to the cell diff the delta amounts to, then handled exactly
        like :meth:`apply_updates` — the patch stream always carries
        ``(tid, attr) -> value`` batches.  A replacement row asserts *every*
        cell as ground truth, so repaired cells it merely confirms are kept
        in the batch even though their value matches — the cell form and
        the row form must invalidate identically (apply_updates has the
        same repaired-cell exception for the cell form).
        """
        updates = self.relation.cell_diff(delta)
        names = self.relation.schema.names
        for tid, row in delta.items():
            if len(row.values) != len(names):
                continue  # absent tid with malformed row: cell_diff skipped it
            for attr, value in zip(names, row.values):
                key = (tid, attr)
                if key not in updates and self.provenance.is_repaired(tid, attr):
                    updates[key] = value
        return self.apply_updates(updates)

    def probabilistic_cells(self) -> int:
        return self.relation.probabilistic_cell_count()
