"""Precomputed statistics for pruning and cost estimation (Section 6).

Daisy "collects statistics by pre-computing the size of the erroneous
groups": a group-by on each FD's lhs yields, per lhs key, the group size and
whether it is dirty (holds conflicting rhs values).  At query time these
statistics serve two purposes:

* **pruning** — values belonging to clean groups skip violation checks
  entirely (the Fig. 9 optimization);
* **cost-model inputs** — ε (erroneous entities) and p (candidate values per
  erroneous cell) estimates for the incremental-vs-full inequality of
  Section 5.2.3, approximated by grouping on the FD's lhs and rhs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation.relation import Relation
from repro._ownership import shared_engine_state


@shared_engine_state
@dataclass
class FdStatistics:
    """Per-FD statistics precomputed over a relation.

    Write-once-by-builder: :func:`build_fd_statistics` populates every
    table in its single construction pass (and in rebuilds after external
    updates, which run under the table's update seam); afterwards the
    object is read-only for all sessions.
    """

    MUTATED_UNDER = {
        "group_sizes": ("build_fd_statistics",),
        "dirty_groups": ("build_fd_statistics",),
        "rhs_fanout": ("build_fd_statistics",),
        "dirty_rhs_values": ("build_fd_statistics",),
        "_distinct_rhs": ("build_fd_statistics",),
    }

    fd: FunctionalDependency
    #: lhs key -> group size
    group_sizes: dict[tuple[Any, ...], int] = field(default_factory=dict)
    #: lhs keys whose group has more than one distinct rhs value
    dirty_groups: set[tuple[Any, ...]] = field(default_factory=set)
    #: rhs value -> number of distinct lhs keys co-occurring with it
    rhs_fanout: dict[Any, int] = field(default_factory=dict)
    #: rhs values that appear in at least one dirty group (for rhs-filter
    #: pruning: a query answer touching none of these needs no cleaning)
    dirty_rhs_values: set[Any] = field(default_factory=set)

    def erroneous_entities(self) -> int:
        """ε estimate: number of tuples in dirty groups."""
        return sum(self.group_sizes[k] for k in self.dirty_groups)

    def dirty_group_count(self) -> int:
        return len(self.dirty_groups)

    def candidate_count_estimate(self) -> float:
        """p estimate: average candidate values per erroneous cell.

        Candidates for a dirty rhs come from the distinct rhs values of its
        group; candidates for a dirty lhs come from the lhs fanout of its
        rhs.  We average both directions over dirty groups.
        """
        if not self.dirty_groups:
            return 1.0
        rhs_cands = []
        for key in self.dirty_groups:
            rhs_cands.append(self._distinct_rhs.get(key, 1))
        lhs_cands = [max(1, f) for f in self.rhs_fanout.values()] or [1]
        avg_rhs = sum(rhs_cands) / len(rhs_cands)
        avg_lhs = sum(lhs_cands) / len(lhs_cands)
        return (avg_rhs + avg_lhs) / 2.0

    def is_dirty_key(self, key: tuple[Any, ...]) -> bool:
        return key in self.dirty_groups

    # internal: distinct rhs count per lhs key (set during build)
    _distinct_rhs: dict[tuple[Any, ...], int] = field(default_factory=dict)


def build_fd_statistics(
    relation: Relation,
    fd: FunctionalDependency,
    counter: WorkCounter | None = None,
) -> FdStatistics:
    """One pass over the relation to build :class:`FdStatistics`."""
    counter = counter if counter is not None else GLOBAL_COUNTER
    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)

    stats = FdStatistics(fd=fd)
    group_rhs: dict[tuple[Any, ...], set[Any]] = {}
    rhs_lhs: dict[Any, set[tuple[Any, ...]]] = {}
    for row in relation.rows:
        counter.charge_scan()
        key = tuple(
            row.values[i].most_probable()
            if isinstance(row.values[i], PValue)
            else row.values[i]
            for i in lhs_idx
        )
        rhs_cell = row.values[rhs_idx]
        rhs = rhs_cell.most_probable() if isinstance(rhs_cell, PValue) else rhs_cell
        stats.group_sizes[key] = stats.group_sizes.get(key, 0) + 1
        group_rhs.setdefault(key, set()).add(rhs)
        rhs_lhs.setdefault(rhs, set()).add(key)

    for key, rhs_values in group_rhs.items():
        stats._distinct_rhs[key] = len(rhs_values)
        if len(rhs_values) > 1:
            stats.dirty_groups.add(key)
            stats.dirty_rhs_values.update(rhs_values)
    stats.rhs_fanout = {rhs: len(keys) for rhs, keys in rhs_lhs.items()}
    return stats


@shared_engine_state
@dataclass
class TableStatistics:
    """Statistics for all FDs registered on one table.

    Grows only through :meth:`add`, which the engine calls from its
    registration seam (``TableState.add_rule``) and from post-update
    statistics rebuilds — both single-writer by the service tier.
    """

    MUTATED_UNDER = {"per_fd": ("TableStatistics.add",)}

    per_fd: dict[str, FdStatistics] = field(default_factory=dict)

    def add(self, name: str, stats: FdStatistics) -> None:
        self.per_fd[name] = stats

    def get(self, name: str) -> FdStatistics | None:
        return self.per_fd.get(name)

    def total_erroneous(self) -> int:
        return sum(s.erroneous_entities() for s in self.per_fd.values())

    def max_candidate_estimate(self) -> float:
        if not self.per_fd:
            return 1.0
        return max(s.candidate_count_estimate() for s in self.per_fd.values())
