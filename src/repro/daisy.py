"""Daisy — the query-driven cleaning engine (Section 6).

The engine object owns the *data-scoped* state: registered tables (with
their rules, provenance, statistics, and theta-join matrices) and the
planner catalog.  Everything *workload-scoped* — the query log, cost-model
observations, prepared queries, batching — lives on a
:class:`repro.api.Session` obtained via :meth:`Daisy.connect`:

    daisy = Daisy()
    daisy.register_table("cities", relation)
    daisy.add_rule("cities", "zip -> city")
    with daisy.connect() as session:
        result = session.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")
        batch = session.execute_batch(queries)   # rule-sharing batched execution

``Daisy(use_cost_model=False)`` gives the always-incremental variant the
paper calls "Daisy w/o cost".

The pre-session entry points (``Daisy.execute`` / ``Daisy.execute_workload``
and the ``query_log`` / ``cost_models`` attributes) remain as deprecated
shims that delegate to an implicit default session, so existing callers
keep working unchanged.
"""

from __future__ import annotations

import warnings
from typing import Any, Iterable, Sequence

from repro.api.config import DaisyConfig
from repro.api.reporting import QueryLogEntry, WorkloadReport  # noqa: F401 - re-export
from repro.api.session import Session
from repro.constraints.dc import Rule
from repro.constraints.parser import parse_rule
from repro.core.costmodel import CostModel
from repro._ownership import shared_engine_state
from repro.core.operators import CleanReport
from repro.core.state import TableState, UpdateReport
from repro.detection.maintenance import MaintenancePolicy
from repro.engine.stats import WorkCounter
from repro.errors import PlanError
from repro.parallel.pool import POOL_THREAD
from repro.query.ast import Query
from repro.query.executor import QueryResult
from repro.query.planner import PlannerCatalog
from repro.query.sql import parse_sql
from repro.relation.columnview import BACKEND_COLUMNAR
from repro.relation.relation import Relation, Row
from repro.storage import StorageManager
from repro.storage.modes import STORAGE_MEMORY

__all__ = ["Daisy", "QueryLogEntry", "WorkloadReport"]


@shared_engine_state
class Daisy:
    """Query-driven incremental cleaning engine.

    Constructor keywords mirror :class:`repro.api.DaisyConfig` (pass
    ``config=`` directly to share one validated config object between
    engines/sessions).

    Parameters
    ----------
    use_cost_model:
        Enable the Section 5.2.3 strategy switch.  Disabled, Daisy always
        cleans incrementally ("Daisy w/o cost" in Fig. 7).
    expected_queries:
        The workload-length hint the cost model projects over.
    dc_error_threshold:
        Algorithm 2 threshold for escalating a DC query to full cleaning.
    backend:
        Execution backend for the detection/cleaning hot path:
        ``"columnar"`` (default) or ``"rowstore"`` (the per-Row semantics
        oracle — both return identical results).
    parallelism / num_shards / pool:
        Sharded parallel execution knobs (see :class:`~repro.api.DaisyConfig`
        and :mod:`repro.parallel`): sessions with ``parallelism > 1`` fan
        theta-join cells and shard-routed FD relaxations out over a
        session-owned worker pool; ``parallelism="auto"`` lets the session's
        :class:`~repro.core.AdaptivePlanner` pick pool kind, worker count,
        and shard count per pass from estimated work.  Results stay
        byte-identical to serial either way.
    batch_strategy:
        Per-rule-group arbitration for :meth:`Session.execute_batch`:
        ``"shared"`` (default), ``"sequential"``, or ``"auto"`` (the
        planner prices "shared pass now" vs "incremental per query").
    config:
        A ready :class:`~repro.api.DaisyConfig`; overrides the loose
        keywords when given.
    """

    #: The engine is the root of all shared state: every connected session
    #: reaches the same table states through it.  Registration-time writes
    #: are the only post-construction mutations.
    MUTATED_UNDER = {
        "states": ("Daisy.register_table",),
        "registration_version": ("Daisy.register_table", "Daisy.add_rule"),
        "table_versions": ("Daisy.register_table", "Daisy.add_rule"),
        "_default_session": ("Daisy.default_session",),
        "_witness_active": ("Daisy.close",),
    }

    def __init__(
        self,
        use_cost_model: bool = True,
        expected_queries: int = 50,
        dc_error_threshold: float = 0.2,
        backend: str = BACKEND_COLUMNAR,
        parallelism: "int | str" = 1,
        num_shards: int = 0,
        pool: str = POOL_THREAD,
        batch_strategy: str = "shared",
        storage: str = STORAGE_MEMORY,
        memory_budget_mb: int = 0,
        diagnostics: str = "none",
        config: DaisyConfig | None = None,
    ):
        if config is None:
            config = DaisyConfig(
                use_cost_model=use_cost_model,
                expected_queries=expected_queries,
                dc_error_threshold=dc_error_threshold,
                backend=backend,
                parallelism=parallelism,
                num_shards=num_shards,
                pool=pool,
                batch_strategy=batch_strategy,
                storage=storage,
                memory_budget_mb=memory_budget_mb,
                diagnostics=diagnostics,
            )
        self.config = config
        self._witness_active = False
        #: All spilled state (stripe files, SQLite mirrors) of this engine;
        #: sessions release its OS handles on close, :meth:`close` deletes it.
        self.storage_manager = StorageManager()
        self.states: dict[str, TableState] = {}
        self.catalog = PlannerCatalog()
        #: Bumped on every registration; prepared queries use it to refresh
        #: stale plans.
        self.registration_version = 0
        #: Per-table registration versions; sessions rebuild only the
        #: affected table's cost model (matching the old per-add_rule
        #: refresh, without discarding other tables' observations).
        self.table_versions: dict[str, int] = {}
        self._default_session: Session | None = None
        if config.diagnostics == "witness":
            # Activated last: the witness wraps every annotated class's
            # methods, and this engine's own construction writes must land
            # before instrumentation begins.
            from repro.diagnostics import global_witness

            global_witness().activate()
            self._witness_active = True

    # -- config passthroughs (kept for API stability) -----------------------------------

    @property
    def use_cost_model(self) -> bool:
        return self.config.use_cost_model

    @property
    def expected_queries(self) -> int:
        return self.config.expected_queries

    @property
    def dc_error_threshold(self) -> float:
        return self.config.dc_error_threshold

    @property
    def backend(self) -> str:
        return self.config.backend

    # -- sessions ------------------------------------------------------------------------

    def connect(self, config: DaisyConfig | None = None) -> Session:
        """Open a new :class:`~repro.api.Session` over this engine's tables.

        ``config`` overrides the engine's default config for this session
        only (e.g. ``daisy.connect(daisy.config.replace(use_cost_model=False))``).
        The ``backend`` field is the one data-scoped knob in the config —
        it is baked into every table's state at registration time — so a
        session config with a different backend is rejected rather than
        silently ignored.
        """
        if config is not None and config.backend != self.config.backend:
            raise ValueError(
                f"session backend {config.backend!r} differs from the engine "
                f"backend {self.config.backend!r}; the backend is fixed at "
                "table registration — construct a separate Daisy for it"
            )
        if config is not None and config.column_backend != self.config.column_backend:
            raise ValueError(
                f"session column_backend {config.column_backend!r} differs from "
                f"the engine column_backend {self.config.column_backend!r}; the "
                "kernel backend is fixed at table registration — construct a "
                "separate Daisy for it"
            )
        if config is not None and config.storage != self.config.storage:
            raise ValueError(
                f"session storage {config.storage!r} differs from the engine "
                f"storage {self.config.storage!r}; the storage mode is fixed "
                "at table registration — construct a separate Daisy for it"
            )
        if config is not None and config.memory_budget_mb != self.config.memory_budget_mb:
            raise ValueError(
                f"session memory_budget_mb {config.memory_budget_mb!r} differs "
                f"from the engine memory_budget_mb "
                f"{self.config.memory_budget_mb!r}; the residency budget is "
                "fixed at table registration — construct a separate Daisy for it"
            )
        return Session(self, config)

    def default_session(self) -> Session:
        """The implicit session backing the deprecated ``execute`` shims."""
        if self._default_session is None or self._default_session.closed:
            self._default_session = Session(self, self.config)
        return self._default_session

    # -- registration ------------------------------------------------------------------

    def register_table(self, name: str, relation: Relation) -> TableState:
        """Register a (dirty) table.  Returns its mutable state."""
        relation.name = relation.name or name
        manager = self.storage_manager
        budget = self.config.memory_budget_mb
        state = TableState(
            relation=relation,
            backend=self.config.backend,
            column_backend=self.config.column_backend,
            maintenance=MaintenancePolicy(mode=self.config.matrix_maintenance),
            storage=self.config.storage,
            memory_budget_mb=budget,
            storage_factory=(
                lambda mode: manager.table_storage(name, mode, budget)
            ),
        )
        self.states[name] = state
        self.catalog.add_table(name, relation.schema)
        self.registration_version += 1
        self.table_versions[name] = self.registration_version
        return state

    def add_rule(self, table: str, rule: Rule | str, name: str = "") -> list[Rule]:
        """Register a rule (object or textual notation) on a table.

        Precomputes the rule's statistics (FDs) or theta-join matrix (DCs).
        Returns the registered rules (textual FDs with multi-attribute rhs
        decompose into several).
        """
        state = self._state(table)
        rules: list[Rule]
        if isinstance(rule, str):
            rules = parse_rule(rule, name=name)
        else:
            rules = [rule]
        for r in rules:
            state.add_rule(r)
            self.catalog.add_rule(table, r)
        self.registration_version += 1
        self.table_versions[table] = self.registration_version
        return rules

    def _state(self, table: str) -> TableState:
        try:
            return self.states[table]
        except KeyError:
            raise PlanError(f"table {table!r} is not registered") from None

    # -- external data updates -----------------------------------------------------------

    def update_table(
        self, table: str, updates: dict[tuple[int, str], Any]
    ) -> UpdateReport:
        """Apply external cell updates (``(tid, attr) -> value``) to a table.

        The ground truth evolved: the relation (and its columnar view) is
        patched in place, FD statistics and per-rule progress covering the
        touched attributes are invalidated, and each DC's theta-join matrix
        is brought up to date lazily — on its next use — by replaying the
        update off the ColumnView patch stream, re-sorting only touched
        stripes and invalidating only affected cells (see
        :mod:`repro.detection.maintenance` and the
        ``DaisyConfig.matrix_maintenance`` knob).  Bumps the table's data
        epoch (``TableState.data_epoch`` — the data analogue of the
        plan-cache registration epoch); cached plans survive (plans never
        depend on cell values), session cost models refresh.
        """
        return self._state(table).apply_updates(updates)

    def update_rows(self, table: str, rows: Iterable[Row]) -> UpdateReport:
        """Apply external row replacements (rows carry their tids).

        Reduced to the cell diff the replacement amounts to, then handled
        exactly like :meth:`update_table`.
        """
        return self._state(table).apply_row_updates(
            {row.tid: row for row in rows}
        )

    # -- deprecated execution shims ------------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Deprecated: use ``daisy.connect()`` and :meth:`Session.execute`."""
        warnings.warn(
            "Daisy.execute is deprecated; use Daisy.connect() and "
            "Session.execute (or Session.prepare / Session.execute_batch)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.default_session().execute(query)

    def execute_workload(self, queries: Sequence[Query | str]) -> WorkloadReport:
        """Deprecated: use :meth:`Session.execute_workload` or
        :meth:`Session.execute_batch` on a connected session."""
        warnings.warn(
            "Daisy.execute_workload is deprecated; use Daisy.connect() and "
            "Session.execute_workload (or Session.execute_batch for "
            "rule-sharing batched execution)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.default_session().execute_workload(queries)

    @property
    def query_log(self) -> list[QueryLogEntry]:
        """The default session's query log (deprecated shim surface)."""
        return self.default_session().query_log

    @property
    def cost_models(self) -> dict[str, CostModel]:
        """The default session's cost models (deprecated shim surface).

        The old attribute was populated at ``add_rule`` time; the session
        builds lazily, so the shim forces a build for every ruled table to
        keep ``daisy.cost_models["t"]`` working right after registration.
        """
        session = self.default_session()
        for name, state in self.states.items():
            if state.rules:
                session._cost_model(name)
        return {
            table: model
            for table, model in session.cost_models.items()
            if model is not None
        }

    # -- direct cleaning ----------------------------------------------------------------

    def clean_table(self, table: str, rules: Iterable[Rule] | None = None) -> CleanReport:
        """Clean a whole table now (bypass the query-driven path)."""
        from repro.core.operators import clean_full_table

        return clean_full_table(self._state(table), rules)

    # -- lifecycle ----------------------------------------------------------------------

    def close(self) -> None:
        """Release every storage handle and delete all spilled state.

        Tables stay registered and usable afterwards: a spill-mode table
        re-spills from its (RAM-resident) relation on next access.  Call
        this when discarding the engine to leave no temp files behind;
        open sessions only *release* handles (they reopen lazily), the
        engine close is what deletes the spill directories.
        """
        if self._default_session is not None and not self._default_session.closed:
            self._default_session.close()
        for state in self.states.values():
            provider = state.storage_provider
            if provider is not None:
                provider.detach(state.relation._colview)
            state.storage_provider = None
        self.storage_manager.close()
        if self._witness_active:
            from repro.diagnostics import global_witness

            global_witness().deactivate()
            self._witness_active = False

    # -- introspection ------------------------------------------------------------------

    def table(self, name: str) -> Relation:
        """The current (gradually cleaned) relation of a table."""
        return self._state(name).relation

    def work_counter(self, table: str) -> WorkCounter:
        return self._state(table).counter

    def total_work(self) -> int:
        return sum(s.counter.total() for s in self.states.values())

    def probabilistic_cells(self, table: str) -> int:
        return self._state(table).probabilistic_cells()

    def provenance(self, table: str):
        return self._state(table).provenance

    def explain(self, query: Query | str) -> str:
        """The cleaning-aware logical plan for a query, as text."""
        from repro.query.planner import explain as explain_plan

        parsed = parse_sql(query) if isinstance(query, str) else query
        return explain_plan(parsed, self.catalog)
