"""Daisy — the query-driven cleaning engine (Section 6).

The façade over the whole library: register tables and rules, then execute
queries; Daisy weaves cleaning operators into each query plan, repairs the
violations the query touches, updates the dataset in place with
probabilistic fixes, and — when the cost model predicts that finishing the
workload incrementally would cost more than cleaning the remaining dirty
part at once — switches strategy mid-workload (Fig. 7 / Fig. 12).

Typical usage::

    daisy = Daisy()
    daisy.register_table("cities", relation)
    daisy.add_rule("cities", "zip -> city")
    result = daisy.execute("SELECT zip FROM cities WHERE city = 'Los Angeles'")

``Daisy(use_cost_model=False)`` gives the always-incremental variant the
paper calls "Daisy w/o cost".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.constraints.dc import Rule
from repro.constraints.parser import parse_rule
from repro.core.costmodel import CostModel, CostModelConfig, QueryObservation
from repro.core.operators import CleanReport, clean_full_table
from repro.core.state import TableState
from repro.engine.stats import WorkCounter
from repro.errors import PlanError
from repro.query.ast import Query
from repro.query.executor import Executor, QueryResult
from repro.query.planner import PlannerCatalog
from repro.query.sql import parse_sql
from repro.relation.columnview import BACKEND_COLUMNAR, validate_backend
from repro.relation.relation import Relation


@dataclass
class QueryLogEntry:
    """Bookkeeping for one executed query (feeds the workload reports)."""

    sql: str
    result_size: int
    elapsed_seconds: float
    errors_fixed: int
    extra_tuples: int
    switched_to_full: bool = False
    work_units: int = 0


@dataclass
class WorkloadReport:
    """Aggregate of a workload execution."""

    entries: list[QueryLogEntry] = field(default_factory=list)
    total_seconds: float = 0.0
    total_work_units: int = 0
    switch_query_index: Optional[int] = None

    def cumulative_seconds(self) -> list[float]:
        out, acc = [], 0.0
        for entry in self.entries:
            acc += entry.elapsed_seconds
            out.append(acc)
        return out

    def cumulative_work(self) -> list[int]:
        out, acc = [], 0
        for entry in self.entries:
            acc += entry.work_units
            out.append(acc)
        return out


class Daisy:
    """Query-driven incremental cleaning engine.

    Parameters
    ----------
    use_cost_model:
        Enable the Section 5.2.3 strategy switch.  Disabled, Daisy always
        cleans incrementally ("Daisy w/o cost" in Fig. 7).
    expected_queries:
        The workload-length hint the cost model projects over.
    dc_error_threshold:
        Algorithm 2 threshold for escalating a DC query to full cleaning.
    backend:
        Execution backend for the detection/cleaning hot path:
        ``"columnar"`` (default) runs selections, relaxation, FD grouping
        and the DC theta-join over per-attribute arrays with sort-based
        inequality joins; ``"rowstore"`` keeps the original per-Row loops
        (the semantics oracle — both return identical results).
    """

    def __init__(
        self,
        use_cost_model: bool = True,
        expected_queries: int = 50,
        dc_error_threshold: float = 0.2,
        backend: str = BACKEND_COLUMNAR,
    ):
        self.states: dict[str, TableState] = {}
        self.catalog = PlannerCatalog()
        self.use_cost_model = use_cost_model
        self.dc_error_threshold = dc_error_threshold
        self.expected_queries = expected_queries
        self.backend = validate_backend(backend)
        self.cost_models: dict[str, CostModel] = {}
        self.query_log: list[QueryLogEntry] = []
        self._executor = Executor(
            self.states, self.catalog, dc_error_threshold=dc_error_threshold
        )

    # -- registration ------------------------------------------------------------------

    def register_table(self, name: str, relation: Relation) -> TableState:
        """Register a (dirty) table.  Returns its mutable state."""
        relation.name = relation.name or name
        state = TableState(relation=relation, backend=self.backend)
        self.states[name] = state
        self.catalog.add_table(name, relation.schema)
        return state

    def add_rule(self, table: str, rule: Rule | str, name: str = "") -> list[Rule]:
        """Register a rule (object or textual notation) on a table.

        Precomputes the rule's statistics (FDs) or theta-join matrix (DCs)
        and refreshes the table's cost model.  Returns the registered rules
        (textual FDs with multi-attribute rhs decompose into several).
        """
        state = self._state(table)
        rules: list[Rule]
        if isinstance(rule, str):
            rules = parse_rule(rule, name=name)
        else:
            rules = [rule]
        for r in rules:
            state.add_rule(r)
            self.catalog.add_rule(table, r)
        self._refresh_cost_model(table)
        return rules

    def _state(self, table: str) -> TableState:
        try:
            return self.states[table]
        except KeyError:
            raise PlanError(f"table {table!r} is not registered") from None

    def _refresh_cost_model(self, table: str) -> None:
        state = self._state(table)
        eps = state.statistics.total_erroneous()
        p = state.statistics.max_candidate_estimate()
        has_dc = bool(state.dc_rules())
        self.cost_models[table] = CostModel(
            dataset_size=len(state.relation),
            estimated_errors=eps,
            candidates_per_error=max(1.0, p),
            is_dc=has_dc,
            config=CostModelConfig(expected_queries=self.expected_queries),
        )

    # -- execution ----------------------------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Execute one query with inline cleaning (and maybe switch strategy)."""
        sql_text = query if isinstance(query, str) else "<ast>"
        parsed = parse_sql(query) if isinstance(query, str) else query

        work_before = {t: self._state(t).counter.total() for t in parsed.tables}
        result = self._executor.execute(parsed)
        switched = False

        # The cost model only reasons about queries that needed cleaning:
        # a query not touching any rule neither observes nor switches.
        from repro.query.logical import CleanJoinNode, CleanSigmaNode, plan_contains

        query_cleaned = result.plan is not None and (
            plan_contains(result.plan, CleanSigmaNode)
            or plan_contains(result.plan, CleanJoinNode)
        )
        if self.use_cost_model and query_cleaned:
            for table in parsed.tables:
                model = self.cost_models.get(table)
                state = self.states[table]
                if model is None or not state.rules:
                    continue
                model.observe(
                    QueryObservation(
                        result_size=len(result.result_tids.get(table, ())),
                        extra_tuples=result.report.extra_tuples,
                        errors=result.report.errors_fixed,
                        detection_cost=result.report.detection_cost,
                    )
                )
                pending = [
                    r for r in state.rules if not state.is_fully_cleaned(r)
                ]
                if pending and model.should_switch_to_full():
                    started = time.perf_counter()
                    clean_full_table(state, pending)
                    result.elapsed_seconds += time.perf_counter() - started
                    switched = True

        work_after = {t: self.states[t].counter.total() for t in parsed.tables}
        entry = QueryLogEntry(
            sql=sql_text,
            result_size=len(result),
            elapsed_seconds=result.elapsed_seconds,
            errors_fixed=result.report.errors_fixed,
            extra_tuples=result.report.extra_tuples,
            switched_to_full=switched,
            work_units=sum(work_after[t] - work_before[t] for t in parsed.tables),
        )
        self.query_log.append(entry)
        return result

    def execute_workload(self, queries: Sequence[Query | str]) -> WorkloadReport:
        """Execute a query sequence, returning cumulative timing/work."""
        report = WorkloadReport()
        started = time.perf_counter()
        for i, query in enumerate(queries):
            self.execute(query)
            entry = self.query_log[-1]
            report.entries.append(entry)
            if entry.switched_to_full and report.switch_query_index is None:
                report.switch_query_index = i
        report.total_seconds = time.perf_counter() - started
        report.total_work_units = sum(e.work_units for e in report.entries)
        return report

    # -- direct cleaning ----------------------------------------------------------------

    def clean_table(self, table: str, rules: Optional[Iterable[Rule]] = None) -> CleanReport:
        """Clean a whole table now (bypass the query-driven path)."""
        return clean_full_table(self._state(table), rules)

    # -- introspection ------------------------------------------------------------------

    def table(self, name: str) -> Relation:
        """The current (gradually cleaned) relation of a table."""
        return self._state(name).relation

    def work_counter(self, table: str) -> WorkCounter:
        return self._state(table).counter

    def total_work(self) -> int:
        return sum(s.counter.total() for s in self.states.values())

    def probabilistic_cells(self, table: str) -> int:
        return self._state(table).probabilistic_cells()

    def provenance(self, table: str):
        return self._state(table).provenance

    def explain(self, query: Query | str) -> str:
        """The cleaning-aware logical plan for a query, as text."""
        from repro.query.planner import explain as explain_plan

        parsed = parse_sql(query) if isinstance(query, str) else query
        return explain_plan(parsed, self.catalog)
