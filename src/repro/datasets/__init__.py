"""Synthetic datasets, error injection, and workload builders."""

from repro.datasets.errors import (
    ErrorInjectionReport,
    inject_fd_errors,
    inject_numeric_errors,
)
from repro.datasets import airquality, hospital, nestle, ssb, workloads

__all__ = [
    "ErrorInjectionReport",
    "inject_fd_errors",
    "inject_numeric_errors",
    "ssb",
    "hospital",
    "nestle",
    "airquality",
    "workloads",
]
