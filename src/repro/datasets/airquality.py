"""EPA-historical-air-quality-like dataset (Table 8's second scenario).

The Kaggle dataset holds hourly measurements per U.S. county.  The
experiment needs:

* a large measurements table keyed by (state_code, county_code) with a
  composite-lhs FD ``county_code, state_code → county_name``,
* errors injected into the county names of the *non-frequent*
  (state, county) pairs, at two intensities that produce 30% and 97%
  violating entities,
* a 52-query workload: per state, the average CO measurement for one county
  grouped by year.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.dc import FunctionalDependency
from repro.datasets.errors import ErrorInjectionReport, inject_fd_errors
from repro.relation.relation import Relation
from repro.relation.schema import ColumnType, Schema

AIRQUALITY_SCHEMA = Schema(
    [
        ("state_code", ColumnType.INT),
        ("county_code", ColumnType.INT),
        ("county_name", ColumnType.STRING),
        ("year", ColumnType.INT),
        ("month", ColumnType.INT),
        ("co_mean", ColumnType.FLOAT),
        ("co_max", ColumnType.FLOAT),
        ("site_num", ColumnType.INT),
    ]
)


@dataclass
class AirQualityInstance:
    dirty: Relation
    clean: Relation
    fd: FunctionalDependency
    injection: ErrorInjectionReport
    num_states: int


def airquality_fd() -> FunctionalDependency:
    return FunctionalDependency(
        ("county_code", "state_code"), "county_name", name="phi_county"
    )


def clean_measurements(
    num_rows: int = 5000,
    num_states: int = 52,
    counties_per_state: int = 4,
    years: int = 5,
    seed: int = 17,
) -> Relation:
    """Clean hourly-style CO measurements with a consistent county naming.

    Row counts per county follow a skewed (Zipf-ish) distribution so that
    "non-frequent pairs" exist for the error injection to target.
    """
    rng = random.Random(seed)
    county_names = {}
    for s in range(num_states):
        for c in range(counties_per_state):
            county_names[(s, c)] = f"County_{s:02d}_{c}"
    pairs = list(county_names)
    # Zipf-like weights: county index 0 of each state is the frequent one.
    weights = [1.0 / (1 + (i % counties_per_state) * 3) for i in range(len(pairs))]
    raw = []
    for i in range(num_rows):
        pair = rng.choices(pairs, weights=weights, k=1)[0]
        state, county = pair
        co = round(rng.uniform(0.05, 3.5), 3)
        raw.append(
            (
                state,
                county,
                county_names[pair],
                2010 + rng.randrange(years),
                rng.randrange(1, 13),
                co,
                round(co * rng.uniform(1.0, 2.0), 3),
                rng.randrange(1, 10),
            )
        )
    return Relation.from_rows(AIRQUALITY_SCHEMA, raw, name="airquality", validate=False)


def generate_instance(
    num_rows: int = 5000,
    num_states: int = 52,
    violation_level: str = "low",
    seed: int = 17,
) -> AirQualityInstance:
    """Dirty measurements at the paper's two violation intensities.

    ``violation_level='low'`` targets ~30% of county groups; ``'high'``
    ~97%.  Errors go to the least frequent (state, county) pairs first,
    mirroring "we add the errors to the non-frequent pairs".
    """
    clean = clean_measurements(num_rows, num_states=num_states, seed=seed)
    fd = airquality_fd()
    group_fraction = 0.3 if violation_level == "low" else 0.97
    dirty, report = inject_fd_errors(
        clean,
        fd,
        group_fraction=group_fraction,
        member_fraction=0.1,
        seed=seed + 1,
        prefer_rare_groups=True,
    )
    return AirQualityInstance(
        dirty=dirty,
        clean=clean,
        fd=fd,
        injection=report,
        num_states=num_states,
    )


def state_co_queries(num_states: int = 52) -> list[str]:
    """The analyst's 52 queries: average CO for one county per state,
    grouped by year."""
    out = []
    for s in range(num_states):
        out.append(
            "SELECT year, AVG(co_mean) AS avg_co FROM airquality "
            f"WHERE state_code = {s} AND county_code = 0 GROUP BY year"
        )
    return out
