"""BART-style error injection (Arocena et al., used by the paper's §7 setup).

The paper injects errors "similar to BART with the difference that we also
add errors using uniform distribution to evenly distribute the errors across
the dataset".  :func:`inject_fd_errors` edits, for a chosen fraction of lhs
groups, a fraction of the group members' rhs values — each edit is
detectable by the FD.  :func:`inject_numeric_errors` perturbs numeric cells
to create DC (inequality) violations.

Both return the dirty relation plus the ground truth needed for accuracy
evaluation: a map (tid, attr) -> original value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.constraints.dc import FunctionalDependency
from repro.errors import DatasetError
from repro.relation.relation import Relation


@dataclass
class ErrorInjectionReport:
    """What was injected: ground truth and summary statistics."""

    ground_truth: dict[tuple[int, str], Any] = field(default_factory=dict)
    edited_cells: int = 0
    affected_groups: int = 0

    def dirty_tids(self) -> set[int]:
        return {tid for tid, _ in self.ground_truth}


def inject_fd_errors(
    relation: Relation,
    fd: FunctionalDependency,
    group_fraction: float = 1.0,
    member_fraction: float = 0.1,
    seed: int = 7,
    value_pool: Sequence[Any] | None = None,
    prefer_rare_groups: bool = False,
) -> tuple[Relation, ErrorInjectionReport]:
    """Edit rhs values inside a fraction of lhs groups.

    ``group_fraction`` selects how many lhs groups receive errors (1.0 =
    the paper's worst case where every orderkey participates in a
    violation); ``member_fraction`` how many of each group's members are
    edited (the paper's 10%; at least one member per chosen group).
    Replacement values are drawn uniformly from ``value_pool`` (default:
    the rhs domain), always different from the original so every edit is a
    real violation.  ``prefer_rare_groups`` biases selection to the least
    frequent groups (the air-quality setup).
    """
    if not 0.0 <= group_fraction <= 1.0 or not 0.0 < member_fraction <= 1.0:
        raise DatasetError("fractions must be in (0, 1]")
    rng = random.Random(seed)
    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)

    groups: dict[tuple[Any, ...], list[int]] = {}
    for row in relation.rows:
        key = tuple(row.values[i] for i in lhs_idx)
        groups.setdefault(key, []).append(row.tid)

    pool = list(value_pool) if value_pool is not None else sorted(
        {row.values[rhs_idx] for row in relation.rows}, key=str
    )
    if len(pool) < 2:
        raise DatasetError("rhs domain must have at least 2 values to inject errors")

    keys = sorted(groups, key=lambda k: (len(groups[k]), str(k))) if prefer_rare_groups \
        else sorted(groups, key=str)
    if not prefer_rare_groups:
        rng.shuffle(keys)
    n_groups = max(1, round(group_fraction * len(keys))) if group_fraction > 0 else 0
    chosen = keys[:n_groups]

    report = ErrorInjectionReport(affected_groups=len(chosen))
    tid_rows = relation.tid_index()
    updates: dict[tuple[int, str], Any] = {}
    for key in chosen:
        members = groups[key]
        n_edit = max(1, round(member_fraction * len(members)))
        edited = rng.sample(members, min(n_edit, len(members)))
        for tid in edited:
            original = tid_rows[tid].values[rhs_idx]
            replacement = rng.choice(pool)
            attempts = 0
            while replacement == original and attempts < 50:
                replacement = rng.choice(pool)
                attempts += 1
            if replacement == original:
                continue
            updates[(tid, fd.rhs)] = replacement
            report.ground_truth[(tid, fd.rhs)] = original
    report.edited_cells = len(updates)
    return relation.update_cells(updates), report


def inject_numeric_errors(
    relation: Relation,
    attr: str,
    cell_fraction: float = 0.1,
    magnitude: float = 0.5,
    seed: int = 7,
) -> tuple[Relation, ErrorInjectionReport]:
    """Perturb a fraction of numeric cells (for DC / inequality violations).

    Each chosen cell is scaled by a random factor in
    [1 - magnitude, 1 + magnitude] (never exactly 1), producing outliers
    that break monotone relationships like salary/tax.
    """
    if not 0.0 < cell_fraction <= 1.0:
        raise DatasetError("cell_fraction must be in (0, 1]")
    rng = random.Random(seed)
    idx = relation.schema.index_of(attr)
    numeric_tids = [
        row.tid
        for row in relation.rows
        if isinstance(row.values[idx], (int, float))
        and not isinstance(row.values[idx], bool)
    ]
    n_edit = max(1, round(cell_fraction * len(numeric_tids)))
    chosen = rng.sample(numeric_tids, min(n_edit, len(numeric_tids)))
    tid_rows = relation.tid_index()
    report = ErrorInjectionReport(affected_groups=len(chosen))
    updates: dict[tuple[int, str], Any] = {}
    for tid in chosen:
        original = tid_rows[tid].values[idx]
        factor = 1.0 + rng.uniform(0.1, magnitude) * rng.choice((-1.0, 1.0))
        perturbed = original * factor
        if isinstance(original, int):
            perturbed = int(round(perturbed))
            if perturbed == original:
                perturbed = original + rng.choice((-1, 1)) * max(
                    1, int(abs(original) * 0.2)
                )
        updates[(tid, attr)] = perturbed
        report.ground_truth[(tid, attr)] = original
    report.edited_cells = len(updates)
    return relation.update_cells(updates), report


def typo(value: str, rng: random.Random) -> str:
    """A simple character-level typo (substitute / drop / duplicate)."""
    if not value:
        return "x"
    pos = rng.randrange(len(value))
    kind = rng.choice(("sub", "drop", "dup"))
    if kind == "sub":
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        replacement = rng.choice([c for c in alphabet if c != value[pos].lower()])
        return value[:pos] + replacement + value[pos + 1:]
    if kind == "drop" and len(value) > 1:
        return value[:pos] + value[pos + 1:]
    return value[:pos] + value[pos] + value[pos:]
