"""Hospital-like dataset with master data (for the accuracy experiments).

The paper's hospital dataset (from the HoloClean evaluation) has 19
attributes, ~5% erroneous cells, and three DCs:

* ϕ1: ¬(t1.zip = t2.zip ∧ t1.city ≠ t2.city)            — zip → city
* ϕ2: ¬(t1.hospital_name = t2.hospital_name ∧ t1.zip ≠ t2.zip)
* ϕ3: ¬(t1.phone = t2.phone ∧ t1.zip ≠ t2.zip)

We generate a consistent hospital directory (each hospital has one zip, each
zip one city, each phone one zip), keep the clean version as master data,
and inject ~5% FD-detectable cell errors across the three rhs attributes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.dc import FunctionalDependency
from repro.datasets.errors import inject_fd_errors
from repro.relation.relation import Relation
from repro.relation.schema import ColumnType, Schema

HOSPITAL_SCHEMA = Schema(
    [
        ("provider_id", ColumnType.INT),
        ("hospital_name", ColumnType.STRING),
        ("address", ColumnType.STRING),
        ("city", ColumnType.STRING),
        ("state", ColumnType.STRING),
        ("zip", ColumnType.INT),
        ("county", ColumnType.STRING),
        ("phone", ColumnType.INT),
        ("hospital_type", ColumnType.STRING),
        ("ownership", ColumnType.STRING),
        ("emergency", ColumnType.STRING),
        ("measure_code", ColumnType.STRING),
    ]
)

_STATES = ("AL", "AK", "AZ", "CA", "CO", "FL", "GA", "NY", "TX", "WA")
_TYPES = ("Acute Care", "Critical Access", "Childrens")
_OWNERSHIP = ("Government", "Proprietary", "Voluntary")


def hospital_rules() -> list[FunctionalDependency]:
    """The three constraints of the hospital experiment, in FD form."""
    return [
        FunctionalDependency("zip", "city", name="phi1"),
        FunctionalDependency("hospital_name", "zip", name="phi2"),
        FunctionalDependency("phone", "zip", name="phi3"),
    ]


@dataclass
class HospitalInstance:
    """Dirty data + master (clean) data + injection ground truth."""

    dirty: Relation
    master: Relation
    rules: list[FunctionalDependency]
    ground_truth: dict[tuple[int, str], object]


def clean_hospital(num_rows: int = 1000, seed: int = 11) -> Relation:
    """A consistent hospital directory.

    Consistency invariants: zip → city (each zip belongs to one city),
    hospital_name → zip, phone → zip.  Hospitals repeat across rows (one row
    per measure) so FDs have multi-member groups to violate.
    """
    rng = random.Random(seed)
    num_hospitals = max(10, num_rows // 5)
    num_zips = max(5, num_hospitals // 3)
    zips = [10000 + i for i in range(num_zips)]
    zip_city = {z: f"City{(z - 10000) % (num_zips // 2 + 1):03d}" for z in zips}
    zip_state = {z: _STATES[z % len(_STATES)] for z in zips}

    hospitals = []
    for h in range(num_hospitals):
        zip_code = zips[h % num_zips]
        hospitals.append(
            {
                "provider_id": 10000 + h,
                "hospital_name": f"HOSPITAL {h:04d}",
                "address": f"{100 + h} MAIN ST",
                "city": zip_city[zip_code],
                "state": zip_state[zip_code],
                "zip": zip_code,
                "county": f"COUNTY{zip_code % 17:02d}",
                "phone": 5550000 + h,
                "hospital_type": _TYPES[h % len(_TYPES)],
                "ownership": _OWNERSHIP[h % len(_OWNERSHIP)],
                "emergency": "Yes" if h % 3 else "No",
            }
        )
    raw = []
    for i in range(num_rows):
        hosp = hospitals[i % num_hospitals]
        raw.append(
            (
                hosp["provider_id"],
                hosp["hospital_name"],
                hosp["address"],
                hosp["city"],
                hosp["state"],
                hosp["zip"],
                hosp["county"],
                hosp["phone"],
                hosp["hospital_type"],
                hosp["ownership"],
                hosp["emergency"],
                f"MEAS-{rng.randrange(30):02d}",
            )
        )
    return Relation.from_rows(HOSPITAL_SCHEMA, raw, name="hospital", validate=False)


def generate_instance(
    num_rows: int = 1000,
    error_rate: float = 0.05,
    seed: int = 11,
) -> HospitalInstance:
    """Dirty hospital data with ~``error_rate`` erroneous rhs cells.

    Errors are spread over the three rules' rhs attributes (city for ϕ1,
    zip for ϕ2/ϕ3) so each rule has violations to find.
    """
    master = clean_hospital(num_rows, seed=seed)
    rules = hospital_rules()
    dirty = master
    ground_truth: dict[tuple[int, str], object] = {}
    for i, fd in enumerate(rules):
        # Sparse errors (the hospital dataset is ~5% dirty): a minority of
        # each chosen group is edited so the clean majority dominates the
        # candidate frequencies and inference can recover the truth.
        dirty, report = inject_fd_errors(
            dirty,
            fd,
            group_fraction=min(1.0, error_rate * 5),
            member_fraction=0.2,
            seed=seed + 100 + i,
        )
        # Keep only the first-writer ground truth per cell.
        for key, value in report.ground_truth.items():
            ground_truth.setdefault(key, value)
    return HospitalInstance(
        dirty=dirty, master=master, rules=rules, ground_truth=ground_truth
    )
