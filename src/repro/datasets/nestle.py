"""Nestlé-like food/drink product catalogue (Table 8's exploratory scenario).

The real dataset is proprietary; what the experiment depends on is its
shape:

* a product table with ~19 attributes where ``Material → Category`` should
  hold (material = e.g. the type of beans; category = the product type),
* a *very small* category selectivity (few categories, many materials), so
  each category co-occurs with many erroneous materials — this is what makes
  the offline cleaner iterate over the dataset repeatedly (8.5 hours in the
  paper),
* ~95% of entities participating in conflicts after scaling-up with
  duplicates and editing 10% of the category values per material.

The generator reproduces those properties with controllable size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.dc import FunctionalDependency
from repro.datasets.errors import ErrorInjectionReport, inject_fd_errors
from repro.relation.relation import Relation
from repro.relation.schema import ColumnType, Schema

NESTLE_SCHEMA = Schema(
    [
        ("product_id", ColumnType.INT),
        ("name", ColumnType.STRING),
        ("material", ColumnType.STRING),
        ("category", ColumnType.STRING),
        ("brand", ColumnType.STRING),
        ("weight_g", ColumnType.FLOAT),
        ("country", ColumnType.STRING),
        ("organic", ColumnType.STRING),
    ]
)

#: Few categories (low selectivity) over many materials — the key skew.
CATEGORIES = (
    "Coffee", "Tea", "Chocolate", "Water", "Cereal", "Dairy", "Infant", "Petcare",
)

_BRANDS = ("Nescafe", "Nespresso", "KitKat", "Purina", "Maggi", "Milo")
_COUNTRIES = ("CH", "US", "FR", "DE", "BR", "CN")


@dataclass
class NestleInstance:
    dirty: Relation
    clean: Relation
    fd: FunctionalDependency
    injection: ErrorInjectionReport


def clean_products(
    num_rows: int = 2000,
    num_materials: int = 200,
    seed: int = 5,
) -> Relation:
    """A clean catalogue where material determines category.

    Materials are assigned to categories round-robin, so each category owns
    ``num_materials / len(CATEGORIES)`` materials; rows duplicate materials
    (the paper scales up by adding duplicate entities from each attribute's
    domain).
    """
    rng = random.Random(seed)
    material_category = {
        f"MAT-{m:04d}": CATEGORIES[m % len(CATEGORIES)] for m in range(num_materials)
    }
    materials = list(material_category)
    raw = []
    for i in range(num_rows):
        material = materials[i % num_materials]
        raw.append(
            (
                i,
                f"Product {i:05d}",
                material,
                material_category[material],
                rng.choice(_BRANDS),
                round(rng.uniform(10.0, 1000.0), 1),
                rng.choice(_COUNTRIES),
                "Yes" if rng.random() < 0.2 else "No",
            )
        )
    return Relation.from_rows(NESTLE_SCHEMA, raw, name="nestle", validate=False)


def generate_instance(
    num_rows: int = 2000,
    num_materials: int = 200,
    conflict_fraction: float = 0.95,
    member_fraction: float = 0.1,
    seed: int = 5,
) -> NestleInstance:
    """Dirty catalogue: ``conflict_fraction`` of materials have edited
    categories on ~``member_fraction`` of their rows (the paper's 95% / 10%)."""
    clean = clean_products(num_rows, num_materials, seed=seed)
    fd = FunctionalDependency("material", "category", name="phi_mat_cat")
    dirty, report = inject_fd_errors(
        clean,
        fd,
        group_fraction=conflict_fraction,
        member_fraction=member_fraction,
        seed=seed + 1,
        value_pool=list(CATEGORIES),
    )
    return NestleInstance(dirty=dirty, clean=clean, fd=fd, injection=report)


def coffee_queries(num_queries: int = 37) -> list[str]:
    """The analyst's workload: product details for coffee-family categories.

    The paper runs 37 SP queries through the Category attribute accessing
    ~40% of the dataset; we alternate category filters weighted toward
    Coffee.
    """
    cats = ["Coffee", "Tea", "Chocolate"]
    out = []
    for i in range(num_queries):
        cat = cats[i % len(cats)] if i % 3 else "Coffee"
        out.append(
            "SELECT product_id, name, material, category FROM nestle "
            f"WHERE category = '{cat}'"
        )
    return out
