"""Star Schema Benchmark (SSB) style synthetic data.

The paper's synthetic experiments use the SSB ``lineorder`` table joined with
``supplier`` / ``part`` / ``date`` / ``customer``, varying the number of
distinct orderkeys (5K-100K) and suppkeys (100-10K) and injecting FD
violations on ``orderkey → suppkey``.

This generator is schema-compatible at the granularity the experiments need
and exposes exactly the knobs the paper varies: row count, distinct key
cardinalities, and the error rate.  A clean lineorder satisfies
``orderkey → suppkey`` by construction (each orderkey maps to one supplier);
:func:`dirty_lineorder` then edits ~``member_fraction`` of each chosen
orderkey's rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.constraints.dc import FunctionalDependency
from repro.datasets.errors import ErrorInjectionReport, inject_fd_errors
from repro.errors import DatasetError
from repro.relation.relation import Relation
from repro.relation.schema import ColumnType, Schema

LINEORDER_SCHEMA = Schema(
    [
        ("orderkey", ColumnType.INT),
        ("linenumber", ColumnType.INT),
        ("custkey", ColumnType.INT),
        ("partkey", ColumnType.INT),
        ("suppkey", ColumnType.INT),
        ("orderdate", ColumnType.INT),
        ("quantity", ColumnType.INT),
        ("extended_price", ColumnType.FLOAT),
        ("discount", ColumnType.FLOAT),
        ("revenue", ColumnType.FLOAT),
    ]
)

SUPPLIER_SCHEMA = Schema(
    [
        ("suppkey", ColumnType.INT),
        ("name", ColumnType.STRING),
        ("address", ColumnType.STRING),
        ("city", ColumnType.STRING),
        ("nation", ColumnType.STRING),
    ]
)

PART_SCHEMA = Schema(
    [
        ("partkey", ColumnType.INT),
        ("pname", ColumnType.STRING),
        ("brand", ColumnType.STRING),
        ("category", ColumnType.STRING),
    ]
)

DATE_SCHEMA = Schema(
    [
        ("datekey", ColumnType.INT),
        ("year", ColumnType.INT),
        ("month", ColumnType.INT),
    ]
)

CUSTOMER_SCHEMA = Schema(
    [
        ("custkey", ColumnType.INT),
        ("cname", ColumnType.STRING),
        ("ccity", ColumnType.STRING),
        ("cnation", ColumnType.STRING),
    ]
)

_NATIONS = (
    "UNITED STATES", "CHINA", "FRANCE", "GERMANY", "BRAZIL",
    "JAPAN", "INDIA", "CANADA", "EGYPT", "KENYA",
)

_CITIES = tuple(f"{nation[:6].strip()}{i}" for nation in _NATIONS for i in range(5))


@dataclass
class SsbInstance:
    """A generated SSB-style database."""

    lineorder: Relation
    supplier: Relation
    part: Relation
    date: Relation
    customer: Relation
    fd: FunctionalDependency
    injection: ErrorInjectionReport | None = None


def clean_lineorder(
    num_rows: int,
    num_orderkeys: int,
    num_suppkeys: int,
    num_partkeys: int = 200,
    num_custkeys: int = 200,
    num_dates: int = 365,
    seed: int = 42,
) -> Relation:
    """A lineorder table satisfying ``orderkey → suppkey`` by construction."""
    if num_orderkeys < 1 or num_suppkeys < 1:
        raise DatasetError("key cardinalities must be >= 1")
    rng = random.Random(seed)
    # Each orderkey is assigned one supplier (the FD's ground truth).
    order_to_supp = {
        ok: rng.randrange(num_suppkeys) for ok in range(num_orderkeys)
    }
    raw = []
    for i in range(num_rows):
        orderkey = i % num_orderkeys
        price = round(rng.uniform(100.0, 10000.0), 2)
        discount = round(rng.uniform(0.0, 0.10), 4)
        raw.append(
            (
                orderkey,
                i // num_orderkeys + 1,
                rng.randrange(num_custkeys),
                rng.randrange(num_partkeys),
                order_to_supp[orderkey],
                20200101 + rng.randrange(num_dates),
                rng.randrange(1, 51),
                price,
                discount,
                round(price * (1 - discount), 2),
            )
        )
    return Relation.from_rows(LINEORDER_SCHEMA, raw, name="lineorder", validate=False)


def dirty_lineorder(
    num_rows: int,
    num_orderkeys: int,
    num_suppkeys: int,
    error_group_fraction: float = 1.0,
    error_member_fraction: float = 0.1,
    seed: int = 42,
) -> tuple[Relation, FunctionalDependency, ErrorInjectionReport]:
    """A lineorder with FD violations on orderkey → suppkey.

    ``error_group_fraction`` controls how many orderkeys are violated (the
    Fig. 9 knob: 20%-80%; Figs 5/6 use 100%); ``error_member_fraction`` how
    many of each orderkey's rows get a wrong supplier (the paper's 10%).
    """
    clean = clean_lineorder(num_rows, num_orderkeys, num_suppkeys, seed=seed)
    fd = FunctionalDependency("orderkey", "suppkey", name="phi_ok_sk")
    dirty, report = inject_fd_errors(
        clean,
        fd,
        group_fraction=error_group_fraction,
        member_fraction=error_member_fraction,
        seed=seed + 1,
        value_pool=list(range(num_suppkeys)),
    )
    return dirty, fd, report


def supplier_table(
    num_suppkeys: int, duplicates: int = 2, seed: int = 43
) -> Relation:
    """A supplier dimension with ``duplicates`` entries per supplier.

    Each supplier's rows share one address (``address → suppkey`` holds by
    construction); duplicate entries give the FD multi-member groups, the
    same scale-up-by-duplication the paper applies to the Nestlé data.
    """
    rng = random.Random(seed)
    raw = []
    for sk in range(num_suppkeys):
        nation = rng.choice(_NATIONS)
        city = rng.choice(_CITIES)
        for _copy in range(max(1, duplicates)):
            raw.append(
                (
                    sk,
                    f"Supplier#{sk:05d}",
                    f"addr_{sk:05d}",
                    city,
                    nation,
                )
            )
    return Relation.from_rows(SUPPLIER_SCHEMA, raw, name="supplier", validate=False)


def dirty_supplier(
    num_suppkeys: int,
    error_fraction: float = 0.1,
    duplicates: int = 2,
    seed: int = 43,
) -> tuple[Relation, FunctionalDependency, ErrorInjectionReport]:
    """A supplier table violating ``address → suppkey``.

    A fraction of the address groups get one of their duplicate entries'
    suppkey edited, producing conflicting suppkeys at one address.
    """
    clean = supplier_table(num_suppkeys, duplicates=duplicates, seed=seed)
    fd = FunctionalDependency("address", "suppkey", name="psi_addr_sk")
    dirty, report = inject_fd_errors(
        clean,
        fd,
        group_fraction=error_fraction,
        member_fraction=0.5,
        seed=seed + 1,
        value_pool=list(range(num_suppkeys)),
    )
    return dirty, fd, report


def part_table(num_partkeys: int, seed: int = 44) -> Relation:
    rng = random.Random(seed)
    categories = [f"CAT#{i}" for i in range(10)]
    raw = [
        (
            pk,
            f"Part#{pk:05d}",
            f"Brand#{rng.randrange(25)}",
            rng.choice(categories),
        )
        for pk in range(num_partkeys)
    ]
    return Relation.from_rows(PART_SCHEMA, raw, name="part", validate=False)


def date_table(num_dates: int = 365, seed: int = 45) -> Relation:
    raw = []
    for i in range(num_dates):
        datekey = 20200101 + i
        raw.append((datekey, 2020 + i // 365, (i // 30) % 12 + 1))
    return Relation.from_rows(DATE_SCHEMA, raw, name="date", validate=False)


def customer_table(num_custkeys: int, seed: int = 46) -> Relation:
    rng = random.Random(seed)
    raw = [
        (
            ck,
            f"Customer#{ck:05d}",
            rng.choice(_CITIES),
            rng.choice(_NATIONS),
        )
        for ck in range(num_custkeys)
    ]
    return Relation.from_rows(CUSTOMER_SCHEMA, raw, name="customer", validate=False)


def generate_instance(
    num_rows: int = 5000,
    num_orderkeys: int = 500,
    num_suppkeys: int = 100,
    error_group_fraction: float = 1.0,
    error_member_fraction: float = 0.1,
    supplier_error_fraction: float = 0.1,
    seed: int = 42,
) -> SsbInstance:
    """A full SSB-style instance with dirty lineorder and supplier tables."""
    lineorder, fd, injection = dirty_lineorder(
        num_rows,
        num_orderkeys,
        num_suppkeys,
        error_group_fraction=error_group_fraction,
        error_member_fraction=error_member_fraction,
        seed=seed,
    )
    supplier, _supp_fd, _supp_rep = dirty_supplier(
        num_suppkeys, error_fraction=supplier_error_fraction, seed=seed + 10
    )
    return SsbInstance(
        lineorder=lineorder,
        supplier=supplier,
        part=part_table(200, seed=seed + 20),
        date=date_table(365, seed=seed + 30),
        customer=customer_table(200, seed=seed + 40),
        fd=fd,
        injection=injection,
    )
