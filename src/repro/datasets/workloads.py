"""Query-workload builders for the paper's experiments.

All workloads are sequences of SQL strings for the supported template.
The synthetic experiments use *non-overlapping* range queries with a fixed
selectivity that together cover the whole key domain (Figs 5-12); the SSB
"complex" workload provides the Q1/Q2/Q3 join templates of Fig. 13.
"""

from __future__ import annotations

import random


def range_queries(
    table: str,
    attr: str,
    domain_size: int,
    num_queries: int,
    projection: str = "*",
    shuffle_seed: int | None = None,
) -> list[str]:
    """``num_queries`` non-overlapping range filters covering [0, domain_size).

    Each query selects a contiguous slice of the attribute's integer domain;
    together they access the whole dataset exactly once (the Figs 5/6 setup:
    50 queries, 2% selectivity each).
    """
    if num_queries < 1:
        raise ValueError("num_queries must be >= 1")
    bounds = [round(i * domain_size / num_queries) for i in range(num_queries + 1)]
    queries = []
    for i in range(num_queries):
        low, high = bounds[i], bounds[i + 1]
        queries.append(
            f"SELECT {projection} FROM {table} "
            f"WHERE {attr} >= {low} AND {attr} < {high}"
        )
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(queries)
    return queries


def random_selectivity_queries(
    table: str,
    attr: str,
    domain_size: int,
    num_queries: int,
    seed: int = 3,
    projection: str = "*",
) -> list[str]:
    """Non-overlapping queries with random widths (the Fig. 7 / Fig. 12 mix
    of equality and range conditions with random selectivities)."""
    rng = random.Random(seed)
    cuts = sorted(rng.sample(range(1, domain_size), min(num_queries - 1, domain_size - 1)))
    bounds = [0] + cuts + [domain_size]
    queries = []
    for i in range(len(bounds) - 1):
        low, high = bounds[i], bounds[i + 1]
        if high - low == 1:
            queries.append(f"SELECT {projection} FROM {table} WHERE {attr} = {low}")
        else:
            queries.append(
                f"SELECT {projection} FROM {table} "
                f"WHERE {attr} >= {low} AND {attr} < {high}"
            )
    rng.shuffle(queries)
    return queries


def join_queries(
    num_queries: int,
    num_orderkeys: int,
    projection: str = "lineorder.orderkey, lineorder.suppkey, supplier.address",
) -> list[str]:
    """Fig. 11's workload: filter lineorder, join with supplier.

    Non-overlapping orderkey ranges that cover the whole lineorder table.
    """
    bounds = [round(i * num_orderkeys / num_queries) for i in range(num_queries + 1)]
    out = []
    for i in range(num_queries):
        low, high = bounds[i], bounds[i + 1]
        out.append(
            f"SELECT {projection} FROM lineorder, supplier "
            f"WHERE lineorder.suppkey = supplier.suppkey "
            f"AND lineorder.orderkey >= {low} AND lineorder.orderkey < {high}"
        )
    return out


def mixed_workload(
    num_queries: int,
    num_orderkeys: int,
    seed: int = 9,
) -> list[str]:
    """Fig. 12's mix: SP and SPJ queries with random selectivities."""
    rng = random.Random(seed)
    sp = random_selectivity_queries(
        "lineorder", "orderkey", num_orderkeys, num_queries, seed=seed
    )
    out = []
    for i, query in enumerate(sp[:num_queries]):
        if rng.random() < 0.4:
            where = query.split("WHERE", 1)[1]
            out.append(
                "SELECT lineorder.orderkey, lineorder.suppkey, supplier.address "
                "FROM lineorder, supplier "
                "WHERE lineorder.suppkey = supplier.suppkey AND" + where
            )
        else:
            out.append(query)
    return out


def ssb_q1(low: int, high: int) -> str:
    """Fig. 13 Q1: lineorder ⋈ supplier with a suppkey range filter."""
    return (
        "SELECT lineorder.orderkey, lineorder.suppkey, supplier.name "
        "FROM lineorder, supplier "
        "WHERE lineorder.suppkey = supplier.suppkey "
        f"AND lineorder.suppkey >= {low} AND lineorder.suppkey < {high}"
    )


def ssb_q2(low: int, high: int) -> str:
    """Fig. 13 Q2: Q1 plus part and date joins, grouped by year and brand."""
    return (
        "SELECT date.year, part.brand, SUM(lineorder.revenue) AS revenue "
        "FROM lineorder, supplier, part, date "
        "WHERE lineorder.suppkey = supplier.suppkey "
        "AND lineorder.partkey = part.partkey "
        "AND lineorder.orderdate = date.datekey "
        f"AND lineorder.suppkey >= {low} AND lineorder.suppkey < {high} "
        "GROUP BY date.year, part.brand"
    )


def ssb_q3(low: int, high: int) -> str:
    """Fig. 13 Q3: Q2 plus the customer join."""
    return (
        "SELECT date.year, customer.cnation, SUM(lineorder.revenue) AS revenue "
        "FROM lineorder, supplier, part, date, customer "
        "WHERE lineorder.suppkey = supplier.suppkey "
        "AND lineorder.partkey = part.partkey "
        "AND lineorder.orderdate = date.datekey "
        "AND lineorder.custkey = customer.custkey "
        f"AND lineorder.suppkey >= {low} AND lineorder.suppkey < {high} "
        "GROUP BY date.year, customer.cnation"
    )


def ssb_complex_workload(
    variant: str, num_queries: int, num_suppkeys: int
) -> list[str]:
    """A Fig. 13 workload of one query shape (q1 / q2 / q3)."""
    builders = {"q1": ssb_q1, "q2": ssb_q2, "q3": ssb_q3}
    try:
        build = builders[variant]
    except KeyError:
        raise ValueError(f"variant must be one of {sorted(builders)}") from None
    bounds = [round(i * num_suppkeys / num_queries) for i in range(num_queries + 1)]
    return [build(bounds[i], bounds[i + 1]) for i in range(num_queries)]
