"""Violation detection: FD group-by detection, DC theta-join, estimation."""

from repro.detection.fd_detector import (
    FdViolationReport,
    ViolatingGroup,
    detect_fd_violations,
    violating_lhs_keys,
)
from repro.detection.thetajoin import BoundingBox, ThetaJoinMatrix, ViolationPair
from repro.detection.estimator import (
    CleaningDecision,
    RangeErrorEstimate,
    decide_cleaning,
    estimate_errors,
)
from repro.detection.maintenance import (
    MAINTENANCE_MODES,
    MaintenancePolicy,
    MaintenanceReport,
    matrix_fingerprint,
    sync_matrix,
    validate_maintenance_mode,
)

__all__ = [
    "MAINTENANCE_MODES",
    "MaintenancePolicy",
    "MaintenanceReport",
    "matrix_fingerprint",
    "sync_matrix",
    "validate_maintenance_mode",
    "FdViolationReport",
    "ViolatingGroup",
    "detect_fd_violations",
    "violating_lhs_keys",
    "ThetaJoinMatrix",
    "ViolationPair",
    "BoundingBox",
    "estimate_errors",
    "decide_cleaning",
    "CleaningDecision",
    "RangeErrorEstimate",
]
