"""Error estimation & the full-vs-partial cleaning decision (Algorithm 2).

``Estimate_Errors`` splits the dataset into ranges over the DC's primary
attribute and, for every overlapping pair of ranges, estimates how many
conflicting pairs the overlap of the *secondary* attribute boundaries can
produce.  Given a query answer, Daisy sums the estimated errors of the
ranges the answer overlaps, computes the estimated error rate
``errors / (|qa| + errors)``, and decides full vs partial cleaning against a
user threshold.  The *support* statistic reports which fraction of the
diagonal (same-range) cells has been checked, since boundary-overlap
estimation is uninformative there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import Predicate
from repro.detection.thetajoin import BoundingBox, ThetaJoinMatrix, _numeric
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.relation.relation import Relation


@dataclass
class RangeErrorEstimate:
    """Estimated conflicts attributable to one primary-attribute range."""

    stripe: int
    low: float
    high: float
    estimated_errors: float


@dataclass
class CleaningDecision:
    """Output of Algorithm 2 for one query."""

    estimated_errors: float
    result_size: int
    error_rate: float
    support: float
    full_cleaning: bool


def _secondary_attrs(dc: DenialConstraint, primary: str) -> list[Predicate]:
    """The two-tuple predicates other than the primary-attribute one."""
    out = []
    for p in dc.predicates:
        if p.is_constant() or p.is_single_tuple():
            continue
        if p.left_attr == primary and p.right_attr == primary:
            continue
        out.append(p)
    return out


def estimate_errors(
    matrix: ThetaJoinMatrix, counter: WorkCounter | None = None
) -> list[RangeErrorEstimate]:
    """The ``Estimate_Errors`` function of Algorithm 2.

    For every ordered pair of stripes (r1, r2) whose bounding boxes admit a
    violation, the overlap width of each secondary attribute's boundary,
    relative to the boxes' extents, scales the product of the stripe sizes
    into an expected conflict count.  Per the paper, diagonal cells are
    excluded (their ranges are equivalent — the support statistic covers
    them).
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    dc = matrix.dc
    secondary = _secondary_attrs(dc, matrix.primary_attr)
    estimates = [
        RangeErrorEstimate(
            stripe=i,
            low=box.range_of(matrix.primary_attr)[0],
            high=box.range_of(matrix.primary_attr)[1],
            estimated_errors=0.0,
        )
        for i, box in enumerate(matrix.bboxes)
    ]
    s = matrix.num_stripes()
    for i in range(s):
        for j in range(s):
            if i == j:
                continue  # diagonal handled by the support statistic
            counter.charge_comparisons()
            box_i, box_j = matrix.bboxes[i], matrix.bboxes[j]
            # The primary predicate must be satisfiable between the stripes.
            primary_ok = all(
                _box_pred_possible(p, box_i, box_j)
                for p in dc.predicates
                if not p.is_constant()
                and not p.is_single_tuple()
                and p.left_attr == matrix.primary_attr
                and p.right_attr == matrix.primary_attr
            )
            if not primary_ok:
                continue
            conflict = 1.0
            for p in secondary:
                overlap = _boundary_overlap(p, box_i, box_j)
                if overlap <= 0.0:
                    conflict = 0.0
                    break
                conflict *= overlap
            if conflict <= 0.0:
                continue
            size_i = len(matrix.stripes[i])
            size_j = len(matrix.stripes[j])
            estimated = conflict * size_i * size_j
            # Attribute the estimate to the row stripe (the query side).
            estimates[i].estimated_errors += estimated / 2.0
            estimates[j].estimated_errors += estimated / 2.0
    return estimates


def _box_pred_possible(
    pred: Predicate, box_i: BoundingBox, box_j: BoundingBox
) -> bool:
    lo1, hi1 = box_i.range_of(pred.left_attr)
    lo2, hi2 = box_j.range_of(pred.right_attr)
    if lo1 is math.inf or lo2 is math.inf:
        return False
    if pred.op == "<":
        return lo1 < hi2
    if pred.op == "<=":
        return lo1 <= hi2
    if pred.op == ">":
        return hi1 > lo2
    if pred.op == ">=":
        return hi1 >= lo2
    if pred.op == "=":
        return not (hi1 < lo2 or hi2 < lo1)
    return True


def _boundary_overlap(
    pred: Predicate, box_i: BoundingBox, box_j: BoundingBox
) -> float:
    """Relative overlap of the secondary-attribute boundaries of two boxes.

    The paper's example: ranges with tax boundaries (0.3, 0.4) and
    (0.25, 0.5) conflict in the overlap (0.3, 0.4).  We return the overlap
    width divided by the union width — a [0, 1] conflict-propensity factor.
    """
    try:
        lo1, hi1 = box_i.range_of(pred.left_attr)
        lo2, hi2 = box_j.range_of(pred.right_attr)  # type: ignore[arg-type]
    except KeyError:
        return 0.0
    if lo1 is math.inf or lo2 is math.inf:
        return 0.0
    overlap = min(hi1, hi2) - max(lo1, lo2)
    if overlap < 0:
        return 0.0
    union = max(hi1, hi2) - min(lo1, lo2)
    if union <= 0:
        # Degenerate boxes (constant attribute): any overlap is total.
        return 1.0
    if overlap == 0:
        # Touching boundaries still admit conflicts at the boundary point.
        return 0.5 / max(1.0, union)
    return overlap / union


def estimate_check_cost(
    matrix: ThetaJoinMatrix, cells: Sequence[tuple[int, int]]
) -> float:
    """Raw work estimate for checking ``cells`` of ``matrix`` (no charges).

    The adaptive planner prices pool/worker choices for a theta-join check
    with this quantity (see
    :meth:`repro.parallel.clean.ParallelContext.plan_dc_check`): the
    pair-count upper bound of the candidate cells.  A full-matrix check's
    estimate is ~n²-scale, which is what escalates it to the process pool;
    a partial check touching a few stripes stays orders of magnitude
    smaller.  Estimation is free — the pruning-aware real cost is what the
    ``dc_check`` calibration bucket learns from observed work units.
    """
    return matrix.estimate_cells_cost(cells)


def decide_cleaning(
    matrix: ThetaJoinMatrix,
    query_tids: Sequence[int],
    relation: Relation,
    threshold: float = 0.2,
    counter: WorkCounter | None = None,
) -> CleaningDecision:
    """Algorithm 2's per-query decision: full or partial cleaning.

    ``threshold`` is the user-provided error-rate bound: if the estimated
    error rate of the ranges overlapping the query answer exceeds it, Daisy
    cleans the whole dataset (the Fig. 10 "23% accuracy → full cleaning"
    case); otherwise it cleans partially.
    """
    estimates = estimate_errors(matrix, counter=counter)
    primary_idx = relation.schema.index_of(matrix.primary_attr)
    tid_rows = relation.tid_index()
    values = [
        v
        for tid in query_tids
        if tid in tid_rows
        and (v := _numeric(tid_rows[tid].values[primary_idx])) is not None
    ]
    if values:
        stripes = matrix.stripes_overlapping_range(min(values), max(values))
    else:
        stripes = set()
    errors = sum(e.estimated_errors for e in estimates if e.stripe in stripes)
    qa = len(query_tids)
    rate = errors / (qa + errors) if (qa + errors) > 0 else 0.0
    return CleaningDecision(
        estimated_errors=errors,
        result_size=qa,
        error_rate=rate,
        support=matrix.support(),
        full_cleaning=rate > threshold,
    )
