"""FD violation detection by lhs grouping.

BigDansing's optimization (adopted by the paper's offline comparator and by
Daisy): instead of a quadratic self-join, group tuples by the FD's lhs and
flag groups holding more than one distinct rhs value.  Cost is O(n) per rule.

Detection works on partially cleaned data: probabilistic cells contribute
their *original* value when a provenance store is supplied, otherwise their
most probable candidate, so re-detection after repairs stays stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation import kernels
from repro.relation.columnview import ColumnView
from repro.relation.relation import Relation


@dataclass(frozen=True)
class ViolatingGroup:
    """One FD-violating lhs group: its key, member tids, and rhs values."""

    lhs_key: tuple[Any, ...]
    tids: tuple[int, ...]
    rhs_values: tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.tids)


@dataclass
class FdViolationReport:
    """All violating groups of one FD over one relation (or a subset)."""

    fd: FunctionalDependency
    groups: list[ViolatingGroup] = field(default_factory=list)

    def violating_tids(self) -> set[int]:
        out: set[int] = set()
        for group in self.groups:
            out.update(group.tids)
        return out

    def violation_pairs(self) -> list[tuple[int, int]]:
        """All conflicting tid pairs (tuples in the same group with
        different rhs), reported once with tid order (min, max)."""
        pairs: list[tuple[int, int]] = []
        for group in self.groups:
            members = list(zip(group.tids, group.rhs_values))
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    if members[i][1] != members[j][1]:
                        a, b = members[i][0], members[j][0]
                        pairs.append((min(a, b), max(a, b)))
        return pairs

    def group_count(self) -> int:
        return len(self.groups)

    def __bool__(self) -> bool:
        return bool(self.groups)


def _cell_key(cell: Any, original: Any | None) -> Any:
    """The grouping key contributed by a cell (original value wins)."""
    if original is not None:
        return original
    if isinstance(cell, PValue):
        return cell.most_probable()
    return cell


def detect_fd_violations(
    relation: Relation,
    fd: FunctionalDependency,
    tids: Iterable[int] | None = None,
    counter: WorkCounter | None = None,
    originals: dict[tuple[int, str], Any] | None = None,
    view: ColumnView | None = None,
) -> FdViolationReport:
    """Group by the FD's lhs and report groups with conflicting rhs values.

    ``tids`` restricts detection to a subset of the relation (Daisy checks
    only the relaxed query result).  ``originals`` maps (tid, attr) to the
    pre-repair value, used so already-probabilistic cells are grouped by
    their original value, as the paper's provenance machinery requires.
    ``view`` switches the group-by to the columnar arrays (identical
    output, no per-Row traversal).
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    originals = originals or {}
    groups: dict[tuple[Any, ...], list[tuple[int, Any]]] = {}

    if view is not None:
        positions = (
            view.positions_of(tids) if tids is not None else range(len(view))
        )
        lhs_cols = [view.columns[a] for a in fd.lhs]
        rhs_col = view.columns[fd.rhs]
        view_tids = view.tids
        counter.charge_scan(len(view_tids) if tids is None else len(positions))
        if not originals:
            report = _detect_view_vectorized(view, fd, positions, counter)
            if report is not None:
                return report
        for pos in positions:
            tid = view_tids[pos]
            key = tuple(
                _cell_key(col[pos], originals.get((tid, attr)))
                for col, attr in zip(lhs_cols, fd.lhs)
            )
            rhs_value = _cell_key(rhs_col[pos], originals.get((tid, fd.rhs)))
            groups.setdefault(key, []).append((tid, rhs_value))
        return _collect_groups(fd, groups, counter)

    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)
    tid_filter: set[int] | None = set(tids) if tids is not None else None
    for row in relation.rows:
        if tid_filter is not None and row.tid not in tid_filter:
            continue
        counter.charge_scan()
        key = tuple(
            _cell_key(row.values[i], originals.get((row.tid, attr)))
            for i, attr in zip(lhs_idx, fd.lhs)
        )
        rhs_value = _cell_key(row.values[rhs_idx], originals.get((row.tid, fd.rhs)))
        groups.setdefault(key, []).append((row.tid, rhs_value))
    return _collect_groups(fd, groups, counter)


def _detect_view_vectorized(
    view: ColumnView,
    fd: FunctionalDependency,
    positions: Sequence[int],
    counter: WorkCounter,
) -> FdViolationReport | None:
    """The numpy-backend twin of the columnar lhs-grouping scan.

    Applicable only when every lhs/rhs column vectorizes exactly and every
    *used* position is concrete (no nulls — ``None`` is a legitimate
    grouping key the ndarray cannot carry — and no probabilistic cells,
    whose ``originals``-aware collapsing the oracle handles).  One lexsort
    by (lhs..., rhs) yields the groups, their first-occurrence order, and
    each group's distinct-rhs count; keys/rhs values are fetched from the
    raw columns so the report holds the exact objects the oracle emits.
    Work charges match the oracle: one comparison per grouped row.
    """
    attrs = list(fd.lhs) + [fd.rhs]
    typed_cols = [view.typed_column(a) for a in attrs]
    if any(t is None for t in typed_cols):
        return None
    if isinstance(positions, range):
        if any(not t.all_valid for t in typed_cols):  # type: ignore[union-attr]
            return None
        index = kernels.arange(len(view))
        used = [t.values for t in typed_cols]  # type: ignore[union-attr]
    else:
        index = kernels.as_index(positions)
        if index.size and any(
            not bool(t.valid[index].all()) for t in typed_cols  # type: ignore[union-attr]
        ):
            return None
        used = [t.values[index] for t in typed_cols]  # type: ignore[union-attr]
    _group_count, violating = kernels.fd_violating_groups(
        used[:-1], used[-1], index
    )
    counter.charge_comparisons(len(positions))
    report = FdViolationReport(fd=fd)
    view_tids = view.tids
    lhs_raw = [view.columns[a] for a in fd.lhs]
    rhs_raw = view.columns[fd.rhs]
    for members in violating:
        first = members[0]
        report.groups.append(
            ViolatingGroup(
                lhs_key=tuple(col[first] for col in lhs_raw),
                tids=tuple(map(view_tids.__getitem__, members)),
                rhs_values=tuple(map(rhs_raw.__getitem__, members)),
            )
        )
    return report


def _collect_groups(
    fd: FunctionalDependency,
    groups: dict[tuple[Any, ...], list[tuple[int, Any]]],
    counter: WorkCounter,
) -> FdViolationReport:

    report = FdViolationReport(fd=fd)
    for key, members in groups.items():
        distinct_rhs = {rhs for _tid, rhs in members}
        counter.charge_comparisons(len(members))
        if len(distinct_rhs) > 1:
            report.groups.append(
                ViolatingGroup(
                    lhs_key=key,
                    tids=tuple(t for t, _ in members),
                    rhs_values=tuple(v for _, v in members),
                )
            )
    return report


def violating_lhs_keys(
    relation: Relation, fd: FunctionalDependency, counter: WorkCounter | None = None
) -> set[tuple[Any, ...]]:
    """The set of lhs keys that participate in at least one violation.

    This is the statistic Daisy precomputes to prune violation checks for
    values that belong to clean groups (Fig. 9 discussion).
    """
    report = detect_fd_violations(relation, fd, counter=counter)
    return {g.lhs_key for g in report.groups}
