"""Incremental theta-join matrix maintenance over the ColumnView patch stream.

Detection matrices (:class:`~repro.detection.thetajoin.ThetaJoinMatrix`) are
built once over a relation snapshot; before this module, any external cell
update forced a full stripe rebuild.  :func:`sync_matrix` instead consumes
the ``(tid, attr) -> value`` patches that ``Relation.update_cells`` /
``update_rows`` emit on the :class:`~repro.relation.columnview.ColumnView`
patch stream and maintains the matrix **positionally**:

* the global sorted order of the primary attribute is kept as parallel
  key/tid arrays; a tid whose partition (primary) attribute changed is
  removed and re-inserted by binary search at exactly the position a cold
  rebuild's stable sort would give it (ties break on relation row position,
  which is what a stable sort by value amounts to);
* only stripes whose membership or cell content changed are re-derived —
  membership changes rebuild the stripe, content-only changes patch the
  per-stripe value arrays in place and drop just the touched attributes'
  cached sort orders (they re-sort lazily, exactly like a cold stripe);
* cells of the checked-cell bookkeeping that involve an affected stripe are
  invalidated; all other checked cells stay checked — that is the whole
  point: unaffected cells cover unchanged data and cannot yield new
  violations.

A per-matrix and per-stripe **cost hook** (:class:`MaintenancePolicy`)
decides patch-vs-rebuild: tiny patches are maintained positionally, patches
touching most of the data re-derive the stripes wholesale via
:meth:`ThetaJoinMatrix.rebuild`.  Crucially, the strategy only governs
*how structures are re-derived*: cell updates never change the striped row
count, so the stripe chunking is stable and the checked-cell invalidation
is computed from the patch diff **identically under both strategies** —
patch and rebuild stay byte-identical in candidate cells, violations,
repairs, and work units.  Only an update that changes the striped-row set
itself (a primary-attribute cell turning numeric or non-numeric) clears
the bookkeeping, because the old cell ids stop meaning anything.

**Value semantics.**  A matrix reflects its *source snapshot*: the relation
it was built from, overlaid with every data-origin patch synced since.
Repair patches (``origin="repair"``) never reach the matrix — repaired
cells keep their pre-repair values in the stripes and the provenance store
owns the mapping, exactly as before this module existed.  Both the patch
path and the rebuild fallback derive from the same source snapshot, so a
patched matrix is byte-identical — stripes, bounding boxes, sort orders,
violations, and work units — to a matrix cold-rebuilt from that snapshot.
"""

from __future__ import annotations

import logging
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.detection.thetajoin import (
    ThetaJoinMatrix,
    _numeric,
    _stripe_bbox,
    _StripeColumns,
)
from repro.probabilistic.value import PValue
from repro.relation.columnview import BACKEND_COLUMNAR
from repro.relation.relation import Relation, Row
from repro._ownership import session_owned

if TYPE_CHECKING:  # state.py imports this module; avoid the cycle at runtime
    from repro.core.state import TableState

logger = logging.getLogger(__name__)

#: Maintenance modes for ``DaisyConfig.matrix_maintenance``.
MAINTENANCE_AUTO = "auto"
MAINTENANCE_PATCH = "patch"
MAINTENANCE_REBUILD = "rebuild"
MAINTENANCE_MODES = (MAINTENANCE_AUTO, MAINTENANCE_PATCH, MAINTENANCE_REBUILD)


def validate_maintenance_mode(name: str) -> str:
    if name not in MAINTENANCE_MODES:
        raise ValueError(
            f"unknown matrix maintenance mode {name!r}; "
            f"expected one of {MAINTENANCE_MODES}"
        )
    return name


@dataclass(frozen=True)
class MaintenancePolicy:
    """The patch-vs-rebuild cost hook.

    ``mode`` forces a strategy (``"patch"`` / ``"rebuild"``) or lets the
    cost estimates decide (``"auto"``, the default).  The estimates mirror
    the Section 5.2 style of the engine's cost model: work proportional to
    the tuples a strategy touches.

    * A full rebuild costs ~``n·(log n + a)`` (global sort plus per-stripe
      column/bbox derivation over ``a`` constraint attributes).
    * A patch costs ~``moved·(log n + n_shift)`` for re-routing plus
      ``affected_stripes · stripe_size · a`` for re-deriving touched
      stripes.

    ``rebuild_margin`` scales the rebuild estimate before comparison
    (``> 1`` favours patching).  :meth:`stripe_action` is the per-stripe
    hook: a stripe with most of its rows touched is cheaper to re-derive
    wholesale than to patch position by position.
    """

    mode: str = MAINTENANCE_AUTO
    rebuild_margin: float = 1.0
    #: Fraction of a stripe's rows above which the stripe is re-derived
    #: wholesale instead of patched positionally.
    stripe_rebuild_fraction: float = 0.5

    def __post_init__(self) -> None:
        validate_maintenance_mode(self.mode)
        if self.rebuild_margin <= 0:
            raise ValueError("rebuild_margin must be > 0")
        if not 0.0 < self.stripe_rebuild_fraction <= 1.0:
            raise ValueError("stripe_rebuild_fraction must be in (0, 1]")

    def estimate_costs(
        self, n: int, attrs: int, touched_rows: int, moved_rows: int,
        touched_stripes: int, stripe_size: int,
    ) -> tuple[float, float]:
        """(patch_cost, rebuild_cost) estimates in tuple-work units."""
        log_n = max(1.0, math.log2(n)) if n else 1.0
        rebuild = n * (log_n + attrs)
        affected = touched_stripes + moved_rows  # a move can span stripes
        patch = (
            moved_rows * (log_n + n / 2.0)  # bisect + array shift
            + touched_rows * attrs
            + affected * stripe_size * attrs
        )
        return patch, rebuild

    def decide(
        self, n: int, attrs: int, touched_rows: int, moved_rows: int,
        touched_stripes: int, stripe_size: int,
    ) -> tuple[str, str, float, float]:
        """(action, reason, patch_cost, rebuild_cost) for one sync."""
        patch_cost, rebuild_cost = self.estimate_costs(
            n, attrs, touched_rows, moved_rows, touched_stripes, stripe_size
        )
        if self.mode == MAINTENANCE_PATCH:
            return "patch", "mode=patch", patch_cost, rebuild_cost
        if self.mode == MAINTENANCE_REBUILD:
            return "rebuild", "mode=rebuild", patch_cost, rebuild_cost
        if patch_cost <= self.rebuild_margin * rebuild_cost:
            return "patch", "patch cheaper", patch_cost, rebuild_cost
        return "rebuild", "rebuild cheaper", patch_cost, rebuild_cost

    def stripe_action(self, touched_in_stripe: int, stripe_size: int) -> str:
        """Per-stripe hook: patch positionally or re-derive wholesale."""
        if stripe_size == 0:
            return "rebuild"
        if touched_in_stripe >= self.stripe_rebuild_fraction * stripe_size:
            return "rebuild"
        return "patch"


@session_owned
@dataclass
class MaintenanceReport:
    """What one :func:`sync_matrix` invocation did to one matrix."""

    rule: str = ""
    epoch: int = 0
    action: str = "noop"  # noop | patch | rebuild
    reason: str = ""
    rows_touched: int = 0
    tids_rerouted: int = 0
    stripes_patched: int = 0
    stripes_rebuilt: int = 0
    cells_invalidated: int = 0
    est_patch_cost: float = 0.0
    est_rebuild_cost: float = 0.0
    invalidated: set[tuple[int, int]] = field(default_factory=set)


@dataclass(frozen=True)
class EpochVisibility:
    """What a table's derived structures currently see of its data epoch.

    ``data_epoch`` is the table's current epoch; ``matrix_epochs`` maps each
    theta-join matrix (by rule key, sorted) to the epoch it last synced to —
    a matrix behind the table epoch has pending patch batches it will fold
    in lazily on its next :meth:`~repro.core.state.TableState.matrix_for`.
    The service tier reports this from its status endpoint and the soak
    test asserts ``min_matrix_epoch <= data_epoch`` stays invariant.
    """

    data_epoch: int
    matrix_epochs: tuple[tuple[str, int], ...]
    pending_batches: int

    @property
    def min_matrix_epoch(self) -> int:
        """The most-behind matrix's synced epoch (data epoch if none)."""
        if not self.matrix_epochs:
            return self.data_epoch
        return min(epoch for _key, epoch in self.matrix_epochs)

    @property
    def fully_synced(self) -> bool:
        """True when every matrix has folded in every pending batch."""
        return all(
            epoch == self.data_epoch for _key, epoch in self.matrix_epochs
        )


def visibility_of(state: "TableState") -> EpochVisibility:
    """Snapshot one table's epoch-visibility surface (read-only)."""
    return EpochVisibility(
        data_epoch=state.data_epoch,
        matrix_epochs=tuple(
            (key, state.matrix_epochs.get(key, 0))
            for key in sorted(state.matrices)
        ),
        pending_batches=len(state.patch_log),
    )


def _patched_source(
    source: Relation, by_tid: dict[int, dict[int, Any]], relpos: dict[int, int]
) -> Relation:
    """The matrix's new source snapshot: old source + the relevant updates.

    Built directly (not via ``Relation.update_cells``) so no patch batch is
    emitted — maintenance *consumes* the patch stream and must not feed it.
    One O(n) list copy plus one row rebuild per *touched* tid (addressed
    through the matrix's relation-position map), so a one-cell patch does
    not pay a per-row scan.
    """
    rows: list[Row] = list(source.rows)
    for tid, cell_map in by_tid.items():
        pos = relpos[tid]
        vals = list(rows[pos].values)
        for idx, value in cell_map.items():
            vals[idx] = value
        rows[pos] = Row(tid, tuple(vals))
    return Relation(source.schema, rows, name=source.name)


def sync_matrix(
    matrix: ThetaJoinMatrix,
    updates: dict[tuple[int, str], Any],
    policy: MaintenancePolicy | None = None,
) -> MaintenanceReport:
    """Bring ``matrix`` up to date with one batch of data-origin updates.

    ``updates`` is the coalesced ``(tid, attr) -> value`` map of every
    pending data patch (later batches already folded over earlier ones).
    Updates to attributes the constraint does not mention, or to tids
    absent from the matrix's source, are ignored.  Returns a
    :class:`MaintenanceReport`; ``report.invalidated`` lists the checked
    cells that were un-checked (patch path) — after a rebuild the whole
    bookkeeping is cleared instead.
    """
    policy = policy if policy is not None else MaintenancePolicy()
    report = MaintenanceReport()

    relpos = matrix._relpos
    relevant = {
        (tid, attr): value
        for (tid, attr), value in updates.items()
        if attr in matrix.indexes and tid in relpos
    }
    if not relevant:
        return report

    by_tid: dict[int, dict[int, Any]] = {}
    for (tid, attr), value in relevant.items():
        by_tid.setdefault(tid, {})[matrix.indexes[attr]] = value
    source = matrix.relation
    new_source = _patched_source(source, by_tid, relpos)
    report.rows_touched = len(by_tid)

    stripe_of = matrix._stripe_of_tid
    primary = matrix.primary_attr
    primary_idx = matrix.indexes[primary]

    # Membership changes (a row entering/leaving the striped set) shift the
    # stripe chunking itself: fall back to a rebuild.
    membership_changed = False
    for tid, cell_map in by_tid.items():
        if primary_idx not in cell_map:
            continue
        new_in = _numeric(cell_map[primary_idx]) is not None
        if (tid in stripe_of) != new_in:
            membership_changed = True
            break

    touched_striped = {tid for tid in by_tid if tid in stripe_of}
    if not touched_striped and not membership_changed:
        # Updates only touch rows outside the striped set (non-numeric
        # primary): the stripes are untouched, only the source moves on.
        matrix.relation = new_source
        report.action = "noop"
        report.reason = "no striped row touched"
        return report

    # Moved tids: striped rows whose primary sort key changed.  The stripes
    # mirror the source snapshot, so the old value reads in O(1) through
    # the relation-position map instead of a per-tid stripe scan.
    moved: dict[int, tuple[float, float]] = {}
    if not membership_changed:
        for tid in sorted(touched_striped):
            cell_map = by_tid[tid]
            if primary_idx not in cell_map:
                continue
            old_key = _numeric(source.rows[relpos[tid]].values[primary_idx])
            new_key = _numeric(cell_map[primary_idx])
            if new_key != old_key:
                moved[tid] = (old_key, new_key)

    if membership_changed:
        # The striped-row set itself changed: stripe chunking shifts and the
        # old checked-cell ids stop meaning anything — rebuild and clear.
        matrix.rebuild(new_source)
        matrix.checked_cells.clear()
        report.action = "rebuild"
        report.reason = "striped-set membership changed"
        report.stripes_rebuilt = matrix.num_stripes()
        logger.debug(
            "matrix %s: full rebuild (%s)", matrix.dc.name, report.reason
        )
        return report

    n = sum(len(s) for s in matrix.stripes)
    per = max(1, math.ceil(n / matrix.sqrt_p)) if n else 1
    action, reason, patch_cost, rebuild_cost = policy.decide(
        n=n,
        attrs=len(matrix.attrs),
        touched_rows=len(touched_striped),
        moved_rows=len(moved),
        touched_stripes=len({stripe_of[t] for t in touched_striped}),
        stripe_size=per,
    )
    report.est_patch_cost, report.est_rebuild_cost = patch_cost, rebuild_cost

    # ---- shared diff: which stripes does this batch affect? ----------------------
    # Cell updates never change n, so the stripe chunking is stable and the
    # checked-cell bookkeeping stays meaningful under *both* strategies —
    # the patch-vs-rebuild decision governs how stripe structures are
    # re-derived, never which cells must be re-checked.  That keeps the two
    # strategies byte-identical downstream: same candidate cells, same
    # violations, same repairs, same work units.

    # 1. Maintain the global sorted order as (key, relpos) / tid arrays —
    #    the concatenation of the stripes *is* that order.  Content-only
    #    batches (no primary key changed) cannot move any row, so skip the
    #    O(n) flatten/re-chunk entirely: stripe identities are untouched.
    changed_identity: set[int] = set()
    new_chunks: list[list[int]] = []
    rerouted = 0
    if moved:
        keys: list[tuple[float, int]] = []
        tid_order: list[int] = []
        for stripe in matrix.stripes:
            for row in stripe:
                keys.append((_numeric(row.values[primary_idx]), relpos[row.tid]))
                tid_order.append(row.tid)

        for tid, (old_key, new_key) in moved.items():
            pos = relpos[tid]
            i = bisect_left(keys, (old_key, pos))
            if i >= len(keys) or tid_order[i] != tid:
                raise RuntimeError(
                    f"matrix sort order out of sync for tid {tid} "
                    f"(rule {matrix.dc.name!r}); rebuild the matrix"
                )
            del keys[i]
            del tid_order[i]
            j = bisect_left(keys, (new_key, pos))
            keys.insert(j, (new_key, pos))
            tid_order.insert(j, tid)

        # 2. Diff the new chunking against the current stripes.
        new_chunks = [tid_order[start:start + per] for start in range(0, n, per)]
        if not new_chunks:
            new_chunks = [[]]
        for s, chunk in enumerate(new_chunks):
            old_tids = [row.tid for row in matrix.stripes[s]]
            if old_tids != chunk:
                changed_identity.add(s)

        rerouted = sum(
            1 for tid in moved
            if stripe_of[tid] != _chunk_of(relpos, new_chunks, per, keys, tid, moved)
        )

    # 3. Invalidate checked cells involving an affected stripe — identical
    #    under both strategies (the diff, not the strategy, defines what
    #    must be re-checked).
    affected = changed_identity | {stripe_of[t] for t in touched_striped}
    invalidated = {
        cell for cell in matrix.checked_cells
        if cell[0] in affected or cell[1] in affected
    }
    matrix.checked_cells -= invalidated
    report.tids_rerouted = rerouted
    report.cells_invalidated = len(invalidated)
    report.invalidated = invalidated
    report.reason = reason

    if action == "rebuild":
        matrix.rebuild(new_source)
        report.action = "rebuild"
        report.stripes_rebuilt = matrix.num_stripes()
        logger.debug(
            "matrix %s: wholesale rebuild (%s), %d cells invalidated",
            matrix.dc.name, reason, len(invalidated),
        )
        return report

    # ---- positional patch --------------------------------------------------------

    new_rows = new_source.rows
    patched_stripes: set[int] = set()

    # 4. Re-derive stripes whose membership/order changed.
    for s in sorted(changed_identity):
        rows = [new_rows[relpos[tid]] for tid in new_chunks[s]]
        _rederive_stripe(matrix, s, rows)
        for tid in new_chunks[s]:
            stripe_of[tid] = s

    # 5. Positionally patch stripes whose content (not membership) changed.
    touched_by_stripe: dict[int, list[int]] = {}
    for tid in sorted(touched_striped):
        s = stripe_of[tid]
        if s not in changed_identity:
            touched_by_stripe.setdefault(s, []).append(tid)
    for s, tids in touched_by_stripe.items():
        stripe = matrix.stripes[s]
        if policy.stripe_action(len(tids), len(stripe)) == "rebuild":
            _rederive_stripe(
                matrix, s, [new_rows[relpos[row.tid]] for row in stripe]
            )
            patched_stripes.add(s)
            continue
        columnar = matrix.backend == BACKEND_COLUMNAR
        pos_of = {row.tid: k for k, row in enumerate(stripe)}
        touched_attrs: set[str] = set()
        # Per-attribute uncertain-set edits, applied once per attribute
        # after the tid loop (re-freezing per cell would be O(k·stripe)).
        uncertain_edits: dict[str, tuple[set[int], set[int]]] = {}
        for tid in tids:
            k = pos_of[tid]
            new_row = new_rows[relpos[tid]]
            stripe[k] = new_row  # _StripeColumns.rows is this same list
            for attr, idx in matrix.indexes.items():
                if idx not in by_tid[tid]:
                    continue
                touched_attrs.add(attr)
                if columnar:
                    cols = matrix._stripe_cols[s]
                    cell = new_row.values[idx]
                    cols.raw[attr][k] = cell
                    cols.numeric[attr][k] = _numeric(cell)
                    adds, discards = uncertain_edits.setdefault(
                        attr, (set(), set())
                    )
                    if isinstance(cell, PValue):
                        adds.add(k)
                        discards.discard(k)
                    else:
                        discards.add(k)
                        adds.discard(k)
        if columnar:
            cols = matrix._stripe_cols[s]
            for attr, (adds, discards) in uncertain_edits.items():
                cols.uncertain[attr] = frozenset(
                    (set(cols.uncertain[attr]) - discards) | adds
                )
        # Touched attributes: re-derive bbox, drop cached sort orders (they
        # re-sort lazily — cold-rebuilt stripes start from the same state).
        box = dict(
            zip((name for name, _lo, _hi in matrix.bboxes[s].bounds),
                matrix.bboxes[s].bounds)
        )
        fresh = _stripe_bbox(stripe, sorted(touched_attrs), matrix.indexes)
        for name, lo, hi in fresh.bounds:
            box[name] = (name, lo, hi)
        matrix.bboxes[s] = type(matrix.bboxes[s])(
            tuple(box[a] for a in matrix.attrs)
        )
        if columnar:
            for attr in sorted(touched_attrs):
                # Drops both the cached sort order and the numpy backend's
                # float-array mirror — patched stripes must re-derive the
                # same lazy state a cold rebuild would start from.
                matrix._stripe_cols[s].invalidate(attr)
        patched_stripes.add(s)

    matrix.relation = new_source
    report.action = "patch"
    report.stripes_rebuilt = len(changed_identity)
    report.stripes_patched = len(patched_stripes)
    logger.debug(
        "matrix %s: patched (%d rows, %d rerouted, %d stripes re-derived, "
        "%d patched, %d cells invalidated)",
        matrix.dc.name, report.rows_touched, rerouted,
        report.stripes_rebuilt, report.stripes_patched, len(invalidated),
    )
    return report


def _rederive_stripe(matrix: ThetaJoinMatrix, s: int, rows: list[Row]) -> None:
    """Replace one stripe wholesale: rows, bounding box, columnar mirror.

    The single definition both the changed-identity path and the per-stripe
    wholesale-rebuild hook go through — stripe derivation must never fork
    between strategies, or the byte-identity invariant breaks.
    """
    matrix.stripes[s] = rows
    matrix.bboxes[s] = _stripe_bbox(rows, matrix.attrs, matrix.indexes)
    if matrix.backend == BACKEND_COLUMNAR:
        matrix._stripe_cols[s] = _StripeColumns(
            rows, matrix.attrs, matrix.indexes,
            column_backend=matrix.column_backend,
        )


def _chunk_of(
    relpos: dict[int, int],
    chunks: list[list[int]],
    per: int,
    keys: list[tuple[float, int]],
    tid: int,
    moved: dict[int, tuple[float, float]],
) -> int:
    """The new stripe index of a moved tid (for reroute accounting)."""
    pos = bisect_left(keys, (moved[tid][1], relpos[tid]))
    return min(pos // per, len(chunks) - 1)


def matrix_fingerprint(
    matrix: ThetaJoinMatrix, include_sorted: bool = False
) -> dict[str, Any]:
    """A structural fingerprint for byte-identity comparisons.

    Two matrices with equal fingerprints behave identically on every
    ``check_full`` / ``check_partial`` call (given equal checked-cell
    bookkeeping): same stripes (tids and constraint-attribute values, via
    ``repr`` so probabilistic cells compare exactly), same bounding boxes,
    same tid routing.  ``include_sorted`` additionally forces and compares
    the per-stripe sort orders the columnar backend's inequality join uses.
    """
    stripes = tuple(
        tuple(
            (row.tid, tuple(repr(row.values[matrix.indexes[a]]) for a in matrix.attrs))
            for row in stripe
        )
        for stripe in matrix.stripes
    )
    out: dict[str, Any] = {
        "primary": matrix.primary_attr,
        "stripes": stripes,
        "bboxes": tuple(matrix.bboxes),
        "stripe_of_tid": dict(matrix._stripe_of_tid),
    }
    if include_sorted and matrix.backend == BACKEND_COLUMNAR:
        out["sorted"] = tuple(
            tuple(
                (
                    attr,
                    tuple(repr(v) for v in cols.sorted_by(attr).values),
                    tuple(cols.sorted_by(attr).positions),
                )
                for attr in matrix.attrs
            )
            for cols in matrix._stripe_cols
        )
    return out
