"""Matrix-partitioned theta-join for general denial constraints.

Section 4.2: detecting DC violations requires a self theta-join.  Following
Okcan & Riedewald, the cartesian product is mapped to a matrix whose axes are
the dataset sorted/partitioned by a numeric attribute; the matrix is split
into p partitions (cells) and only cells whose boundary ranges can produce
violations are checked.  Symmetric cells below the diagonal are pruned.

Daisy's *partial* theta-join adds two refinements:

* **Incremental checking** — the matrix remembers which cells have been
  checked for a rule; a query only checks the cells that involve its result
  rows and the still-unseen part of the dataset.
* **Intra-partition pruning** — within a cell, rows of one side that cannot
  satisfy an inequality against the other side's boundary are skipped
  (Example 4: vertical range (1000,1750) shrinks to (1500,1750) for a ``<``
  check against horizontal range (1500,1750)).

The matrix is keyed by a primary attribute (the attribute of the first
inequality predicate); per-cell bounding boxes are kept for every attribute
the DC mentions so cell-level pruning can reject cells for any predicate.

Two execution backends share the matrix/pruning machinery:

* ``rowstore`` — the original nested loop over ``Row`` pairs (kept as the
  semantics oracle);
* ``columnar`` (default) — per-stripe typed value arrays plus a
  **sort-based inequality join**: one stripe is sorted by the driving
  predicate's attribute and each probe row binary-searches the qualifying
  range instead of scanning the whole stripe.  Probabilistic cells are
  routed through the full possible-worlds evaluation, so both backends
  return identical violation lists.

Cells are independent work units: :meth:`ThetaJoinMatrix._check_cell` is
side-effect-free apart from charging a caller-supplied work counter, each
cell's violations come back in canonical (t1, t2) order, and
:meth:`ThetaJoinMatrix.check_cells` can fan candidate cells out over an
:class:`~repro.parallel.pool.ExecutorPool`, merging partial results and
per-task counters in cell order — parallel runs are byte-identical to
serial ones, in both violations and work units.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from repro._ownership import shared_engine_state
from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import Predicate
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.errors import ConstraintError
from repro.probabilistic.value import PValue, plain
from repro.relation import kernels
from repro.relation.columnview import (
    BACKEND_COLUMNAR,
    SortedColumn,
    validate_backend,
)
from repro.relation.kernels import COLUMN_NUMPY, COLUMN_PYTHON
from repro.relation.relation import Relation, Row

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.pool import ExecutorPool


@dataclass(frozen=True)
class BoundingBox:
    """Per-attribute [min, max] summary of one matrix stripe."""

    bounds: tuple[tuple[str, float, float], ...]

    def range_of(self, attr: str) -> tuple[float, float]:
        for name, lo, hi in self.bounds:
            if name == attr:
                return lo, hi
        raise KeyError(attr)


def _numeric(cell: Any) -> float | None:
    value = plain(cell)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _stripe_bbox(rows: Sequence[Row], attrs: Sequence[str], indexes: dict[str, int]) -> BoundingBox:
    bounds = []
    for attr in attrs:
        values = [v for v in (_numeric(r.values[indexes[attr]]) for r in rows) if v is not None]
        if values:
            bounds.append((attr, min(values), max(values)))
        else:
            bounds.append((attr, math.inf, -math.inf))
    return BoundingBox(tuple(bounds))


def _cell_may_violate(pred: Predicate, box_i: BoundingBox, box_j: BoundingBox) -> bool:
    """Can *some* pair (t1 from stripe i, t2 from stripe j) satisfy ``pred``?

    Only two-tuple predicates prune at cell level; constant/single-tuple
    predicates are handled per row.
    """
    if pred.is_constant() or pred.is_single_tuple():
        return True
    try:
        lo1, hi1 = box_i.range_of(pred.left_attr)
        lo2, hi2 = box_j.range_of(pred.right_attr)  # type: ignore[arg-type]
    except KeyError:
        return True
    if lo1 is math.inf or lo2 is math.inf:
        return False  # empty stripe
    if pred.op == "<":
        return lo1 < hi2
    if pred.op == "<=":
        return lo1 <= hi2
    if pred.op == ">":
        return hi1 > lo2
    if pred.op == ">=":
        return hi1 >= lo2
    if pred.op == "=":
        return not (hi1 < lo2 or hi2 < lo1)
    return True  # '!=' prunes nothing at box level


def _row_may_qualify(
    pred: Predicate, value: float | None, other_box: BoundingBox, left_side: bool
) -> bool:
    """Intra-partition pruning: can this row satisfy ``pred`` against any row
    of the opposite stripe (summarized by its bounding box)?"""
    if value is None:
        return False
    attr = pred.right_attr if left_side else pred.left_attr
    try:
        lo, hi = other_box.range_of(attr)  # type: ignore[arg-type]
    except KeyError:
        return True
    if lo is math.inf:
        return False
    op = pred.op if left_side else _mirror(pred.op)
    if op == "<":
        return value < hi
    if op == "<=":
        return value <= hi
    if op == ">":
        return value > lo
    if op == ">=":
        return value >= lo
    if op == "=":
        return lo <= value <= hi
    return True


def _mirror(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


@dataclass
class ViolationPair:
    """One DC violation: the ordered (t1, t2) tids satisfying all predicates."""

    t1: int
    t2: int


def _canonical_cell_order(pairs: list[ViolationPair]) -> list[ViolationPair]:
    """One cell's violations in canonical form: stable (t1, t2) sort + dedup.

    Every ordered pair belongs to exactly one cell, so per-cell canonical
    order plus deterministic cell order yields one total violation order —
    serial and fanned-out checks can be compared with plain list equality.
    """
    pairs.sort(key=lambda v: (v.t1, v.t2))
    if len(pairs) < 2:
        return pairs
    out = [pairs[0]]
    for pair in pairs[1:]:
        last = out[-1]
        if pair.t1 != last.t1 or pair.t2 != last.t2:
            out.append(pair)
    return out


@shared_engine_state
class _StripeColumns:
    """Columnar mirror of one matrix stripe.

    Per constraint attribute: the plain-collapsed numeric value of every
    stripe row (``numeric[attr][k]``, same values the bounding boxes and
    intra-partition pruning reason about), the in-stripe positions holding a
    probabilistic cell (``uncertain[attr]``), and a lazily built sort order
    of the concrete rows (``sorted_by(attr)``) that drives the sort-based
    inequality join.
    """

    __slots__ = ("rows", "numeric", "raw", "uncertain", "column_backend",
                 "_sorted", "_numeric_arrays")

    #: Lazy caches: filled on first demand, dropped by ``invalidate`` when a
    #: patch rewrites the stripe — both only ever run inside matrix
    #: maintenance/check passes, which the service tier serializes per table.
    MUTATED_UNDER = {
        "_sorted": ("_StripeColumns.sorted_by", "_StripeColumns.invalidate"),
        "_numeric_arrays": (
            "_StripeColumns.numeric_array",
            "_StripeColumns.invalidate",
        ),
    }

    def __init__(
        self,
        rows: Sequence[Row],
        attrs: Sequence[str],
        indexes: dict[str, int],
        column_backend: str = COLUMN_PYTHON,
    ) -> None:
        self.rows = rows
        self.numeric: dict[str, list[float | None]] = {}
        self.raw: dict[str, list[Any]] = {}
        self.uncertain: dict[str, frozenset[int]] = {}
        self.column_backend = column_backend
        self._sorted: dict[str, SortedColumn] = {}
        #: Lazy float64 mirror of ``numeric`` (None -> NaN) the vectorized
        #: intra-partition pruning scans; invalidated with the sort cache
        #: whenever the maintenance layer patches stripe content.
        self._numeric_arrays: dict[str, Any] = {}
        for attr in attrs:
            idx = indexes[attr]
            cells = [row.values[idx] for row in rows]
            self.raw[attr] = cells
            self.numeric[attr] = [_numeric(c) for c in cells]
            self.uncertain[attr] = frozenset(
                k for k, c in enumerate(cells) if isinstance(c, PValue)
            )

    def invalidate(self, attr: str) -> None:
        """Drop the lazy caches of one attribute after an in-place patch."""
        self._sorted.pop(attr, None)
        self._numeric_arrays.pop(attr, None)

    def numeric_array(self, attr: str) -> Any:
        """``numeric[attr]`` as a NaN-padded float64 ndarray (numpy backend)."""
        arr = self._numeric_arrays.get(attr)
        if arr is None:
            arr = kernels.numeric_array(self.numeric[attr])
            self._numeric_arrays[attr] = arr
        return arr

    def sorted_by(self, attr: str) -> SortedColumn:
        """Concrete numeric rows of the stripe in sorted order.

        Sorts the *raw* cell values (ints stay ints), so binary-search
        decisions are exact even where float collapsing would round.
        Under the numpy backend the order comes from a stable argsort —
        byte-identical to the pair sort whenever the raw values are
        exactly representable, and falling back otherwise.
        """
        cached = self._sorted.get(attr)
        if cached is not None:
            return cached
        uncertain = self.uncertain[attr]
        numeric = self.numeric[attr]
        eligible = [
            k for k in range(len(self.rows))
            if k not in uncertain and numeric[k] is not None
        ]
        raw = self.raw[attr]
        positions: list[int] | None = None
        exact = None
        if self.column_backend == COLUMN_NUMPY:
            sorted_pair = kernels.argsort_positions(
                [raw[k] for k in eligible], eligible
            )
            if sorted_pair is not None:
                positions, exact = sorted_pair
        if positions is None:
            pairs = [(raw[k], k) for k in eligible]
            pairs.sort()
            positions = [k for _, k in pairs]
        result = SortedColumn([raw[k] for k in positions], positions, exact)
        self._sorted[attr] = result
        return result


@shared_engine_state
class ThetaJoinMatrix:
    """Incremental matrix-partitioned self theta-join for one binary DC.

    The matrix is (re)built from a relation: rows are sorted by the primary
    attribute and split into ``sqrt_p`` contiguous stripes, giving
    ``sqrt_p × sqrt_p`` cells.  :meth:`check_full` checks every candidate
    cell; :meth:`check_partial` checks only cells involving the given query
    tids and not yet checked, recording progress for incremental reuse.

    The matrix lives on the shared per-table state; its seams are the
    rebuild path plus the incremental-maintenance entry points in
    :mod:`repro.detection.maintenance` (``sync_matrix`` patches stripes and
    bounding boxes in place, ``_rederive_stripe`` recomputes one stripe).
    Check passes only append to ``checked_cells``.
    """

    MUTATED_UNDER = {
        "relation": ("ThetaJoinMatrix.rebuild", "sync_matrix"),
        "stripes": ("ThetaJoinMatrix.rebuild", "_rederive_stripe", "sync_matrix"),
        "_stripe_cols": (
            "ThetaJoinMatrix.rebuild",
            "_rederive_stripe",
            "sync_matrix",
        ),
        "bboxes": ("ThetaJoinMatrix.rebuild", "_rederive_stripe", "sync_matrix"),
        "indexes": ("ThetaJoinMatrix.rebuild",),
        "_relpos": ("ThetaJoinMatrix.rebuild",),
        "_stripe_of_tid": ("ThetaJoinMatrix.rebuild",),
        "checked_cells": ("ThetaJoinMatrix.check_cells", "sync_matrix"),
    }

    def __init__(
        self,
        relation: Relation,
        dc: DenialConstraint,
        sqrt_p: int = 8,
        counter: WorkCounter | None = None,
        backend: str = BACKEND_COLUMNAR,
        column_backend: str = COLUMN_PYTHON,
        storage: Any = None,
    ) -> None:
        if dc.arity != 2:
            raise ConstraintError(
                f"theta-join detection supports binary DCs, got arity {dc.arity}"
            )
        self.dc = dc
        self.sqrt_p = max(1, sqrt_p)
        self.counter = counter if counter is not None else GLOBAL_COUNTER
        self.backend = validate_backend(backend)
        #: Resolved kernel backend for stripe sort orders and pruning masks
        #: ("auto" resolves on the relation's row count; numpy degrades to
        #: python when unavailable).  Byte-identical either way.
        self.column_backend = kernels.resolve_column_backend(
            column_backend, len(relation.rows)
        )
        two_tuple_preds = [
            p for p in dc.predicates if not p.is_constant() and not p.is_single_tuple()
        ]
        if not two_tuple_preds:
            raise ConstraintError("DC has no two-tuple predicate to partition on")
        self.two_tuple_preds = two_tuple_preds
        #: Attribute whose sorted order defines the matrix axes.
        self.primary_attr = two_tuple_preds[0].left_attr
        #: Predicate driving the sort-based join (first orderable two-tuple
        #: predicate) and the remaining predicates it leaves to verify.
        self.driving_pred: Predicate | None = next(
            (p for p in two_tuple_preds if p.op != "!="), None
        )
        self.rest_preds = [p for p in dc.predicates if p is not self.driving_pred]
        self.attrs = sorted(dc.attributes())
        #: Optional :class:`~repro.storage.provider.TableStorage`: lets the
        #: rebuild sort and candidate windows come from the SQLite pushdown
        #: mirror instead of materializing full columns.  Every pushed
        #: answer is audited against the relation before use, so results
        #: are byte-identical with or without it.
        self.storage = storage
        self.rebuild(relation)
        #: Cells already checked, as (i, j) with i <= j.
        self.checked_cells: set[tuple[int, int]] = set()

    # -- construction -----------------------------------------------------------

    def rebuild(self, relation: Relation) -> None:
        """(Re)derive stripes and bounding boxes from the relation.

        The stable sort by primary value is order-equivalent to sorting by
        ``(value, relation row position)``; :attr:`_relpos` records each
        tid's row position so the incremental maintenance layer
        (:mod:`repro.detection.maintenance`) can re-insert re-routed tids at
        exactly the position a cold rebuild would give them.
        """
        self.relation = relation
        self.indexes = {a: relation.schema.index_of(a) for a in self.attrs}
        primary_idx = self.indexes[self.primary_attr]
        self._relpos = {row.tid: pos for pos, row in enumerate(relation.rows)}
        keyed = self._pushdown_keyed(relation, primary_idx)
        if keyed is None:
            keyed = [
                (v, row)
                for row in relation.rows
                if (v := _numeric(row.values[primary_idx])) is not None
            ]
            keyed.sort(key=lambda kv: kv[0])
        n = len(keyed)
        stripes: list[list[Row]] = []
        if n == 0:
            stripes = [[]]
        else:
            per = max(1, math.ceil(n / self.sqrt_p))
            for start in range(0, n, per):
                stripes.append([row for _v, row in keyed[start:start + per]])
        self.stripes = stripes
        self.bboxes = [
            _stripe_bbox(stripe, self.attrs, self.indexes) for stripe in self.stripes
        ]
        self._stripe_of_tid: dict[int, int] = {}
        for i, stripe in enumerate(self.stripes):
            for row in stripe:
                self._stripe_of_tid[row.tid] = i
        if self.backend == BACKEND_COLUMNAR:
            self._stripe_cols = [
                _StripeColumns(
                    stripe, self.attrs, self.indexes,
                    column_backend=self.column_backend,
                )
                for stripe in self.stripes
            ]

    def _pushdown_keyed(
        self, relation: Relation, primary_idx: int
    ) -> list[tuple[float, Row]] | None:
        """The primary-axis sort order via SQLite ORDER-BY pushdown.

        The mirror's answer is trusted only after an O(n) audit proving it
        *is* the oracle order: the returned positions must cover exactly
        the relation's numeric rows and be strictly increasing under the
        oracle's (collapsed value, row position) sort key, with the values
        re-read from the relation itself (the mirror's stored values are
        never consumed).  Any mismatch — a stale mirror, row churn, a
        non-numeric column — falls back to the in-memory sort, so the
        stripes are byte-identical either way; the pushdown only replaces
        the O(n log n) sort with an indexed scan.
        """
        if self.storage is None:
            return None
        pushed = self.storage.pushdown_sorted(self.primary_attr)
        if pushed is None:
            return None
        _values, positions = pushed
        rows = relation.rows
        n = len(rows)
        eligible = sum(
            1 for row in rows if _numeric(row.values[primary_idx]) is not None
        )
        if len(positions) != eligible:
            return None
        keyed: list[tuple[float, Row]] = []
        prev_key: tuple[float, int] | None = None
        for pos in positions:
            if not 0 <= pos < n:
                return None
            row = rows[pos]
            value = _numeric(row.values[primary_idx])
            if value is None:
                return None
            key = (value, pos)
            if prev_key is not None and key <= prev_key:
                return None
            prev_key = key
            keyed.append((value, row))
        return keyed

    def pushdown_window_positions(
        self, attr: str, low: float, high: float
    ) -> list[int] | None:
        """Candidate row positions with ``attr`` in ``[low, high]`` from the
        SQLite mirror's indexed BETWEEN scan — the bounded alternative to
        materializing a full column and scanning it (the DMR-style window
        shrinking of the paper's partial theta-join, pushed to storage).
        ``None`` when the matrix has no pushdown storage or the attribute
        is not exactly mirrorable; callers then fall back to stripe scans.
        """
        if self.storage is None:
            return None
        return self.storage.pushdown_window(attr, low, high)

    def num_stripes(self) -> int:
        return len(self.stripes)

    def total_cells(self) -> int:
        """Upper-triangle cell count: sqrt_p * (sqrt_p + 1) / 2."""
        s = self.num_stripes()
        return s * (s + 1) // 2

    # -- pair checking ------------------------------------------------------------

    def _pair_violates(self, row_a: Row, row_b: Row, counter: WorkCounter) -> bool:
        counter.charge_comparisons()
        return all(p.evaluate((row_a, row_b), self.indexes) for p in self.dc.predicates)

    def _pair_violates_rest(self, row_a: Row, row_b: Row, counter: WorkCounter) -> bool:
        """All predicates except the driving one (already proven by bisect)."""
        counter.charge_comparisons()
        return all(p.evaluate((row_a, row_b), self.indexes) for p in self.rest_preds)

    def _check_cell(
        self, i: int, j: int, counter: WorkCounter | None = None
    ) -> list[ViolationPair]:
        """Check all (ordered) pairs of cell (i, j), with intra-cell pruning.

        For the diagonal (i == j) each unordered pair is checked in both
        orders once; off-diagonal cells check stripe_i × stripe_j in both
        orders (the constraint's tuple variables are ordered).

        Side-effect-free apart from work accounting: ``counter`` (defaulting
        to the matrix counter) receives this cell's charges, so parallel
        runs hand each cell task its own counter and merge the tallies
        afterwards.  The returned pairs are in canonical per-cell order —
        stably sorted by (t1, t2) and deduplicated — making every caller's
        merged violation list deterministic (cells are disjoint in the
        ordered pairs they cover, so cell order + in-cell order is a total
        order).
        """
        counter = counter if counter is not None else self.counter
        preds = self.dc.predicates
        box_i, box_j = self.bboxes[i], self.bboxes[j]
        # Cell-level pruning: every predicate must be satisfiable in at
        # least one orientation of the pair.
        forward_possible = all(_cell_may_violate(p, box_i, box_j) for p in preds)
        backward_possible = i != j and all(
            _cell_may_violate(p, box_j, box_i) for p in preds
        )
        if i == j:
            backward_possible = forward_possible
        if not forward_possible and not backward_possible:
            counter.charge_partition(pruned=1)
            return []
        counter.charge_partition(checked=1)

        out: list[ViolationPair] = []
        if self.backend == BACKEND_COLUMNAR:
            if forward_possible:
                out.extend(self._scan_columnar(i, j, same=(i == j), counter=counter))
            if i != j and backward_possible:
                out.extend(self._scan_columnar(j, i, same=False, counter=counter))
            return _canonical_cell_order(out)

        stripe_i, stripe_j = self.stripes[i], self.stripes[j]

        def scan(rows_a: Sequence[Row], rows_b: Sequence[Row], box_b: BoundingBox,
                 box_a: BoundingBox, same: bool) -> None:
            # Intra-partition pruning on the "a" side for each predicate.
            filtered_a = []
            for row in rows_a:
                ok = True
                for p in preds:
                    if p.is_constant() or p.is_single_tuple():
                        continue
                    value = _numeric(row.values[self.indexes[p.left_attr]])
                    if not _row_may_qualify(p, value, box_b, left_side=True):
                        ok = False
                        break
                if ok:
                    filtered_a.append(row)
            filtered_b = []
            for row in rows_b:
                ok = True
                for p in preds:
                    if p.is_constant() or p.is_single_tuple():
                        continue
                    value = _numeric(row.values[self.indexes[p.right_attr]])  # type: ignore[index]
                    if not _row_may_qualify(p, value, box_a, left_side=False):
                        ok = False
                        break
                if ok:
                    filtered_b.append(row)
            for a in filtered_a:
                for b in filtered_b:
                    if same and a.tid == b.tid:
                        continue
                    if self._pair_violates(a, b, counter):
                        out.append(ViolationPair(a.tid, b.tid))

        if forward_possible:
            scan(stripe_i, stripe_j, box_j, box_i, same=(i == j))
        if i != j and backward_possible:
            scan(stripe_j, stripe_i, box_i, box_j, same=False)
        return _canonical_cell_order(out)

    # -- columnar sort-based scan ---------------------------------------------------

    def _filtered_positions(
        self, stripe: int, box_other: BoundingBox, left_side: bool
    ) -> list[int]:
        """Intra-partition pruning over the stripe's numeric arrays.

        Makes exactly the row-store pruning decisions (same collapsed
        values, same ``_row_may_qualify`` test), just without touching Row
        objects per predicate.  The numpy backend evaluates each
        predicate as one comparison over the stripe's NaN-padded float
        array — NaN (a ``None`` value) fails every comparison, which is
        the oracle's "``value is None`` → ``False``" first check.
        """
        cols = self._stripe_cols[stripe]
        n = len(cols.rows)
        if self.column_backend == COLUMN_NUMPY and n:
            mask = None
            for p in self.two_tuple_preds:
                attr = p.left_attr if left_side else p.right_attr
                other_attr = p.right_attr if left_side else p.left_attr
                arr = cols.numeric_array(attr)
                op = p.op if left_side else _mirror(p.op)
                try:
                    lo, hi = box_other.range_of(other_attr)  # type: ignore[arg-type]
                except KeyError:
                    # Attr missing from the box: the oracle keeps every
                    # non-null row, so only the validity check applies.
                    pred_mask = kernels.numeric_mask_positions(
                        arr, "!=", 0.0, 0.0, False
                    )
                else:
                    pred_mask = kernels.numeric_mask_positions(
                        arr, op, lo, hi, lo is math.inf
                    )
                mask = pred_mask if mask is None else mask & pred_mask
                if not bool(mask.any()):
                    return []
            if mask is None:
                return list(range(n))
            return kernels.mask_to_positions(mask)
        alive = list(range(n))
        for p in self.two_tuple_preds:
            attr = p.left_attr if left_side else p.right_attr
            numeric = cols.numeric[attr]  # type: ignore[index]
            alive = [
                k for k in alive
                if _row_may_qualify(p, numeric[k], box_other, left_side=left_side)
            ]
            if not alive:
                break
        return alive

    def _scan_columnar(
        self, si: int, sj: int, same: bool, counter: WorkCounter
    ) -> list[ViolationPair]:
        """Ordered pairs (a ∈ stripe si, b ∈ stripe sj) violating the DC.

        The driving predicate restricts, for each concrete probe row, the
        qualifying range of the b-side sort order via binary search; only
        that range (plus the probabilistic rows) is verified against the
        remaining predicates.  Output order matches the row-store scan.
        """
        box_a, box_b = self.bboxes[si], self.bboxes[sj]
        filtered_a = self._filtered_positions(si, box_b, left_side=True)
        if not filtered_a:
            return []
        filtered_b = self._filtered_positions(sj, box_a, left_side=False)
        if not filtered_b:
            return []
        cols_a, cols_b = self._stripe_cols[si], self._stripe_cols[sj]
        rows_a, rows_b = self.stripes[si], self.stripes[sj]
        out: list[ViolationPair] = []

        driving = self.driving_pred
        if driving is None:
            # Only '!=' two-tuple predicates: nothing to sort on.
            for k in filtered_a:
                a = rows_a[k]
                for l in filtered_b:
                    b = rows_b[l]
                    if same and a.tid == b.tid:
                        continue
                    if self._pair_violates(a, b, counter):
                        out.append(ViolationPair(a.tid, b.tid))
            return out

        l_attr = driving.left_attr
        r_attr: str = driving.right_attr  # type: ignore[assignment]
        op = driving.op
        b_uncertain_all = cols_b.uncertain[r_attr]
        sorted_b = cols_b.sorted_by(r_attr)
        if len(filtered_b) != len(rows_b):
            filtered_b_set = set(filtered_b)
            keep = [p in filtered_b_set for p in sorted_b.positions]
            sorted_b = SortedColumn(
                [v for v, k in zip(sorted_b.values, keep) if k],
                [p for p, k in zip(sorted_b.positions, keep) if k],
                kernels.subset_exact(sorted_b.exact, keep),
            )
        uncertain_b = [l for l in filtered_b if l in b_uncertain_all]
        a_uncertain = cols_a.uncertain[l_attr]
        a_raw = cols_a.raw[l_attr]
        # The driving predicate reads "probe op b_value"; the shared
        # sorted-column helper answers "b_value op' bound", so probe with
        # the mirrored operator.
        mirrored_op = _mirror(op)

        # Numpy backend: derive every probe's qualifying window in one
        # searchsorted batch — bit-identical cuts to the per-probe bisect
        # whenever both sides vectorize exactly.
        window_of: dict[int, list[int]] | None = None
        if self.column_backend == COLUMN_NUMPY:
            concrete_a = [k for k in filtered_a if k not in a_uncertain]
            if concrete_a:
                cuts = kernels.search_cuts(
                    sorted_b.values,
                    [a_raw[k] for k in concrete_a],
                    mirrored_op,
                    values_exact=sorted_b.exact,
                )
                if cuts is not None:
                    spos = sorted_b.positions
                    window_of = {}
                    if mirrored_op == "=":
                        lo_cuts, hi_cuts = cuts
                        for i, k in enumerate(concrete_a):
                            window_of[k] = spos[int(lo_cuts[i]):int(hi_cuts[i])]
                    elif mirrored_op in ("<", "<="):
                        for i, k in enumerate(concrete_a):
                            window_of[k] = spos[: int(cuts[i])]
                    else:
                        for i, k in enumerate(concrete_a):
                            window_of[k] = spos[int(cuts[i]):]

        for k in filtered_a:
            a = rows_a[k]
            if k in a_uncertain:
                # Probabilistic probe value: the bisect bound is unsound for
                # it, so verify every predicate against the whole stripe.
                for l in filtered_b:
                    b = rows_b[l]
                    if same and a.tid == b.tid:
                        continue
                    if self._pair_violates(a, b, counter):
                        out.append(ViolationPair(a.tid, b.tid))
                continue
            v = a_raw[k]
            if window_of is not None:
                selected = window_of[k]
            else:
                selected = sorted_b.range_positions(mirrored_op, v)
            if uncertain_b:
                candidates = sorted(selected + uncertain_b)
            else:
                candidates = sorted(selected)
            for l in candidates:
                b = rows_b[l]
                if same and a.tid == b.tid:
                    continue
                if l in b_uncertain_all:
                    if self._pair_violates(a, b, counter):
                        out.append(ViolationPair(a.tid, b.tid))
                elif self._pair_violates_rest(a, b, counter):
                    out.append(ViolationPair(a.tid, b.tid))
        return out

    # -- public API ----------------------------------------------------------------

    def candidate_cells(
        self, query_tids: Iterable[int] | None = None
    ) -> list[tuple[int, int]]:
        """Upper-triangle cells still to check, in deterministic scan order.

        With ``query_tids``, only cells involving a stripe that contains a
        query tuple are candidates (the partial theta-join's relevance
        filter); already-checked cells are always excluded.
        """
        touched: set[int] | None = None
        if query_tids is not None:
            touched = {
                self._stripe_of_tid[tid]
                for tid in query_tids
                if tid in self._stripe_of_tid
            }
            if not touched:
                return []
        out: list[tuple[int, int]] = []
        s = self.num_stripes()
        for i in range(s):
            for j in range(i, s):
                if (i, j) in self.checked_cells:
                    continue
                if touched is not None and i not in touched and j not in touched:
                    continue
                out.append((i, j))
        return out

    def check_cells(
        self,
        cells: Sequence[tuple[int, int]],
        pool: "ExecutorPool" | None = None,
    ) -> list[ViolationPair]:
        """Check the given cells, optionally fanned out over a pool.

        Cells are independent (PR 1 made :meth:`_check_cell` side-effect
        free), so with a pool each cell runs as one task with a private
        :class:`WorkCounter`; partial violation lists and counters are
        merged **in cell order**, making the result — and the matrix
        counter's totals — byte-identical to a serial run.  Checked cells
        are recorded only after all tasks complete.
        """
        out: list[ViolationPair] = []
        if pool is None or pool.workers <= 1 or len(cells) <= 1:
            for i, j in cells:
                out.extend(self._check_cell(i, j))
                self.checked_cells.add((i, j))
            return out

        # Process pools pickle results across the process boundary; plain
        # (t1, t2) int tuples serialize an order of magnitude cheaper than
        # ViolationPair instances, and rebuilding in task order preserves
        # byte-identity.
        compact = pool.kind == "process"

        def task_for(
            cell: tuple[int, int]
        ) -> Callable[[], tuple[list[Any], WorkCounter]]:
            def task() -> tuple[list[Any], WorkCounter]:
                local = WorkCounter()
                pairs = self._check_cell(cell[0], cell[1], counter=local)
                if compact:
                    return [(v.t1, v.t2) for v in pairs], local
                return pairs, local

            return task

        results = pool.run([task_for(cell) for cell in cells])
        for cell, (violations, local) in zip(cells, results):
            if compact:
                out.extend(ViolationPair(t1, t2) for t1, t2 in violations)
            else:
                out.extend(violations)
            self.counter.merge(local)
            self.checked_cells.add(cell)
        return out

    def check_full(
        self, pool: "ExecutorPool" | None = None
    ) -> list[ViolationPair]:
        """Check every not-yet-checked upper-triangle cell (offline mode)."""
        return self.check_cells(self.candidate_cells(), pool=pool)

    def check_partial(
        self, query_tids: Iterable[int], pool: "ExecutorPool" | None = None
    ) -> list[ViolationPair]:
        """Check only cells involving the query's stripes (partial theta-join).

        A cell (i, j) is relevant if stripe i or stripe j contains a query
        tuple; previously checked cells are skipped and newly checked cells
        are recorded — the incremental matrix of Fig. 2.
        """
        return self.check_cells(self.candidate_cells(query_tids), pool=pool)

    def estimate_cells_cost(self, cells: Sequence[tuple[int, int]]) -> float:
        """Pair-count upper bound of checking ``cells`` (no work charged).

        Diagonal cells check each unordered pair once per orientation
        (|s|·|s| worst case); off-diagonal cells check both orientations of
        stripe_i × stripe_j.  This is the raw unit the adaptive planner's
        ``dc_check`` calibration bucket rescales into observed work —
        cell-level and intra-cell pruning make the real cost smaller, by a
        workload-dependent factor the calibration learns.
        """
        total = 0.0
        for i, j in cells:
            size_i = len(self.stripes[i])
            size_j = len(self.stripes[j])
            total += size_i * size_j * (1.0 if i == j else 2.0)
        return total

    def support(self) -> float:
        """Fraction of diagonal-inclusive triangle cells checked so far.

        Algorithm 2's *support* statistic: (1+2+…+√p − unchecked)/ (1+2+…+√p).
        """
        total = self.total_cells()
        if total == 0:
            return 1.0
        return len(self.checked_cells) / total

    def unchecked_cells(self) -> int:
        return self.total_cells() - len(self.checked_cells)

    def stripes_overlapping_range(self, low: float, high: float) -> set[int]:
        """Stripes whose primary-attribute range intersects [low, high]."""
        out = set()
        for i, box in enumerate(self.bboxes):
            lo, hi = box.range_of(self.primary_attr)
            if lo is math.inf:
                continue
            if not (hi < low or lo > high):
                out.add(i)
        return out
