"""Runtime diagnostics for the Daisy engine.

The only resident today is the race witness (:mod:`.witness`), the dynamic
half of the ownership contract declared in :mod:`repro._ownership` and
checked statically by daisylint's DL100-series rules.  Diagnostics are
strictly opt-in (``DaisyConfig(diagnostics="witness")`` or the
``REPRO_TEST_DIAGNOSTICS`` environment variable in the test harness) and
must never change engine results — the parity suites run byte-identical
with the witness attached.
"""

from repro.diagnostics.witness import (
    RaceWitness,
    WitnessEvent,
    WitnessViolation,
    global_witness,
    watching,
)

__all__ = [
    "RaceWitness",
    "WitnessEvent",
    "WitnessViolation",
    "global_witness",
    "watching",
]
