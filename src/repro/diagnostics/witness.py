"""Race witness: dynamic validation of the declared ownership contracts.

daisylint's DL100-series rules prove *statically* that every mutation of
annotated engine state happens inside a declared seam.  This module is the
*dynamic* counterpart: when activated it instruments every class in
:data:`repro._ownership.OWNERSHIP_REGISTRY` — wrapping ``__setattr__`` /
``__delattr__``, the construction methods, and the declared mutating
accessors — and records every attribute write as a
``(class, attr, site, thread, pid, phase)`` event.  An event *contradicts*
the declared ownership when:

* ``shared_engine_state`` — a post-construction write lands outside the
  attribute's ``MUTATED_UNDER`` seam (checked with the same
  :func:`repro._ownership.site_allowed` suffix matching the static rules
  compile, so the two layers cannot drift), or
* ``immutable_after_init`` — any write lands after construction, or
* ``session_owned`` — post-construction writes to one instance arrive
  from more than one thread (the confinement claim is exactly
  "single writing thread").

Fork-process pool children are exempt from the cross-thread analysis:
their copy-on-write state is private by construction, so child-side
events (recognised by ``os.getpid()`` differing from the activating
process) are recorded but never escalate to violations — and die with
the child anyway.

The witness observes what the interpreter lets it observe: rebinding
writes and declared-accessor aliases.  In-place container mutation
through a plain attribute read (``self.cells.add(x)``) raises no
``__setattr__`` and is invisible here, exactly as it is to the static
tracker unless routed through a ``MUTATING_ACCESSORS`` entry — the shared
blind spot is documented in ``docs/static-analysis.md``.

Activation is reference-counted (every ``Daisy(diagnostics="witness")``
activates, every ``close()`` deactivates) and idempotent per class.  On
final deactivation the witness restores every wrapped method and, when
``REPRO_WITNESS_REPORT`` names a path, writes its JSON report there —
the artifact the CI race-witness job uploads.
"""

from __future__ import annotations

import functools
import json
import os
import sys
import threading
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro._ownership import (
    IMMUTABLE_AFTER_INIT,
    OWNERSHIP_REGISTRY,
    SESSION_OWNED,
    SHARED_ENGINE_STATE,
    OwnershipSpec,
    site_allowed,
)

#: Environment variable naming the JSON report path written on deactivation.
REPORT_ENV = "REPRO_WITNESS_REPORT"

#: Construction phase marker vs. steady-state.
PHASE_INIT = "init"
PHASE_POST_INIT = "post-init"


@dataclass(frozen=True)
class WitnessEvent:
    """One observed attribute write."""

    cls: str
    attr: str
    site: str
    thread: int
    thread_name: str
    pid: int
    phase: str

    def to_json(self) -> dict[str, Any]:
        return {
            "cls": self.cls,
            "attr": self.attr,
            "site": self.site,
            "thread": self.thread,
            "thread_name": self.thread_name,
            "pid": self.pid,
            "phase": self.phase,
        }


@dataclass(frozen=True)
class WitnessViolation:
    """One event that contradicts the declared ownership."""

    kind: str
    reason: str
    event: WitnessEvent

    def to_json(self) -> dict[str, Any]:
        return {"kind": self.kind, "reason": self.reason,
                "event": self.event.to_json()}


def _dotted_site(frame: Any) -> str:
    """``module.qualname`` of a frame (``co_qualname`` on 3.11+)."""
    module = frame.f_globals.get("__name__", "?")
    qualname = getattr(frame.f_code, "co_qualname", frame.f_code.co_name)
    return f"{module}.{qualname}"


def _site_candidates(site: str) -> list[str]:
    """The site plus every enclosing function (``.<locals>.`` peeled).

    Mirrors ``tools.daisylint.project.site_candidates``: a write inside a
    closure defined in a seam method still counts as that seam.
    """
    out = [site]
    current = site
    while ".<locals>." in current:
        current = current.rsplit(".<locals>.", 1)[0]
        out.append(current)
    return out


def _caller_site(depth: int) -> tuple[str, str]:
    """``(module, dotted site)`` ``depth`` frames above this helper's caller.

    Frames from this module itself are skipped: when two witnesses are
    active (a test's local instance stacked on the global one), the inner
    wrapper delegates to the outer, and the outer must still attribute
    the write to the real mutating frame, not to the inner wrapper.
    """
    frame = sys._getframe(depth + 1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - the stack always has a root
        return "?", "?"
    return frame.f_globals.get("__name__", "?"), _dotted_site(frame)


def _harness_module(module: str) -> bool:
    """Whether a module is test/doc harness code, exempt from ownership.

    The ownership contracts bind *engine* code; the test suite is the
    omniscient single-threaded supervisor and may hand-assemble engine
    objects (parity fixtures build ColumnViews directly, maintenance tests
    reset matrices to compare cold rebuilds).  Writes from such frames are
    recorded in the event stream but never escalate to violations.
    Seeded-bug fixtures live outside these name patterns on purpose, so
    the self-test still proves the witness fires.
    """
    leaf = module.rsplit(".", 1)[-1]
    return (
        leaf.startswith("test_")
        or leaf.startswith("docsnippet_")
        or leaf == "conftest"
    )


@dataclass
class _Wrapped:
    """Original attributes of one instrumented class, for restoration."""

    cls: type
    #: name -> original function object present in ``cls.__dict__``
    originals: dict[str, Any] = field(default_factory=dict)
    #: names that were *absent* from ``cls.__dict__`` before wrapping
    added: list[str] = field(default_factory=list)


class RaceWitness:
    """Instrument annotated classes and collect contradiction evidence."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._activations = 0
        self._wrapped: list[_Wrapped] = []
        self._root_pid = 0
        self.events: list[WitnessEvent] = []
        self.violations: list[WitnessViolation] = []
        #: id(instance) -> construction-in-progress depth.
        self._constructing: dict[int, int] = {}
        #: id(instance) -> first post-init writer thread (session_owned).
        self._writer_thread: dict[int, tuple[int, str]] = {}

    # -- lifecycle -----------------------------------------------------------------

    @property
    def active(self) -> bool:
        return self._activations > 0

    def activate(self) -> None:
        """Instrument every registered class (reference-counted)."""
        with self._lock:
            self._activations += 1
            if self._activations > 1:
                return
            self._root_pid = os.getpid()
            for cls, spec in list(OWNERSHIP_REGISTRY.items()):
                self._instrument(cls, spec)

    def deactivate(self) -> None:
        """Drop one activation; restore classes and report on the last."""
        with self._lock:
            if self._activations == 0:
                return
            self._activations -= 1
            if self._activations > 0:
                return
            for record in reversed(self._wrapped):
                for name, original in record.originals.items():
                    setattr(record.cls, name, original)
                for name in record.added:
                    try:
                        delattr(record.cls, name)
                    except AttributeError:
                        pass
            self._wrapped.clear()
            self._write_report()

    def reset(self) -> None:
        """Forget recorded events/violations (instrumentation stays)."""
        with self._lock:
            self.events.clear()
            self.violations.clear()
            self._writer_thread.clear()

    # -- recording -----------------------------------------------------------------

    def _observe(
        self,
        spec: OwnershipSpec,
        instance: Any,
        attr: str,
        module: str,
        site: str,
    ) -> None:
        thread = threading.current_thread()
        pid = os.getpid()
        constructing = self._constructing.get(id(instance), 0) > 0
        phase = PHASE_INIT if constructing else PHASE_POST_INIT
        event = WitnessEvent(
            cls=spec.class_name,
            attr=attr,
            site=site,
            thread=thread.ident or 0,
            thread_name=thread.name,
            pid=pid,
            phase=phase,
        )
        with self._lock:
            self.events.append(event)
        if constructing:
            return
        if pid != self._root_pid:
            # Fork-pool child: copy-on-write state is private; record only.
            return
        if _harness_module(module):
            return
        if spec.kind == IMMUTABLE_AFTER_INIT:
            self._flag("immutable-write", event,
                       f"{spec.class_name}.{attr} written after construction")
        elif spec.kind == SHARED_ENGINE_STATE:
            if not self._seam_ok(spec, attr, site):
                seams = ", ".join(spec.seams_for(attr)) or "<none declared>"
                self._flag(
                    "seam-violation", event,
                    f"{spec.class_name}.{attr} written at {site}, outside "
                    f"its declared seams ({seams})",
                )
        elif spec.kind == SESSION_OWNED:
            key = id(instance)
            ident = (thread.ident or 0, thread.name)
            first = self._writer_thread.setdefault(key, ident)
            if first[0] != ident[0]:
                self._flag(
                    "cross-thread-write", event,
                    f"{spec.class_name}.{attr} written by thread "
                    f"{ident[1]!r} but instance is owned by {first[1]!r}",
                )

    def _seam_ok(self, spec: OwnershipSpec, attr: str, site: str) -> bool:
        return any(
            site_allowed(spec, attr, candidate)
            for candidate in _site_candidates(site)
        )

    def _flag(self, kind: str, event: WitnessEvent, reason: str) -> None:
        with self._lock:
            self.violations.append(WitnessViolation(kind, reason, event))

    # -- instrumentation -----------------------------------------------------------

    def _instrument(self, cls: type, spec: OwnershipSpec) -> None:
        record = _Wrapped(cls=cls)
        self._wrap_setattr(cls, spec, record)
        self._wrap_delattr(cls, spec, record)
        for name in spec.init_methods:
            self._wrap_init(cls, name, record)
        for name in spec.mutating_accessors:
            self._wrap_accessor(cls, spec, name, record)
        self._wrapped.append(record)

    def _stash(self, cls: type, name: str, record: _Wrapped) -> Any:
        """Remember the pre-wrap state of ``cls.__dict__[name]``."""
        if name in cls.__dict__:
            record.originals[name] = cls.__dict__[name]
            return cls.__dict__[name]
        record.added.append(name)
        return None

    def _wrap_setattr(
        self, cls: type, spec: OwnershipSpec, record: _Wrapped
    ) -> None:
        self._stash(cls, "__setattr__", record)
        original = cls.__setattr__  # bound through the MRO
        witness = self

        @functools.wraps(original)
        def wrapped_setattr(self_: Any, name: str, value: Any) -> None:
            module, site = _caller_site(1)
            witness._observe(spec, self_, name, module, site)
            original(self_, name, value)

        cls.__setattr__ = wrapped_setattr  # type: ignore[method-assign]

    def _wrap_delattr(
        self, cls: type, spec: OwnershipSpec, record: _Wrapped
    ) -> None:
        self._stash(cls, "__delattr__", record)
        original = cls.__delattr__
        witness = self

        @functools.wraps(original)
        def wrapped_delattr(self_: Any, name: str) -> None:
            module, site = _caller_site(1)
            witness._observe(spec, self_, name, module, site)
            original(self_, name)

        cls.__delattr__ = wrapped_delattr  # type: ignore[method-assign]

    def _wrap_init(self, cls: type, name: str, record: _Wrapped) -> None:
        original = cls.__dict__.get(name)
        if original is None or not callable(original):
            return
        self._stash(cls, name, record)
        witness = self

        @functools.wraps(original)
        def wrapped_init(self_: Any, *args: Any, **kwargs: Any) -> Any:
            key = id(self_)
            # A fresh construction retires any owner recorded for a
            # garbage-collected instance that recycled this id.
            witness._writer_thread.pop(key, None)
            witness._constructing[key] = witness._constructing.get(key, 0) + 1
            try:
                return original(self_, *args, **kwargs)
            finally:
                depth = witness._constructing.get(key, 1) - 1
                if depth <= 0:
                    witness._constructing.pop(key, None)
                else:
                    witness._constructing[key] = depth

        setattr(cls, name, wrapped_init)

    def _wrap_accessor(
        self, cls: type, spec: OwnershipSpec, name: str, record: _Wrapped
    ) -> None:
        original = cls.__dict__.get(name)
        if original is None or not callable(original):
            return
        self._stash(cls, name, record)
        attr = spec.mutating_accessors[name]
        witness = self

        @functools.wraps(original)
        def wrapped_accessor(self_: Any, *args: Any, **kwargs: Any) -> Any:
            # The alias mutation belongs to whoever called the accessor:
            # that is the site the static tracker attributes it to.
            module, site = _caller_site(1)
            witness._observe(spec, self_, attr, module, site)
            return original(self_, *args, **kwargs)

        setattr(cls, name, wrapped_accessor)

    # -- reporting -----------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """The JSON-serializable summary CI uploads as an artifact."""
        with self._lock:
            per_class: dict[str, int] = {}
            for event in self.events:
                per_class[event.cls] = per_class.get(event.cls, 0) + 1
            return {
                "root_pid": self._root_pid,
                "events": len(self.events),
                "writes_per_class": dict(sorted(per_class.items())),
                "violations": [v.to_json() for v in self.violations],
            }

    def _write_report(self) -> None:
        path = os.environ.get(REPORT_ENV)
        if not path:
            return
        try:
            with open(path, "w") as handle:  # daisylint: disable=DL009 - diagnostics report artifact, not engine data
                json.dump(self.report(), handle, indent=2)
                handle.write("\n")
        except OSError:  # pragma: no cover - diagnostics must not crash
            pass


#: The process-wide witness all activations share.
_GLOBAL = RaceWitness()


def global_witness() -> RaceWitness:
    return _GLOBAL


@contextmanager
def watching() -> Iterator[RaceWitness]:
    """Activate the global witness for one scope (reference-counted).

    The service soak test and ad-hoc instrumented runs wrap their whole
    workload in ``with watching() as witness:`` and assert on
    ``witness.violations`` afterwards — activation nests safely with the
    conftest harness fixture because activate/deactivate are counted.
    """
    witness = global_witness()
    witness.activate()
    try:
        yield witness
    finally:
        witness.deactivate()
