"""Partitioned dataflow engine — the Spark-RDD stand-in substrate."""

from repro.engine.dataset import PartitionedDataset
from repro.engine.partition import HashPartitioner, RangeBoundary, RangePartitioner
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter

__all__ = [
    "PartitionedDataset",
    "HashPartitioner",
    "RangePartitioner",
    "RangeBoundary",
    "WorkCounter",
    "GLOBAL_COUNTER",
]
