"""A partitioned, lazily-evaluated dataset — the Spark RDD stand-in.

:class:`PartitionedDataset` offers the bulk operators Daisy's algorithms are
written against (map / filter / group-by / join / union / distinct) over an
explicit list of partitions.  Execution is eager per operator but partition-
at-a-time, and every operator charges work units to a
:class:`~repro.engine.stats.WorkCounter`.

The simulated cluster has ``num_workers`` parallel workers: the dataset also
tracks the *critical path* cost (max over partitions of per-partition work)
so the harness can report "parallel time" = critical-path work, matching how
a Spark stage's latency is governed by its slowest task.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Iterator, TypeVar

from repro.engine.partition import HashPartitioner
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter

T = TypeVar("T")
U = TypeVar("U")
K = TypeVar("K", bound=Hashable)


class PartitionedDataset(Generic[T]):
    """An immutable list of partitions with Spark-like bulk operators."""

    def __init__(
        self,
        partitions: Iterable[Iterable[T]],
        counter: WorkCounter | None = None,
        num_workers: int = 4,
    ):
        self._partitions: list[list[T]] = [list(p) for p in partitions]
        if not self._partitions:
            self._partitions = [[]]
        self.counter = counter if counter is not None else GLOBAL_COUNTER
        self.num_workers = max(1, num_workers)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_items(
        cls,
        items: Iterable[T],
        num_partitions: int = 4,
        counter: WorkCounter | None = None,
        num_workers: int = 4,
    ) -> "PartitionedDataset[T]":
        """Round-robin distribute ``items`` into ``num_partitions`` partitions."""
        parts: list[list[T]] = [[] for _ in range(max(1, num_partitions))]
        for i, item in enumerate(items):
            parts[i % len(parts)].append(item)
        return cls(parts, counter=counter, num_workers=num_workers)

    def _derive(self, partitions: Iterable[Iterable[T]]) -> "PartitionedDataset[Any]":
        return PartitionedDataset(
            partitions, counter=self.counter, num_workers=self.num_workers
        )

    # -- accessors ---------------------------------------------------------------

    @property
    def partitions(self) -> list[list[T]]:
        return self._partitions

    def num_partitions(self) -> int:
        return len(self._partitions)

    def count(self) -> int:
        return sum(len(p) for p in self._partitions)

    def collect(self) -> list[T]:
        """Materialize all items (partition order, then intra-partition order)."""
        out: list[T] = []
        for part in self._partitions:
            out.extend(part)
        return out

    def __iter__(self) -> Iterator[T]:
        for part in self._partitions:
            yield from part

    def __len__(self) -> int:
        return self.count()

    def critical_path_size(self) -> int:
        """Size of the largest partition (proxy for slowest-task latency)."""
        return max((len(p) for p in self._partitions), default=0)

    # -- bulk operators ------------------------------------------------------------

    def map(self, fn: Callable[[T], U]) -> "PartitionedDataset[U]":
        self.counter.charge_scan(self.count())
        return self._derive([[fn(x) for x in part] for part in self._partitions])

    def flat_map(self, fn: Callable[[T], Iterable[U]]) -> "PartitionedDataset[U]":
        self.counter.charge_scan(self.count())
        return self._derive(
            [[y for x in part for y in fn(x)] for part in self._partitions]
        )

    def filter(self, fn: Callable[[T], bool]) -> "PartitionedDataset[T]":
        self.counter.charge_scan(self.count())
        return self._derive([[x for x in part if fn(x)] for part in self._partitions])

    def map_partitions(
        self, fn: Callable[[list[T]], Iterable[U]]
    ) -> "PartitionedDataset[U]":
        self.counter.charge_scan(self.count())
        return self._derive([list(fn(part)) for part in self._partitions])

    def union(self, other: "PartitionedDataset[T]") -> "PartitionedDataset[T]":
        return self._derive(self._partitions + other._partitions)

    def distinct(self) -> "PartitionedDataset[T]":
        """Global distinct (requires a shuffle: items are re-hashed)."""
        self.counter.charge_scan(self.count())
        seen: set[T] = set()
        out: list[T] = []
        for item in self:
            if item not in seen:
                seen.add(item)
                out.append(item)
        return PartitionedDataset.from_items(
            out,
            num_partitions=self.num_partitions(),
            counter=self.counter,
            num_workers=self.num_workers,
        )

    def group_by_key(
        self: "PartitionedDataset[tuple[K, U]]",
    ) -> "PartitionedDataset[tuple[K, list[U]]]":
        """Group (key, value) pairs by key — the shuffle primitive.

        A hash shuffle moves every item once (charged as a scan), then each
        output partition holds whole groups.
        """
        self.counter.charge_scan(self.count())
        partitioner: HashPartitioner[tuple[K, U]] = HashPartitioner(
            max(1, self.num_partitions()), key=lambda kv: kv[0]
        )
        shuffled = partitioner.split(self.collect())
        out_parts: list[list[tuple[K, list[U]]]] = []
        for part in shuffled:
            groups: dict[K, list[U]] = {}
            order: list[K] = []
            for key, value in part:
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(value)
            out_parts.append([(k, groups[k]) for k in order])
        return self._derive(out_parts)

    def reduce_by_key(
        self: "PartitionedDataset[tuple[K, U]]", fn: Callable[[U, U], U]
    ) -> "PartitionedDataset[tuple[K, U]]":
        grouped = self.group_by_key()

        def reduce_group(kv: tuple[K, list[U]]) -> tuple[K, U]:
            key, values = kv
            acc = values[0]
            for value in values[1:]:
                acc = fn(acc, value)
            return (key, acc)

        return grouped.map(reduce_group)

    def join(
        self: "PartitionedDataset[tuple[K, T]]",
        other: "PartitionedDataset[tuple[K, U]]",
    ) -> "PartitionedDataset[tuple[K, tuple[T, U]]]":
        """Hash equi-join of two keyed datasets."""
        self.counter.charge_scan(self.count() + other.count())
        table: dict[K, list[U]] = {}
        for key, value in other:
            table.setdefault(key, []).append(value)
        out: list[tuple[K, tuple[T, U]]] = []
        for key, value in self:
            self.counter.charge_join_probe()
            for match in table.get(key, ()):
                out.append((key, (value, match)))
        return PartitionedDataset.from_items(
            out,
            num_partitions=self.num_partitions(),
            counter=self.counter,
            num_workers=self.num_workers,
        )

    def cartesian_pairs_within_partitions(
        self, predicate: Callable[[T, T], bool]
    ) -> "PartitionedDataset[tuple[T, T]]":
        """All intra-partition pairs (i<j) matching ``predicate``.

        This is the building block the theta-join matrix uses for checking
        one matrix cell; each evaluated pair is charged as a comparison.
        """
        out_parts: list[list[tuple[T, T]]] = []
        for part in self._partitions:
            hits: list[tuple[T, T]] = []
            for i in range(len(part)):
                for j in range(i + 1, len(part)):
                    self.counter.charge_comparisons()
                    if predicate(part[i], part[j]):
                        hits.append((part[i], part[j]))
            out_parts.append(hits)
        return self._derive(out_parts)

    def repartition(self, num_partitions: int) -> "PartitionedDataset[T]":
        self.counter.charge_scan(self.count())
        return PartitionedDataset.from_items(
            self.collect(),
            num_partitions=num_partitions,
            counter=self.counter,
            num_workers=self.num_workers,
        )
