"""Partitioners for the dataflow engine.

Spark distributes an RDD across partitions; our stand-in does the same with
explicit partition lists so that (a) per-partition work can be accounted and
(b) the theta-join matrix partitioning of Section 4.2 has a first-class
substrate to build on.

Two partitioners are provided:

* :class:`HashPartitioner` — hash of a key function modulo partition count
  (what Spark uses for shuffles/group-bys).
* :class:`RangePartitioner` — contiguous value ranges over a numeric
  attribute (what the Okcan–Riedewald matrix partitioning needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, Iterable, Sequence, TypeVar

T = TypeVar("T")


class HashPartitioner(Generic[T]):
    """Assign items to ``num_partitions`` buckets by hashing a key."""

    def __init__(self, num_partitions: int, key: Callable[[T], Any]):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.key = key

    def partition_of(self, item: T) -> int:
        return hash(self.key(item)) % self.num_partitions

    def split(self, items: Iterable[T]) -> list[list[T]]:
        parts: list[list[T]] = [[] for _ in range(self.num_partitions)]
        for item in items:
            parts[self.partition_of(item)].append(item)
        return parts


@dataclass(frozen=True)
class RangeBoundary:
    """A half-open numeric interval [low, high) assigned to one partition.

    The final partition of a :class:`RangePartitioner` is closed on both ends
    so the maximum value is not lost.
    """

    low: float
    high: float
    closed_high: bool = False

    def contains(self, value: float) -> bool:
        if value < self.low:
            return False
        if self.closed_high:
            return value <= self.high
        return value < self.high

    def overlaps(self, low: float, high: float) -> bool:
        """Does this boundary intersect the closed interval [low, high]?"""
        if high < self.low:
            return False
        if self.closed_high:
            return low <= self.high
        return low < self.high


class RangePartitioner(Generic[T]):
    """Split items into contiguous numeric ranges of (roughly) equal count.

    Boundaries are computed from the sorted key values, like Spark's
    sample-based range partitioner but exact (we are single-process, so we
    can afford a full sort).
    """

    def __init__(self, num_partitions: int, key: Callable[[T], float]):
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions
        self.key = key
        self.boundaries: list[RangeBoundary] = []

    def fit(self, items: Sequence[T]) -> "RangePartitioner[T]":
        """Compute boundaries from the data.  Returns self for chaining."""
        values = sorted(self.key(item) for item in items)
        if not values:
            self.boundaries = [RangeBoundary(0.0, 0.0, closed_high=True)]
            return self
        n = len(values)
        p = min(self.num_partitions, n)
        cuts: list[float] = [values[0]]
        for i in range(1, p):
            cuts.append(values[(i * n) // p])
        cuts.append(values[-1])
        bounds: list[RangeBoundary] = []
        for i in range(p):
            closed = i == p - 1
            bounds.append(RangeBoundary(cuts[i], cuts[i + 1], closed_high=closed))
        self.boundaries = bounds
        return self

    def partition_of(self, item: T) -> int:
        value = self.key(item)
        return self.partition_of_value(value)

    def partition_of_value(self, value: float) -> int:
        if not self.boundaries:
            raise RuntimeError("RangePartitioner.fit() must be called first")
        # Binary search over boundaries.
        lo, hi = 0, len(self.boundaries) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            bound = self.boundaries[mid]
            if value < bound.low:
                hi = mid - 1
            elif bound.contains(value):
                return mid
            else:
                lo = mid + 1
        return lo

    def split(self, items: Iterable[T]) -> list[list[T]]:
        if not self.boundaries:
            items = list(items)
            self.fit(items)
        parts: list[list[T]] = [[] for _ in range(len(self.boundaries))]
        for item in items:
            value = self.key(item)
            idx = self.partition_of_value(value)
            idx = max(0, min(idx, len(parts) - 1))
            parts[idx].append(item)
        return parts
