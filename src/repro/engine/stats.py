"""Deterministic work accounting for the dataflow engine.

The paper evaluates Daisy in minutes on a 7-node Spark cluster.  Our substrate
is a single-process simulator, so in addition to wall-clock time every engine
and cleaning operation charges *work units* to a :class:`WorkCounter`:

* ``tuples_scanned`` — tuples read by scans/filters/relaxation passes,
* ``comparisons``   — pairwise predicate evaluations (theta-join cells,
  group conflict checks),
* ``tuples_updated`` — cells/rows written back to the dataset,
* ``partitions_checked`` / ``partitions_pruned`` — theta-join matrix work.

Work units are deterministic, machine-independent, and proportional to the
asymptotic costs the paper's Section 5.2 cost model reasons about, so the
benchmark harness reports both seconds and work units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable
from repro._ownership import shared_engine_state


@shared_engine_state
@dataclass
class WorkCounter:
    """Mutable tally of work units performed by engine + cleaning operators.

    Each counter is written only by its ``charge_*`` seam (plus ``merge``,
    which folds worker-shard counters back in on the coordinating thread,
    and ``reset``); parallel passes give every worker a private counter and
    merge, so the shared per-table counter stays single-writer.
    """

    MUTATED_UNDER = {
        "tuples_scanned": ("WorkCounter.charge_scan", "WorkCounter.merge", "WorkCounter.reset"),
        "comparisons": ("WorkCounter.charge_comparisons", "WorkCounter.merge", "WorkCounter.reset"),
        "tuples_updated": ("WorkCounter.charge_update", "WorkCounter.merge", "WorkCounter.reset"),
        "partitions_checked": ("WorkCounter.charge_partition", "WorkCounter.merge", "WorkCounter.reset"),
        "partitions_pruned": ("WorkCounter.charge_partition", "WorkCounter.merge", "WorkCounter.reset"),
        "joins_probed": ("WorkCounter.charge_join_probe", "WorkCounter.merge", "WorkCounter.reset"),
    }

    tuples_scanned: int = 0
    comparisons: int = 0
    tuples_updated: int = 0
    partitions_checked: int = 0
    partitions_pruned: int = 0
    joins_probed: int = 0

    def charge_scan(self, n: int = 1) -> None:
        self.tuples_scanned += n

    def charge_comparisons(self, n: int = 1) -> None:
        self.comparisons += n

    def charge_update(self, n: int = 1) -> None:
        self.tuples_updated += n

    def charge_partition(self, checked: int = 0, pruned: int = 0) -> None:
        self.partitions_checked += checked
        self.partitions_pruned += pruned

    def charge_join_probe(self, n: int = 1) -> None:
        self.joins_probed += n

    def total(self) -> int:
        """A single scalar summary: total work units charged."""
        return (
            self.tuples_scanned
            + self.comparisons
            + self.tuples_updated
            + self.joins_probed
        )

    def snapshot(self) -> "WorkCounter":
        """An immutable copy of the current tallies."""
        return WorkCounter(
            tuples_scanned=self.tuples_scanned,
            comparisons=self.comparisons,
            tuples_updated=self.tuples_updated,
            partitions_checked=self.partitions_checked,
            partitions_pruned=self.partitions_pruned,
            joins_probed=self.joins_probed,
        )

    def delta_since(self, earlier: "WorkCounter") -> "WorkCounter":
        """Work performed since an earlier snapshot."""
        return WorkCounter(
            tuples_scanned=self.tuples_scanned - earlier.tuples_scanned,
            comparisons=self.comparisons - earlier.comparisons,
            tuples_updated=self.tuples_updated - earlier.tuples_updated,
            partitions_checked=self.partitions_checked - earlier.partitions_checked,
            partitions_pruned=self.partitions_pruned - earlier.partitions_pruned,
            joins_probed=self.joins_probed - earlier.joins_probed,
        )

    @classmethod
    def merged(cls, counters: Iterable["WorkCounter"]) -> "WorkCounter":
        """One counter accumulating many per-worker tallies.

        The fan-out merge of the parallel paths: each pool task charges a
        private counter, and the caller folds them together (order cannot
        matter — addition commutes), so parallel totals reconcile with a
        serial run exactly.
        """
        out = cls()
        for counter in counters:
            out.merge(counter)
        return out

    def merge(self, other: "WorkCounter") -> None:
        """Accumulate another counter into this one (e.g. per-partition tallies)."""
        self.tuples_scanned += other.tuples_scanned
        self.comparisons += other.comparisons
        self.tuples_updated += other.tuples_updated
        self.partitions_checked += other.partitions_checked
        self.partitions_pruned += other.partitions_pruned
        self.joins_probed += other.joins_probed

    def reset(self) -> None:
        self.tuples_scanned = 0
        self.comparisons = 0
        self.tuples_updated = 0
        self.partitions_checked = 0
        self.partitions_pruned = 0
        self.joins_probed = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "tuples_scanned": self.tuples_scanned,
            "comparisons": self.comparisons,
            "tuples_updated": self.tuples_updated,
            "partitions_checked": self.partitions_checked,
            "partitions_pruned": self.partitions_pruned,
            "joins_probed": self.joins_probed,
            "total": self.total(),
        }

    def __str__(self) -> str:
        return (
            f"work(scan={self.tuples_scanned}, cmp={self.comparisons}, "
            f"upd={self.tuples_updated}, probe={self.joins_probed}, "
            f"parts={self.partitions_checked}+{self.partitions_pruned}p)"
        )


#: Module-level default counter: operations that are not given an explicit
#: counter charge here, so ad-hoc usage still gets accounting.
GLOBAL_COUNTER = WorkCounter()
