"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch a single base class.  Subclasses mirror the major subsystems
(relations, constraints, queries, cleaning) so that errors can be handled at
the right granularity.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """Raised when a relation schema is malformed or attributes are unknown."""


class TypeMismatchError(SchemaError):
    """Raised when a value does not match the declared column type."""


class ConstraintError(ReproError):
    """Raised when a denial constraint is malformed."""


class ConstraintParseError(ConstraintError):
    """Raised when the textual DC notation cannot be parsed."""


class QueryError(ReproError):
    """Raised when a query is malformed or references unknown objects."""


class QueryParseError(QueryError):
    """Raised when the SQL text cannot be parsed."""


class PlanError(QueryError):
    """Raised when a logical plan cannot be built or executed."""


class CleaningError(ReproError):
    """Raised when a cleaning operator fails."""


class SessionError(ReproError):
    """Raised when a closed :class:`repro.api.Session` is used."""


class IsolationError(ReproError):
    """Raised when the service tier's snapshot-isolation discipline breaks.

    Subclasses in :mod:`repro.service.snapshot` distinguish torn snapshot
    reads (:class:`~repro.service.snapshot.SnapshotViolation`) from failed
    epoch compare-and-swap on the write path
    (:class:`~repro.service.snapshot.EpochCasError`)."""


class ProbabilisticValueError(ReproError):
    """Raised when a probabilistic value is malformed (e.g. bad weights)."""


class SatError(ReproError):
    """Raised when a CNF formula is malformed."""


class DatasetError(ReproError):
    """Raised by synthetic dataset generators on invalid parameters."""
