"""Metrics: repair accuracy and timing helpers."""

from repro.metrics.accuracy import AccuracyReport, evaluate_relation, evaluate_repairs
from repro.metrics.timing import Measurement, Stopwatch, timed

__all__ = [
    "AccuracyReport",
    "evaluate_repairs",
    "evaluate_relation",
    "Stopwatch",
    "Measurement",
    "timed",
]
