"""Repair-accuracy metrics: precision / recall / F1 against master data.

The paper's definitions (Section 7): *precision* = correct updates / total
updates, *recall* = correct updates / total errors.  An "update" is a cell
whose repaired value differs from its dirty value; it is "correct" when the
repaired value equals the master-data value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.probabilistic.value import PValue
from repro.relation.relation import Relation


@dataclass(frozen=True)
class AccuracyReport:
    """Precision / recall / F1 plus the underlying counts."""

    precision: float
    recall: float
    f1: float
    total_updates: int
    correct_updates: int
    total_errors: int

    def as_row(self) -> tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)


def _resolved(cell: Any) -> Any:
    """A cell's repaired concrete value (most probable for PValues)."""
    if isinstance(cell, PValue):
        return cell.most_probable()
    return cell


def evaluate_repairs(
    repairs: Mapping[tuple[int, str], Any],
    dirty: Relation,
    ground_truth: Mapping[tuple[int, str], Any],
) -> AccuracyReport:
    """Score a repair map against injected ground truth.

    ``repairs`` maps (tid, attr) -> repaired value; ``ground_truth`` maps
    the *injected-error* cells to their original correct values.  A repair
    of a cell that was never dirty counts as an update (hurting precision)
    unless it reproduces the cell's current value.
    """
    dirty_rows = dirty.tid_index()
    total_updates = 0
    correct_updates = 0
    for (tid, attr), value in repairs.items():
        row = dirty_rows.get(tid)
        if row is None:
            continue
        idx = dirty.schema.index_of(attr)
        dirty_value = _resolved(row.values[idx])
        if value == dirty_value:
            continue  # no-op, not an update
        total_updates += 1
        truth = ground_truth.get((tid, attr))
        if truth is not None and value == truth:
            correct_updates += 1
    total_errors = len(ground_truth)
    precision = correct_updates / total_updates if total_updates else 0.0
    recall = correct_updates / total_errors if total_errors else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return AccuracyReport(
        precision=precision,
        recall=recall,
        f1=f1,
        total_updates=total_updates,
        correct_updates=correct_updates,
        total_errors=total_errors,
    )


def evaluate_relation(
    repaired: Relation,
    dirty: Relation,
    ground_truth: Mapping[tuple[int, str], Any],
    attrs: list[str] | None = None,
) -> AccuracyReport:
    """Score a repaired relation (probabilistic cells resolve to most
    probable) against ground truth, over ``attrs`` (default: all)."""
    names = attrs if attrs is not None else list(repaired.schema.names)
    dirty_rows = dirty.tid_index()
    repairs: dict[tuple[int, str], Any] = {}
    for row in repaired.rows:
        dirty_row = dirty_rows.get(row.tid)
        if dirty_row is None:
            continue
        for attr in names:
            idx = repaired.schema.index_of(attr)
            new_value = _resolved(row.values[idx])
            old_value = _resolved(dirty_row.values[dirty.schema.index_of(attr)])
            if new_value != old_value:
                repairs[(row.tid, attr)] = new_value
    return evaluate_repairs(repairs, dirty, ground_truth)
