"""Response-time measurement helpers for the benchmark harness.

Benchmarks report both wall-clock seconds and deterministic work units
(:class:`~repro.engine.stats.WorkCounter` tallies); :class:`Stopwatch` and
:func:`timed` keep the measurement code out of the benchmark bodies.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.engine.stats import WorkCounter


def clock() -> float:
    """The engine's one wall-clock read: monotonic seconds for reporting.

    Every elapsed-seconds field in the engine (session reports, batch
    reports, baseline harnesses) is a difference of :func:`clock` values.
    Centralizing the read here keeps results time-independent by
    construction — daisylint's DL003 flags any other wall-clock access in
    ``src/`` — and gives tests a single seam to stub time through.
    """
    return time.perf_counter()


@dataclass
class Measurement:
    """One timed run: seconds + work-unit delta."""

    seconds: float = 0.0
    work: WorkCounter | None = None
    label: str = ""

    def work_units(self) -> int:
        return self.work.total() if self.work is not None else 0

    def __str__(self) -> str:
        wu = f", {self.work_units()} wu" if self.work is not None else ""
        return f"{self.label or 'run'}: {self.seconds:.3f}s{wu}"


class Stopwatch:
    """Accumulates named measurements (one per experiment series point)."""

    def __init__(self) -> None:
        self.measurements: list[Measurement] = []

    @contextmanager
    def measure(
        self, label: str, counter: WorkCounter | None = None
    ) -> Iterator[Measurement]:
        before = counter.snapshot() if counter is not None else None
        started = time.perf_counter()
        measurement = Measurement(label=label)
        try:
            yield measurement
        finally:
            measurement.seconds = time.perf_counter() - started
            if counter is not None and before is not None:
                measurement.work = counter.delta_since(before)
            self.measurements.append(measurement)

    def by_label(self) -> dict[str, Measurement]:
        return {m.label: m for m in self.measurements}

    def report(self) -> str:
        return "\n".join(str(m) for m in self.measurements)


def timed(fn: Callable[[], Any]) -> tuple[Any, float]:
    """Run ``fn`` and return (result, seconds)."""
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started
