"""Sharded parallel execution: pools, relation shards, and the clean context.

The paper's unit of cleaning work — a theta-join matrix cell, an FD scope's
relaxation closure — is naturally independent, so this package supplies the
three pieces that let one ``clean_sigma`` pass run sharded and concurrent:

* :mod:`repro.parallel.pool` — :class:`ExecutorPool` (serial / thread /
  fork-process behind one "run tasks, results in task order" interface);
* :mod:`repro.parallel.shards` — :class:`RelationShard` / :class:`ShardSet`
  row-range partitions with per-shard lazy column views and the tid router;
* :mod:`repro.parallel.clean` — :class:`ParallelContext` (the session-owned
  pool + router bundle) and the sharded FD relaxation.

Every parallel path is byte-identical to its serial oracle — in results,
repaired relations, and work-unit totals; the serial path stays the default
(``DaisyConfig(parallelism=1)``).  ``DaisyConfig(parallelism="auto")`` keeps
the same guarantee while letting the session's
:class:`~repro.core.AdaptivePlanner` pick the execution shape per pass.
"""

from repro.parallel.clean import ParallelContext, PassPlan, parallel_relax_fd
from repro.parallel.pool import (
    POOL_KINDS,
    POOL_PROCESS,
    POOL_SERIAL,
    POOL_THREAD,
    ExecutorPool,
    ForkProcessPool,
    SerialPool,
    ThreadPool,
    fork_available,
    make_pool,
    validate_pool_kind,
)
from repro.parallel.shards import RelationShard, ShardSet

__all__ = [
    "POOL_KINDS",
    "POOL_PROCESS",
    "POOL_SERIAL",
    "POOL_THREAD",
    "ExecutorPool",
    "ForkProcessPool",
    "ParallelContext",
    "PassPlan",
    "RelationShard",
    "SerialPool",
    "ShardSet",
    "ThreadPool",
    "fork_available",
    "make_pool",
    "parallel_relax_fd",
    "validate_pool_kind",
]
