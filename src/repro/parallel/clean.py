"""Shard-parallel cleaning: fan an FD scope's relaxation out over shards.

:class:`ParallelContext` is the session-scoped handle the operators receive:
it owns the lazily created :class:`~repro.parallel.pool.ExecutorPool`, the
per-table :class:`~repro.parallel.shards.ShardSet` routers, and the knobs
(``workers``, ``num_shards``).  ``clean_sigma`` uses it two ways:

* **FD scopes** — :func:`parallel_relax_fd` routes the answer tids to shards
  by tid range and runs one Algorithm 1 relaxation closure per shard
  concurrently (closures are read-only over the shared column view).
  Relaxation closures distribute over unions — ``closure(A ∪ B) =
  closure(A) ∪ closure(B)`` because a closure covers entire correlated
  clusters — so merging the per-shard results with set unions reproduces the
  serial scope, consultation set, and repair delta byte-for-byte.
* **DC checks** — the theta-join matrix's candidate cells fan out over the
  same pool (see :meth:`repro.detection.thetajoin.ThetaJoinMatrix.check_cells`).

Work accounting stays a deterministic oracle: the per-shard tasks charge
throwaway counters, and after the merge the table's real counter is charged
exactly what the serial columnar relaxation would have charged (per
discovered extra/consult tuple).  A correlated cluster spanning several
shards is closed once per touching shard — that duplicated frontier work is
parallelization overhead, not model work, so it never skews the work-unit
totals the benchmarks and the cost model reason about.  The same reasoning
caps the merged ``iterations`` at the per-shard maximum (a cluster seeded
from several shards can need more rounds per shard than the union-seeded
serial pass).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.constraints.analysis import FilterSide
from repro.constraints.dc import FunctionalDependency
from repro.core.relaxation import RelaxationResult, relax_fd
from repro.engine.stats import WorkCounter
from repro.parallel.pool import ExecutorPool, make_pool, validate_pool_kind
from repro.parallel.shards import ShardSet
from repro.relation.columnview import ColumnView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.state import TableState


class ParallelContext:
    """Session-scoped parallel execution state: pool + shard routers.

    The pool is created lazily on first use and must be released with
    :meth:`close` (the owning :class:`repro.api.Session` does this);
    shard routers are cached per table state — tid membership is stable
    across Daisy's in-place repairs, so a router built once keeps routing
    correctly for the session's whole lifetime.
    """

    def __init__(self, kind: str, workers: int, num_shards: int = 0):
        validate_pool_kind(kind)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        self.kind = kind
        self.workers = workers
        self.num_shards = num_shards or workers
        self._pool: Optional[ExecutorPool] = None
        #: id(state) -> (state, data_epoch, router).  The held state
        #: reference validates the entry (a recycled id from a re-registered
        #: table cannot alias a stale router); the data epoch re-splits
        #: after external updates, so shard *snapshots* never serve
        #: pre-update values (tid routing alone would survive, but the
        #: shard views are part of the public surface).
        self._shard_sets: dict[int, tuple[object, int, ShardSet]] = {}

    @property
    def enabled(self) -> bool:
        """Whether fan-out is active (one worker means pure serial paths)."""
        return self.workers > 1

    @property
    def pool(self) -> ExecutorPool:
        if self._pool is None:
            self._pool = make_pool(self.kind, self.workers)
        return self._pool

    def shards_for(self, state: "TableState") -> ShardSet:
        """The (cached) shard router of one table state.

        Re-split when the table's data epoch moved: external updates change
        cell values (never tid membership), so the router would keep
        routing correctly but the per-shard view snapshots would go stale.
        """
        key = id(state)
        epoch = getattr(state, "data_epoch", 0)
        entry = self._shard_sets.get(key)
        if entry is not None and entry[0] is state and entry[1] == epoch:
            return entry[2]
        shard_set = ShardSet.split(state.relation, self.num_shards)
        self._shard_sets[key] = (state, epoch, shard_set)
        return shard_set

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __repr__(self) -> str:
        return (
            f"ParallelContext({self.kind}, workers={self.workers}, "
            f"shards={self.num_shards})"
        )


def parallel_relax_fd(
    state: "TableState",
    answer: Iterable[int],
    fd: FunctionalDependency,
    filter_side: FilterSide,
    view: ColumnView,
    context: ParallelContext,
) -> RelaxationResult:
    """Algorithm 1 relaxation, sharded by tid range and merged (see module
    docstring).  Requires the columnar view; byte-identical to
    :func:`repro.core.relaxation.relax_fd` in scope, consultation set, and
    the work units charged to ``state.counter``.
    """
    answer_set = set(answer)
    seen = state.seen_for(fd)
    parts = context.shards_for(state).route_tids(answer_set)
    if len(parts) <= 1 or not context.enabled:
        return relax_fd(
            state.relation, answer_set, fd, filter_side=filter_side,
            counter=state.counter, skip_tids=seen, view=view,
        )

    relation = state.relation
    seen_snapshot = set(seen)

    def task_for(part: set[int]):
        def task() -> RelaxationResult:
            return relax_fd(
                relation, part, fd, filter_side=filter_side,
                counter=WorkCounter(), skip_tids=seen_snapshot, view=view,
            )

        return task

    results = context.pool.run([task_for(part) for part in parts.values()])

    merged = RelaxationResult()
    extra: set[int] = set()
    consult: set[int] = set()
    for result in results:
        extra |= result.extra_tids
        consult |= result.consult_tids
        merged.iterations = max(merged.iterations, result.iterations)
    # A shard's closure may discover another shard's answer tuples as
    # "extra" (they are answer, not extra, in the union run) — the set
    # subtraction makes the merge exactly the serial scope/consult split.
    extra -= answer_set
    consult -= answer_set
    consult -= extra
    merged.extra_tids = extra
    merged.consult_tids = consult

    # Serial-equivalent work accounting over the merged sets.
    counter = state.counter
    if filter_side is FilterSide.RHS:
        merged.iterations = 1
        counter.charge_scan(len(extra))
        counter.charge_scan(len(consult))
        merged.scanned_tuples = len(extra) + len(consult)
    else:
        pos_map = view.pos_of_tid
        skip_count = sum(
            1 for tid in (seen_snapshot - answer_set) if tid in pos_map
        )
        counter.charge_scan(len(extra))
        if skip_count:
            counter.charge_scan(skip_count)
        merged.scanned_tuples = len(extra) + skip_count
    return merged
