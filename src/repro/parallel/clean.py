"""Shard-parallel cleaning: fan an FD scope's relaxation out over shards.

:class:`ParallelContext` is the session-scoped handle the operators receive:
it owns the lazily created :class:`~repro.parallel.pool.ExecutorPool`, the
per-table :class:`~repro.parallel.shards.ShardSet` routers, and the knobs
(``workers``, ``num_shards``).  ``clean_sigma`` uses it two ways:

* **FD scopes** — :func:`parallel_relax_fd` routes the answer tids to shards
  by tid range and runs one Algorithm 1 relaxation closure per shard
  concurrently (closures are read-only over the shared column view).
  Relaxation closures distribute over unions — ``closure(A ∪ B) =
  closure(A) ∪ closure(B)`` because a closure covers entire correlated
  clusters — so merging the per-shard results with set unions reproduces the
  serial scope, consultation set, and repair delta byte-for-byte.
* **DC checks** — the theta-join matrix's candidate cells fan out over the
  same pool (see :meth:`repro.detection.thetajoin.ThetaJoinMatrix.check_cells`).

Work accounting stays a deterministic oracle: the per-shard tasks charge
throwaway counters, and after the merge the table's real counter is charged
exactly what the serial columnar relaxation would have charged (per
discovered extra/consult tuple).  A correlated cluster spanning several
shards is closed once per touching shard — that duplicated frontier work is
parallelization overhead, not model work, so it never skews the work-unit
totals the benchmarks and the cost model reason about.  The same reasoning
caps the merged ``iterations`` at the per-shard maximum (a cluster seeded
from several shards can need more rounds per shard than the union-seeded
serial pass).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.constraints.analysis import FilterSide
from repro.constraints.dc import FunctionalDependency
from repro.core.costmodel import (
    PASS_DC_CHECK,
    PASS_FD_RELAX,
    AdaptivePlanner,
    PassDecision,
    PoolPlan,
)
from repro.core.relaxation import RelaxationResult, relax_fd
from repro.engine.stats import WorkCounter
from repro.parallel.pool import (
    POOL_SERIAL,
    ExecutorPool,
    make_pool,
    validate_pool_kind,
)
from repro.parallel.shards import ShardSet
from repro.relation.columnview import ColumnView
from repro._ownership import session_owned

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.state import TableState
    from repro.detection.thetajoin import ThetaJoinMatrix


@dataclass(frozen=True)
class PassPlan:
    """One pass's resolved execution shape, handed to the operators.

    ``pool`` is ``None`` for serial execution; ``shards`` is the shard
    count FD relaxation should route over; ``decision`` is the recorded
    :class:`~repro.core.costmodel.PassDecision` in adaptive mode (``None``
    under a fixed configuration — there was nothing to decide).  Callers
    report the pass's observed counter delta back through
    :meth:`ParallelContext.observe`.
    """

    pool: ExecutorPool | None
    shards: int
    decision: PassDecision | None = None

    @property
    def parallel(self) -> bool:
        return self.pool is not None


@session_owned
class ParallelContext:
    """Session-scoped parallel execution state: pool + shard routers.

    Two modes:

    * **fixed** (``DaisyConfig(parallelism=N)``) — one pool of ``N``
      workers of one kind; every pass that can fan out does.
    * **adaptive** (``parallelism="auto"``) — the context carries the
      session's :class:`~repro.core.costmodel.AdaptivePlanner` and resolves
      the execution shape *per pass* (:meth:`plan_fd_relax`,
      :meth:`plan_dc_check`): serial for tiny scopes, the thread pool for
      mid-size passes, the fork-process pool for full-matrix-scale checks.
      Pools are created lazily per (kind, workers) and shared across
      passes.  Whatever shape is chosen, results and merged work units are
      byte-identical to serial — the choice only moves wall-clock time.

    The pools are created lazily on first use and must be released with
    :meth:`close` (the owning :class:`repro.api.Session` does this);
    shard routers are cached per table state — tid membership is stable
    across Daisy's in-place repairs, so a router built once keeps routing
    correctly for the session's whole lifetime.
    """

    def __init__(
        self,
        kind: str,
        workers: int,
        num_shards: int = 0,
        planner: AdaptivePlanner | None = None,
        adaptive: bool = False,
    ) -> None:
        validate_pool_kind(kind)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if num_shards < 0:
            raise ValueError("num_shards must be >= 0")
        if adaptive and planner is None:
            raise ValueError("adaptive mode requires a planner")
        self.kind = kind
        self.workers = workers
        #: The raw knob: 0 means "follow the (chosen) worker count".
        self._forced_shards = num_shards
        self.num_shards = num_shards or workers
        self.adaptive = adaptive
        self.planner = planner
        self._pool: ExecutorPool | None = None
        #: (kind, workers) -> pool, for adaptive per-pass shapes.
        self._pools: dict[tuple[str, int], ExecutorPool] = {}
        #: (id(state), shard count) -> (state, data_epoch, router).  The held
        #: state reference validates the entry (a recycled id from a
        #: re-registered table cannot alias a stale router); the data epoch
        #: re-splits after external updates, so shard *snapshots* never serve
        #: pre-update values (tid routing alone would survive, but the
        #: shard views are part of the public surface).
        self._shard_sets: dict[tuple[int, int], tuple[object, int, ShardSet]] = {}

    @property
    def enabled(self) -> bool:
        """Whether fan-out is possible (one worker means pure serial paths)."""
        return self.workers > 1

    @property
    def pool(self) -> ExecutorPool:
        """The fixed-mode pool (adaptive passes use :meth:`pool_of`)."""
        if self._pool is None:
            self._pool = make_pool(self.kind, self.workers)
        return self._pool

    def pool_of(self, kind: str, workers: int) -> ExecutorPool | None:
        """A (cached) pool of the given shape; ``None`` for serial shapes."""
        if workers <= 1 or kind == POOL_SERIAL:
            return None
        key = (kind, workers)
        pool = self._pools.get(key)
        if pool is None:
            pool = self._pools[key] = make_pool(kind, workers)
        return pool

    # -- per-pass planning -------------------------------------------------------

    def plan_fd_relax(self, state: "TableState", scope_size: int) -> PassPlan:
        """Resolve the execution shape of one FD relaxation pass.

        Fixed mode reproduces the pre-adaptive behaviour (always fan out
        when ``workers > 1``); adaptive mode prices the scope size through
        the planner.  ``scope_size`` is the answer-tid count — the raw unit
        the ``fd_relax`` calibration bucket rescales into total pass work.
        """
        if not self.adaptive:
            pool = self.pool if self.enabled else None
            return PassPlan(pool=pool, shards=self.num_shards)
        assert self.planner is not None
        plan, decision = self.planner.choose_pool(
            PASS_FD_RELAX,
            state.relation.name or "",
            raw_units=float(max(1, scope_size)),
            num_shards=self._forced_shards,
        )
        return PassPlan(
            pool=self._pool_for_plan(plan), shards=plan.shards, decision=decision
        )

    def plan_dc_check(
        self, matrix: "ThetaJoinMatrix", cells: Sequence[tuple[int, int]], table: str
    ) -> PassPlan:
        """Resolve the execution shape of one theta-join cell check.

        The raw unit is the matrix's pair-count estimate over the candidate
        cells (:func:`repro.detection.estimator.estimate_check_cost`) — the
        quantity that makes full-matrix checks escalate to the process pool
        while small partial checks stay serial.
        """
        if not self.adaptive:
            pool = self.pool if self.enabled else None
            return PassPlan(pool=pool, shards=self.num_shards)
        assert self.planner is not None
        from repro.detection.estimator import estimate_check_cost

        plan, decision = self.planner.choose_pool(
            PASS_DC_CHECK,
            table,
            raw_units=estimate_check_cost(matrix, cells),
        )
        return PassPlan(
            pool=self._pool_for_plan(plan), shards=plan.shards, decision=decision
        )

    def observe(self, decision: PassDecision | None, observed_units: float) -> None:
        """Report a pass's counter delta back to the planner (no-op when the
        pass ran under a fixed configuration)."""
        if decision is not None and self.planner is not None:
            self.planner.observe(decision, observed_units)

    def _pool_for_plan(self, plan: PoolPlan) -> ExecutorPool | None:
        if not plan.parallel:
            return None
        return self.pool_of(plan.kind, plan.workers)

    # -- shard routers -----------------------------------------------------------

    def shards_for(
        self, state: "TableState", num_shards: int | None = None
    ) -> ShardSet:
        """The (cached) shard router of one table state.

        Re-split when the table's data epoch moved: external updates change
        cell values (never tid membership), so the router would keep
        routing correctly but the per-shard view snapshots would go stale.
        ``num_shards`` overrides the context default (adaptive passes route
        over their plan's shard count).
        """
        shards = num_shards if num_shards else self.num_shards
        key = (id(state), shards)
        epoch = getattr(state, "data_epoch", 0)
        entry = self._shard_sets.get(key)
        if entry is not None and entry[0] is state and entry[1] == epoch:
            return entry[2]
        shard_set = ShardSet.split(state.relation, shards)
        self._shard_sets[key] = (state, epoch, shard_set)
        return shard_set

    def close(self) -> None:
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for pool in self._pools.values():
            pool.close()
        self._pools.clear()

    def __repr__(self) -> str:
        mode = "auto" if self.adaptive else "fixed"
        return (
            f"ParallelContext({self.kind}, workers={self.workers}, "
            f"shards={self.num_shards}, mode={mode})"
        )


def parallel_relax_fd(
    state: "TableState",
    answer: Iterable[int],
    fd: FunctionalDependency,
    filter_side: FilterSide,
    view: ColumnView,
    context: ParallelContext,
    plan: PassPlan | None = None,
) -> RelaxationResult:
    """Algorithm 1 relaxation, sharded by tid range and merged (see module
    docstring).  Requires the columnar view; byte-identical to
    :func:`repro.core.relaxation.relax_fd` in scope, consultation set, and
    the work units charged to ``state.counter``.

    ``plan`` carries the pass's resolved shape (pool + shard count) from
    :meth:`ParallelContext.plan_fd_relax`; without one, the context's fixed
    configuration applies.
    """
    answer_set = set(answer)
    seen = state.seen_for(fd)
    pool = plan.pool if plan is not None else (
        context.pool if context.enabled else None
    )
    shards = plan.shards if plan is not None else context.num_shards
    parts = context.shards_for(state, shards).route_tids(answer_set)
    if len(parts) <= 1 or pool is None:
        return relax_fd(
            state.relation, answer_set, fd, filter_side=filter_side,
            counter=state.counter, skip_tids=seen, view=view,
        )

    relation = state.relation
    seen_snapshot = set(seen)

    def task_for(part: set[int]) -> Callable[[], RelaxationResult]:
        def task() -> RelaxationResult:
            return relax_fd(
                relation, part, fd, filter_side=filter_side,
                counter=WorkCounter(), skip_tids=seen_snapshot, view=view,
            )

        return task

    results = pool.run([task_for(part) for part in parts.values()])

    merged = RelaxationResult()
    extra: set[int] = set()
    consult: set[int] = set()
    for result in results:
        extra |= result.extra_tids
        consult |= result.consult_tids
        merged.iterations = max(merged.iterations, result.iterations)
    # A shard's closure may discover another shard's answer tuples as
    # "extra" (they are answer, not extra, in the union run) — the set
    # subtraction makes the merge exactly the serial scope/consult split.
    extra -= answer_set
    consult -= answer_set
    consult -= extra
    merged.extra_tids = extra
    merged.consult_tids = consult

    # Serial-equivalent work accounting over the merged sets.
    counter = state.counter
    if filter_side is FilterSide.RHS:
        merged.iterations = 1
        counter.charge_scan(len(extra))
        counter.charge_scan(len(consult))
        merged.scanned_tuples = len(extra) + len(consult)
    else:
        pos_map = view.pos_of_tid
        skip_count = sum(
            1 for tid in (seen_snapshot - answer_set) if tid in pos_map
        )
        counter.charge_scan(len(extra))
        if skip_count:
            counter.charge_scan(skip_count)
        merged.scanned_tuples = len(extra) + skip_count
    return merged
