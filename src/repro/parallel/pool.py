"""Executor pools: one interface over serial, threaded, and process fan-out.

The paper runs Daisy on a 7-node Spark cluster; our single-process substrate
gets its concurrency from an :class:`ExecutorPool` — a minimal "run these
independent tasks, give me the results in task order" abstraction that the
detection and cleaning layers fan work out over.  Three implementations:

* :class:`SerialPool` — runs tasks inline.  The default and the semantics
  oracle: every parallel code path must produce byte-identical results to a
  serial run.
* :class:`ThreadPool` — a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.
  Threads share the engine state directly (tasks must only *read* shared
  state); under CPython's GIL they overlap I/O and C-level work but not pure
  Python compute.
* :class:`ForkProcessPool` — per-run worker processes forked from the
  current process.  Tasks are ordinary closures: the fork inherits the
  parent's state (relations, matrices, column views) copy-on-write, so no
  task pickling is needed — only the *results* cross the process boundary
  and must be picklable.  This is the pool that buys real CPU scaling for
  the theta-join cell checks.

Tasks must be independent and must not mutate shared engine state; each
task returns its partial result (typically a list of violations plus a
local :class:`~repro.engine.stats.WorkCounter`), and the caller merges the
partials deterministically in task order.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Sequence
from repro._ownership import session_owned

#: Supported pool kinds for :func:`make_pool` / ``DaisyConfig.pool``.
POOL_SERIAL = "serial"
POOL_THREAD = "thread"
POOL_PROCESS = "process"
POOL_KINDS = (POOL_SERIAL, POOL_THREAD, POOL_PROCESS)

#: One task: a no-argument callable returning a picklable partial result.
Task = Callable[[], Any]


def validate_pool_kind(name: str) -> str:
    if name not in POOL_KINDS:
        raise ValueError(f"unknown pool kind {name!r}; expected one of {POOL_KINDS}")
    return name


@session_owned
class ExecutorPool:
    """Common interface of every pool: ordered fan-out of independent tasks.

    ``run(tasks)`` executes the tasks (possibly concurrently) and returns
    their results **in task order**, which is what makes downstream merges
    deterministic regardless of completion order.  Pools are context
    managers; :meth:`close` releases workers and is idempotent.
    """

    kind: str = POOL_SERIAL
    workers: int = 1

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "ExecutorPool":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialPool(ExecutorPool):
    """Run tasks inline, one after another (the oracle pool)."""

    kind = POOL_SERIAL
    workers = 1

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        return [task() for task in tasks]


class ThreadPool(ExecutorPool):
    """A persistent thread pool; tasks share state and must only read it."""

    kind = POOL_THREAD

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor: ThreadPoolExecutor | None = None

    def _ensure(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(max_workers=self.workers)
        return self._executor

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        if len(tasks) <= 1:
            return [task() for task in tasks]
        executor = self._ensure()
        futures: list[Future] = [executor.submit(task) for task in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


#: Task table a forked worker inherits; indexed by the submitted task id.
#: Only valid between a ForkProcessPool.run's fork and its shutdown, and
#: guarded by _FORK_LOCK — concurrent process-pool runs from different
#: threads would otherwise fork each other's task tables.
_FORK_TASKS: Sequence[Task] = ()
_FORK_LOCK = threading.Lock()


def _run_forked_task(index: int) -> Any:
    return _FORK_TASKS[index]()


def fork_available() -> bool:
    """Whether the platform supports the fork start method (Linux: yes)."""
    return "fork" in multiprocessing.get_all_start_methods()


class ForkProcessPool(ExecutorPool):
    """Fork worker processes per run; tasks are inherited, results pickled.

    A fresh :class:`~concurrent.futures.ProcessPoolExecutor` is created per
    :meth:`run` so the forked children see the *current* engine state (the
    matrices and views the tasks close over); the fork is copy-on-write, so
    no explicit serialization of the inputs happens.  Mutations a task makes
    (e.g. lazily built per-stripe sort caches) stay in the child — tasks
    must treat shared state as read-only and return everything the caller
    needs.
    """

    kind = POOL_PROCESS

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not fork_available():  # pragma: no cover - platform dependent
            raise RuntimeError(
                "process pool requires the fork start method; "
                "use pool='thread' on this platform"
            )
        self.workers = workers

    def run(self, tasks: Sequence[Task]) -> list[Any]:
        global _FORK_TASKS
        if len(tasks) <= 1 or self.workers == 1:
            return [task() for task in tasks]
        context = multiprocessing.get_context("fork")
        with _FORK_LOCK:
            _FORK_TASKS = tasks
            try:
                with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks)), mp_context=context
                ) as executor:
                    # Workers are forked on first submit, after _FORK_TASKS
                    # is set, so every child inherits the full task table.
                    return list(executor.map(_run_forked_task, range(len(tasks))))
            finally:
                _FORK_TASKS = ()


def make_pool(kind: str, workers: int) -> ExecutorPool:
    """Build a pool of the given kind; ``workers <= 1`` is always serial.

    ``process`` silently degrades to ``thread`` on platforms without fork
    (the fork-inheritance contract cannot be met there).
    """
    validate_pool_kind(kind)
    if workers <= 1 or kind == POOL_SERIAL:
        return SerialPool()
    if kind == POOL_PROCESS:
        if fork_available():
            return ForkProcessPool(workers)
        return ThreadPool(workers)  # pragma: no cover - platform dependent
    return ThreadPool(workers)
