"""Partition-aware relations: row-range shards over a :class:`Relation`.

A :class:`ShardSet` splits a relation into ``num_shards`` contiguous
row-range shards (tids are assigned in row order, so row ranges are tid
ranges on every generated dataset).  Each :class:`RelationShard` carries its
own sub-relation and a **lazily built** :class:`~repro.relation.columnview.ColumnView`
slice — the shard's sorted/hash indexes are derived on first use, exactly
like a full relation's — so shard-local scans and filters never touch rows
outside the shard.

The shard *router* maps a scope's tids back to shards: cleaning operators
partition a query answer with :meth:`ShardSet.route_tids` and fan the
per-shard sub-scopes out over an :class:`~repro.parallel.pool.ExecutorPool`.
Routing relies only on tid membership, which is stable across Daisy's
in-place repairs (updates replace cells, never rows), so a ShardSet built at
registration time keeps routing correctly over the gradually cleaned
relation.  The per-shard *views* are snapshots of the relation the split
saw, for read-only scan/filter work over that version — repairs produce new
Relation objects and do not patch shard views, which is exactly why the
parallel cleaning path partitions *tids* with the router and reads cell
values through the live table's own (incrementally patched) view.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Iterator

from repro.relation.columnview import ColumnView
from repro.relation.relation import Relation
from repro._ownership import immutable_after_init, session_owned


@session_owned
class RelationShard:
    """One contiguous row-range slice of a relation.

    ``relation`` holds only the shard's rows; :meth:`view` materializes the
    shard's own columnar view on first use (per-shard sorted/hash indexes
    build lazily from there).  ``tid_lo`` / ``tid_hi`` summarize the tid
    range for range-based pruning; membership checks use :attr:`tids`.
    """

    __slots__ = ("index", "relation", "tid_lo", "tid_hi", "tids", "_view")

    def __init__(self, index: int, relation: Relation) -> None:
        self.index = index
        self.relation = relation
        tids = [row.tid for row in relation.rows]
        self.tids = frozenset(tids)
        self.tid_lo = min(tids) if tids else 0
        self.tid_hi = max(tids) if tids else -1
        self._view: ColumnView | None = None

    def __len__(self) -> int:
        return len(self.relation)

    def view(self) -> ColumnView:
        """The shard's own columnar view (built lazily, then cached).

        A **snapshot** of the relation the split saw: in-place repairs
        produce new Relation objects and do not patch shard views — use the
        router for anything that must track the live table.
        """
        if self._view is None:
            self._view = ColumnView.from_relation(self.relation)
        return self._view

    def filter_tids(self, attr: str, op: str, value: Any) -> set[int]:
        """Shard-local selection via the shard view's lazy indexes
        (snapshot semantics — see :meth:`view`)."""
        return self.view().filter_tids(attr, op, value)

    def __repr__(self) -> str:
        return (
            f"RelationShard(#{self.index}, {len(self)} rows, "
            f"tids [{self.tid_lo}, {self.tid_hi}])"
        )


@immutable_after_init
class ShardSet:
    """A relation split into contiguous row-range shards, plus the router.

    Build with :meth:`split`.  ``route_tids`` partitions any tid iterable by
    owning shard (unknown tids are dropped — they cannot contribute to any
    shard-local computation, mirroring how the serial operators skip absent
    tids); ``shard_of_tid`` exposes the raw routing map.
    """

    __slots__ = ("relation", "shards", "_shard_of_tid")

    def __init__(self, relation: Relation, shards: list[RelationShard]) -> None:
        self.relation = relation
        self.shards = shards
        self._shard_of_tid: dict[int, int] = {}
        for shard in shards:
            for tid in shard.tids:
                self._shard_of_tid[tid] = shard.index

    @classmethod
    def split(cls, relation: Relation, num_shards: int) -> "ShardSet":
        """Split ``relation`` into ``num_shards`` contiguous row ranges.

        Shards are balanced to within one row; fewer shards than requested
        are produced when the relation is smaller than ``num_shards``.
        """
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        rows = relation.rows
        n = len(rows)
        per = max(1, math.ceil(n / num_shards)) if n else 1
        shards: list[RelationShard] = []
        if n == 0:
            shards.append(RelationShard(0, relation.empty_like()))
        else:
            for index, start in enumerate(range(0, n, per)):
                sub = Relation(
                    relation.schema, rows[start:start + per], name=relation.name
                )
                shards.append(RelationShard(index, sub))
        return cls(relation, shards)

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self) -> Iterator[RelationShard]:
        return iter(self.shards)

    def shard_of_tid(self, tid: int) -> int | None:
        return self._shard_of_tid.get(tid)

    def route_tids(self, tids: Iterable[int]) -> dict[int, set[int]]:
        """Partition ``tids`` by owning shard index (ascending shard order).

        Tids not present in any shard are dropped; the returned dict only
        has entries for shards that received at least one tid.
        """
        routed: dict[int, set[int]] = {}
        lookup = self._shard_of_tid
        for tid in tids:
            shard = lookup.get(tid)
            if shard is None:
                continue
            routed.setdefault(shard, set()).add(tid)
        return {index: routed[index] for index in sorted(routed)}

    def filter_tids(self, attr: str, op: str, value: Any) -> set[int]:
        """Union of per-shard selections — equals the unsharded filter over
        the relation snapshot the split saw (repairs land in new Relation
        objects; re-split to filter repaired values)."""
        out: set[int] = set()
        for shard in self.shards:
            out |= shard.filter_tids(attr, op, value)
        return out

    def __repr__(self) -> str:
        return f"ShardSet({len(self.shards)} shards over {len(self.relation)} rows)"
