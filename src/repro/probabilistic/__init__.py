"""Probabilistic data model: attribute-level uncertainty, lineage, worlds.

``value`` has no dependency on the relational layer; ``lineage`` and
``worlds`` build on relations.  The latter are loaded lazily (PEP 562) so
that ``repro.relation`` can import ``repro.probabilistic.value`` without a
circular import.
"""

from types import MappingProxyType

from repro.probabilistic.value import (
    Candidate,
    PValue,
    ValueRange,
    candidate_values,
    cell_compare,
    cells_may_equal,
    plain,
)

_LAZY = MappingProxyType({
    "JoinLineage": "repro.probabilistic.lineage",
    "JoinResult": "repro.probabilistic.lineage",
    "join_with_lineage": "repro.probabilistic.lineage",
    "incremental_join_update": "repro.probabilistic.lineage",
    "World": "repro.probabilistic.worlds",
    "enumerate_worlds": "repro.probabilistic.worlds",
    "world_count": "repro.probabilistic.worlds",
})

__all__ = [
    "Candidate",
    "PValue",
    "ValueRange",
    "plain",
    "candidate_values",
    "cells_may_equal",
    "cell_compare",
    *_LAZY.keys(),
]


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        module = importlib.import_module(_LAZY[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
