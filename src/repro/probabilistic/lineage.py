"""Lineage tracking for join results over (probabilistic) relations.

Section 4.4 of the paper: ``clean_join`` must be able to (a) extract the
qualifying part of each input relation from a join result, (b) clean each
part separately, and (c) update the join result incrementally.  That requires
knowing, for every output row, which input tids produced it — classic
*lineage* from probabilistic databases [Suciu et al.].

:class:`JoinLineage` stores output-tid -> (left tid, right tid) and the
reverse maps.  :func:`join_with_lineage` performs the possible-worlds
equi-join while recording lineage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.probabilistic.value import PValue, cells_may_equal
from repro.relation.relation import Relation, Row
from repro._ownership import session_owned


@session_owned
@dataclass
class JoinLineage:
    """Mapping between join-output rows and the input rows that produced them."""

    #: output tid -> (left input tid, right input tid)
    pairs: dict[int, tuple[int, int]] = field(default_factory=dict)

    def record(self, out_tid: int, left_tid: int, right_tid: int) -> None:
        self.pairs[out_tid] = (left_tid, right_tid)

    def left_tids(self) -> set[int]:
        return {l for l, _ in self.pairs.values()}

    def right_tids(self) -> set[int]:
        return {r for _, r in self.pairs.values()}

    def outputs_of_left(self, tid: int) -> set[int]:
        return {o for o, (l, _r) in self.pairs.items() if l == tid}

    def outputs_of_right(self, tid: int) -> set[int]:
        return {o for o, (_l, r) in self.pairs.items() if r == tid}

    def pair_exists(self, left_tid: int, right_tid: int) -> bool:
        return (left_tid, right_tid) in set(self.pairs.values())

    def __len__(self) -> int:
        return len(self.pairs)


@dataclass
class JoinResult:
    """A join output relation together with its lineage and key attributes."""

    relation: Relation
    lineage: JoinLineage
    left_attr: str
    right_attr: str
    left_name: str
    right_name: str

    def next_tid(self) -> int:
        return max((r.tid for r in self.relation.rows), default=-1) + 1


def join_with_lineage(
    left: Relation,
    right: Relation,
    left_attr: str,
    right_attr: str,
    left_prefix: str | None = None,
    right_prefix: str | None = None,
) -> JoinResult:
    """Equi-join with possible-worlds key matching and lineage recording.

    Output schemas are prefixed with the relation names (or explicit
    prefixes) so same-named attributes stay distinguishable, mirroring how
    the paper's join example keeps ``C.Zip`` and ``E.Zip`` separate.
    """
    lp = left_prefix if left_prefix is not None else (left.name or "L")
    rp = right_prefix if right_prefix is not None else (right.name or "R")
    li = left.schema.index_of(left_attr)
    ri = right.schema.index_of(right_attr)

    # Hash the right side on concrete candidate values.
    table: dict[Any, list[Row]] = {}
    range_rows: list[Row] = []
    for row in right.rows:
        key = row.values[ri]
        if isinstance(key, PValue):
            if any(c.is_range() for c in key.candidates):
                range_rows.append(row)
            for v in key.concrete_values():
                table.setdefault(v, []).append(row)
        else:
            table.setdefault(key, []).append(row)

    out_schema = left.schema.prefixed(lp).concat(right.schema.prefixed(rp))
    lineage = JoinLineage()
    out_rows: list[Row] = []
    seen: set[tuple[int, int]] = set()
    tid = 0
    for lrow in left.rows:
        key = lrow.values[li]
        matches: list[Row] = []
        if isinstance(key, PValue):
            for v in key.concrete_values():
                matches.extend(table.get(v, ()))
            if any(c.is_range() for c in key.candidates):
                matches.extend(
                    r
                    for r in right.rows
                    if cells_may_equal(key, r.values[ri])
                )
        else:
            matches.extend(table.get(key, ()))
        for rrow in range_rows:
            if cells_may_equal(key, rrow.values[ri]):
                matches.append(rrow)
        for rrow in matches:
            pair = (lrow.tid, rrow.tid)
            if pair in seen:
                continue
            seen.add(pair)
            out_rows.append(Row(tid, lrow.values + rrow.values))
            lineage.record(tid, lrow.tid, rrow.tid)
            tid += 1
    out = Relation(out_schema, out_rows, name=f"{lp}_join_{rp}")
    return JoinResult(
        relation=out,
        lineage=lineage,
        left_attr=left_attr,
        right_attr=right_attr,
        left_name=lp,
        right_name=rp,
    )


def incremental_join_update(
    result: JoinResult,
    left: Relation,
    right: Relation,
    new_left_tids: Iterable[int],
    new_right_tids: Iterable[int],
) -> JoinResult:
    """Extend a join result with pairs involving newly-added/changed tuples.

    Implements the incremental join of Fig. 3: only the *new* tuples of each
    side are matched against the full other side, and the outputs are
    union-ed with the existing result (duplicate (l, r) pairs are skipped).
    """
    li = left.schema.index_of(result.left_attr)
    ri = right.schema.index_of(result.right_attr)
    existing = set(result.lineage.pairs.values())
    out_rows = list(result.relation.rows)
    lineage = JoinLineage(dict(result.lineage.pairs))
    tid = result.next_tid()

    left_by_tid = left.tid_index()
    right_by_tid = right.tid_index()

    def try_pair(lrow: Row, rrow: Row) -> None:
        nonlocal tid
        if (lrow.tid, rrow.tid) in existing:
            return
        if cells_may_equal(lrow.values[li], rrow.values[ri]):
            existing.add((lrow.tid, rrow.tid))
            out_rows.append(Row(tid, lrow.values + rrow.values))
            lineage.record(tid, lrow.tid, rrow.tid)
            tid += 1

    new_left = [left_by_tid[t] for t in new_left_tids if t in left_by_tid]
    new_right = [right_by_tid[t] for t in new_right_tids if t in right_by_tid]
    for lrow in new_left:
        for rrow in right.rows:
            try_pair(lrow, rrow)
    new_left_set = {r.tid for r in new_left}
    for rrow in new_right:
        for lrow in left.rows:
            if lrow.tid in new_left_set:
                continue  # already paired above
            try_pair(lrow, rrow)

    relation = Relation(result.relation.schema, out_rows, name=result.relation.name)
    return JoinResult(
        relation=relation,
        lineage=lineage,
        left_attr=result.left_attr,
        right_attr=result.right_attr,
        left_name=result.left_name,
        right_name=result.right_name,
    )
