"""Attribute-level uncertain values.

The paper represents repaired data with *attribute-level uncertainty*
(Section 4): an erroneous cell is replaced by the set of candidate values it
may take, each carrying a frequency-based probability, plus the identifier of
the *possible world* (candidate pair) it belongs to.  A tuple then qualifies a
query operator iff at least one candidate value qualifies.

:class:`Candidate` is one candidate value; :class:`PValue` is the full
probabilistic cell.  Candidates may also be *ranges* (for general DCs with
inequality predicates, holistic repair produces fixes such as
``salary < 2000``) — see :class:`ValueRange`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import ProbabilisticValueError

#: Tolerance used when checking that probabilities sum to one.
PROB_TOLERANCE = 1e-6


@dataclass(frozen=True)
class ValueRange:
    """An open/closed interval candidate produced by holistic DC repair.

    ``low``/``high`` may be ``None`` for unbounded ends.  ``low_open`` /
    ``high_open`` control strictness, so ``ValueRange(low=2000, low_open=True)``
    means ``> 2000``.
    """

    low: float | None = None
    high: float | None = None
    low_open: bool = True
    high_open: bool = True

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None and self.low > self.high:
            raise ProbabilisticValueError(
                f"empty range: low={self.low} > high={self.high}"
            )

    def contains(self, value: Any) -> bool:
        """Return True iff a concrete ``value`` falls inside the range."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.low is not None:
            if self.low_open and value <= self.low:
                return False
            if not self.low_open and value < self.low:
                return False
        if self.high is not None:
            if self.high_open and value >= self.high:
                return False
            if not self.high_open and value > self.high:
                return False
        return True

    def overlaps(self, other: "ValueRange") -> bool:
        """Return True iff two ranges share at least one point."""
        lo_a = -math.inf if self.low is None else self.low
        hi_a = math.inf if self.high is None else self.high
        lo_b = -math.inf if other.low is None else other.low
        hi_b = math.inf if other.high is None else other.high
        if hi_a < lo_b or hi_b < lo_a:
            return False
        if hi_a == lo_b:
            return not (self.high_open or other.low_open)
        if hi_b == lo_a:
            return not (other.high_open or self.low_open)
        return True

    def midpoint(self, default_width: float = 1.0) -> float:
        """A representative concrete value inside the range (for inference)."""
        if self.low is not None and self.high is not None:
            return (self.low + self.high) / 2.0
        if self.low is not None:
            return self.low + default_width
        if self.high is not None:
            return self.high - default_width
        return 0.0

    def __str__(self) -> str:
        left = "(" if self.low_open else "["
        right = ")" if self.high_open else "]"
        lo = "-inf" if self.low is None else f"{self.low:g}"
        hi = "+inf" if self.high is None else f"{self.high:g}"
        return f"{left}{lo},{hi}{right}"


class Candidate:
    """One candidate value of a probabilistic cell.

    ``world`` identifies the candidate-pair / possible world the candidate
    belongs to (Section 4: "we store in each candidate value an identifier of
    the possible world it belongs to").  Candidates from the same repair that
    must co-occur share a world id.

    Treated as immutable (a slotted plain class rather than a frozen
    dataclass: candidate construction is on the repair hot path).
    """

    __slots__ = ("value", "prob", "world")

    def __init__(self, value: Any, prob: float, world: int = 0):
        if not (0.0 <= prob <= 1.0 + PROB_TOLERANCE):
            raise ProbabilisticValueError(
                f"candidate probability must be in [0,1], got {prob}"
            )
        self.value = value
        self.prob = prob
        self.world = world

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Candidate):
            return NotImplemented
        return (
            self.value == other.value
            and self.prob == other.prob
            and self.world == other.world
        )

    def __hash__(self) -> int:
        return hash((self.value, self.prob, self.world))

    def __repr__(self) -> str:
        return f"Candidate(value={self.value!r}, prob={self.prob!r}, world={self.world!r})"

    def matches(self, concrete: Any) -> bool:
        """True iff this candidate is compatible with a concrete value."""
        if isinstance(self.value, ValueRange):
            return self.value.contains(concrete)
        return self.value == concrete

    def is_range(self) -> bool:
        return isinstance(self.value, ValueRange)


class PValue:
    """A probabilistic (multi-candidate) cell value.

    The candidate list is normalized at construction: candidates with the
    same (value, world) are merged by summing probabilities, and the result
    is sorted by descending probability (ties broken by stable value order)
    so that :meth:`most_probable` is deterministic.
    """

    __slots__ = ("_candidates",)

    def __init__(self, candidates: Iterable[Candidate]):
        merged: dict[tuple[Any, int], float] = {}
        order: list[tuple[Any, int]] = []
        for cand in candidates:
            key = (cand.value, cand.world)
            if key not in merged:
                merged[key] = 0.0
                order.append(key)
            merged[key] += cand.prob
        if not merged:
            raise ProbabilisticValueError("PValue requires at least one candidate")
        total = sum(merged.values())
        if total <= 0:
            raise ProbabilisticValueError("candidate probabilities sum to zero")
        cands = [
            Candidate(value=key[0], prob=merged[key] / total, world=key[1])
            for key in order
        ]
        cands.sort(key=lambda c: (-c.prob, str(c.value), c.world))
        self._candidates: tuple[Candidate, ...] = tuple(cands)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_frequencies(
        cls, counts: dict[Any, int], world_ids: dict[Any, int] | None = None
    ) -> "PValue":
        """Build a PValue from raw frequency counts (the paper's fix weights)."""
        total = sum(counts.values())
        if total <= 0:
            raise ProbabilisticValueError("frequency counts sum to zero")
        worlds = world_ids or {}
        return cls(
            Candidate(value=v, prob=c / total, world=worlds.get(v, 0))
            for v, c in counts.items()
        )

    @classmethod
    def certain(cls, value: Any) -> "PValue":
        """A degenerate PValue with a single certain candidate."""
        return cls([Candidate(value=value, prob=1.0)])

    @classmethod
    def from_unique_weights(cls, items: Sequence[tuple[Any, int, int]]) -> "PValue":
        """Fast constructor for pre-merged candidates.

        ``items`` is a sequence of ``(value, world, weight)`` whose
        ``(value, world)`` keys are unique and whose weights are positive.
        Produces bit-identical results to feeding equivalent ``Candidate``
        objects through ``__init__`` (same normalization arithmetic, same
        ordering), skipping the merge pass and the double construction.
        """
        if not items:
            raise ProbabilisticValueError("PValue requires at least one candidate")
        total = 0
        for _value, _world, weight in items:
            total += weight
        probs = [0.0 + weight / total for _value, _world, weight in items]
        norm = sum(probs)
        if norm <= 0:
            raise ProbabilisticValueError("candidate probabilities sum to zero")
        cands = [
            Candidate(value=value, prob=prob / norm, world=world)
            for (value, world, _weight), prob in zip(items, probs)
        ]
        cands.sort(key=lambda c: (-c.prob, str(c.value), c.world))
        obj = cls.__new__(cls)
        obj._candidates = tuple(cands)
        return obj

    # -- accessors -------------------------------------------------------------

    @property
    def candidates(self) -> tuple[Candidate, ...]:
        return self._candidates

    def values(self) -> tuple[Any, ...]:
        """All candidate values (including ranges)."""
        return tuple(c.value for c in self._candidates)

    def concrete_values(self) -> tuple[Any, ...]:
        """Only the non-range candidate values."""
        return tuple(
            c.value for c in self._candidates if not isinstance(c.value, ValueRange)
        )

    def worlds(self) -> tuple[int, ...]:
        """Sorted distinct world ids present among candidates."""
        return tuple(sorted({c.world for c in self._candidates}))

    def most_probable(self) -> Any:
        """The highest-probability candidate value (ties are deterministic)."""
        return self._candidates[0].value

    def probability_of(self, value: Any) -> float:
        """Total probability mass compatible with ``value``."""
        return sum(c.prob for c in self._candidates if c.matches(value))

    def is_certain(self) -> bool:
        return len(self._candidates) == 1 and not self._candidates[0].is_range()

    # -- query semantics -------------------------------------------------------

    def matches(self, concrete: Any) -> bool:
        """Possible-worlds match: at least one candidate equals/contains it."""
        return any(c.matches(concrete) for c in self._candidates)

    def compare(self, op: str, concrete: Any) -> bool:
        """Evaluate ``self <op> concrete`` under possible-worlds semantics.

        Returns True iff *some* candidate satisfies the comparison.  Range
        candidates satisfy an inequality iff some point of the range does.
        """
        for cand in self._candidates:
            if cand.is_range():
                if _range_satisfies(cand.value, op, concrete):
                    return True
            elif _concrete_satisfies(cand.value, op, concrete):
                return True
        return False

    def overlap_values(self, other: "PValue") -> set[Any]:
        """Concrete candidate values shared by two PValues (for prob. joins)."""
        mine = set(self.concrete_values())
        theirs = set(other.concrete_values())
        return mine & theirs

    # -- dunder ----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PValue):
            return self._candidates == other._candidates
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._candidates)

    def __iter__(self) -> Iterator[Candidate]:
        return iter(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{c.value}@{c.prob:.2f}/w{c.world}" for c in self._candidates
        )
        return f"PValue({inner})"

    def __str__(self) -> str:
        inner = ", ".join(f"{c.value} {c.prob:.0%}" for c in self._candidates)
        return "{" + inner + "}"


def _concrete_satisfies(left: Any, op: str, right: Any) -> bool:
    """Evaluate a comparison between two concrete values, NULL-safe."""
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op in ("!=", "<>"):
        return left != right
    try:
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
    except TypeError:
        return False
    raise ProbabilisticValueError(f"unknown comparison operator {op!r}")


def _range_satisfies(rng: ValueRange, op: str, concrete: Any) -> bool:
    """Can *some* point of ``rng`` satisfy ``point <op> concrete``?"""
    if concrete is None or not isinstance(concrete, (int, float)):
        return False
    lo = -math.inf if rng.low is None else rng.low
    hi = math.inf if rng.high is None else rng.high
    if op == "=":
        return rng.contains(concrete)
    if op in ("!=", "<>"):
        return True  # any non-degenerate range has a point != concrete
    if op == "<":
        return lo < concrete or (lo == concrete and not rng.low_open and lo < concrete)
    if op == "<=":
        return lo <= concrete
    if op == ">":
        return hi > concrete
    if op == ">=":
        return hi >= concrete
    raise ProbabilisticValueError(f"unknown comparison operator {op!r}")


def plain(value: Any) -> Any:
    """Collapse ``value`` to a concrete value if probabilistic (most probable)."""
    if isinstance(value, PValue):
        picked = value.most_probable()
        if isinstance(picked, ValueRange):
            return picked.midpoint()
        return picked
    return value


def candidate_values(value: Any) -> Sequence[Any]:
    """All values a cell may take: a singleton for concrete cells."""
    if isinstance(value, PValue):
        return value.values()
    return (value,)


def cells_may_equal(a: Any, b: Any) -> bool:
    """True iff two cells (probabilistic or concrete) may be equal.

    This implements the paper's probabilistic-join semantics: a pair joins
    iff the candidate sets of the join keys overlap.
    """
    if isinstance(a, PValue) and isinstance(b, PValue):
        if a.overlap_values(b):
            return True
        # A range candidate may contain one of the other's concrete values.
        return any(
            ca.is_range() and ca.value.contains(v)
            for ca in a.candidates
            for v in b.concrete_values()
        ) or any(
            cb.is_range() and cb.value.contains(v)
            for cb in b.candidates
            for v in a.concrete_values()
        )
    if isinstance(a, PValue):
        return a.matches(b)
    if isinstance(b, PValue):
        return b.matches(a)
    return a == b


def cell_compare(a: Any, op: str, b: Any) -> bool:
    """Possible-worlds comparison between two cells.

    Each side may be concrete or probabilistic; the comparison holds iff some
    combination of candidates satisfies it.
    """
    if isinstance(a, PValue) and isinstance(b, PValue):
        return any(
            _pair_satisfies(ca, op, cb) for ca in a.candidates for cb in b.candidates
        )
    if isinstance(a, PValue):
        return a.compare(op, b)
    if isinstance(b, PValue):
        return b.compare(_flip(op), a)
    return _concrete_satisfies(a, op, b)


def _pair_satisfies(ca: Candidate, op: str, cb: Candidate) -> bool:
    if ca.is_range() and cb.is_range():
        if op == "=":
            return ca.value.overlaps(cb.value)
        # For inequalities two ranges almost always admit a satisfying pair;
        # be conservative (possible-worlds = may-satisfy).
        return True
    if ca.is_range():
        return _range_satisfies(ca.value, op, cb.value)
    if cb.is_range():
        return _range_satisfies(cb.value, _flip(op), ca.value)
    return _concrete_satisfies(ca.value, op, cb.value)


def _flip(op: str) -> str:
    """Mirror a comparison operator (a op b  <=>  b flip(op) a)."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!=", "<>": "<>"}[op]
