"""Possible-world enumeration over probabilistic relations.

Attribute-level uncertainty compactly encodes a set of *possible worlds*:
every way of picking one candidate per probabilistic cell (respecting world
ids — candidates of one repair that share a world id must be picked
together).  Enumeration is exponential, so it is only meant for small
relations; it exists to let tests and users verify possible-worlds semantics
(e.g. that a tuple appears in a query result iff it qualifies in at least one
world).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Iterator

from repro.probabilistic.value import PValue, ValueRange
from repro.relation.relation import Relation, Row


@dataclass(frozen=True)
class World:
    """One fully-concrete instantiation of a probabilistic relation."""

    relation: Relation
    probability: float


def _row_choices(row: Row) -> Iterator[tuple[tuple[Any, ...], float]]:
    """Yield (concrete values, probability) for every instantiation of a row.

    Candidates sharing a world id across different cells of the same row are
    chosen jointly: a row instantiation is valid only if all probabilistic
    cells that carry world ids agree on the chosen world (cells whose
    candidates all have world id 0 are treated as independent).
    """
    prob_cells = [
        (i, v) for i, v in enumerate(row.values) if isinstance(v, PValue)
    ]
    if not prob_cells:
        yield tuple(row.values), 1.0
        return

    # Partition probabilistic cells into world-linked (non-zero world ids)
    # and independent (all candidates in world 0).
    linked = [(i, v) for i, v in prob_cells if any(w != 0 for w in v.worlds())]
    independent = [(i, v) for i, v in prob_cells if (i, v) not in linked]

    linked_worlds: list[int] = sorted(
        set(w for _, v in linked for w in v.worlds())
    ) or [0]

    def instantiations_for_world(world: int) -> Iterator[tuple[dict[int, Any], float]]:
        per_cell: list[list[tuple[int, Any, float]]] = []
        for idx, pv in linked:
            cands = [c for c in pv.candidates if c.world == world]
            if not cands:
                cands = list(pv.candidates)  # cell not constrained by world
            per_cell.append([(idx, c.value, c.prob) for c in cands])
        for combo in itertools.product(*per_cell) if per_cell else [()]:
            assignment = {idx: val for idx, val, _p in combo}
            prob = 1.0
            for _idx, _val, p in combo:
                prob *= p
            yield assignment, prob

    world_weight = 1.0 / len(linked_worlds)
    base_choices: list[tuple[dict[int, Any], float]] = []
    if linked:
        for world in linked_worlds:
            for assignment, prob in instantiations_for_world(world):
                base_choices.append((assignment, prob * world_weight))
    else:
        base_choices.append(({}, 1.0))

    indep_per_cell = [
        [(idx, c.value, c.prob) for c in pv.candidates] for idx, pv in independent
    ]
    for base_assignment, base_prob in base_choices:
        for combo in itertools.product(*indep_per_cell) if indep_per_cell else [()]:
            assignment = dict(base_assignment)
            prob = base_prob
            for idx, val, p in combo:
                assignment[idx] = val
                prob *= p
            values = tuple(
                assignment.get(i, v) for i, v in enumerate(row.values)
            )
            yield values, prob


def enumerate_worlds(relation: Relation, limit: int = 10000) -> list[World]:
    """Enumerate concrete worlds of ``relation`` (up to ``limit``).

    Range candidates are concretised with their midpoint.  World
    probabilities are products of per-row instantiation probabilities
    (rows are independent).
    """
    per_row: list[list[tuple[tuple[Any, ...], float]]] = []
    total = 1
    for row in relation.rows:
        choices = list(_row_choices(row))
        total *= max(1, len(choices))
        if total > limit:
            raise ValueError(
                f"world count exceeds limit={limit}; relation too uncertain to enumerate"
            )
        per_row.append(choices)

    worlds: list[World] = []
    for combo in itertools.product(*per_row) if per_row else [()]:
        rows = []
        prob = 1.0
        for tid, (values, p) in enumerate(combo):
            concrete = tuple(
                v.midpoint() if isinstance(v, ValueRange) else v for v in values
            )
            rows.append(Row(relation.rows[tid].tid, concrete))
            prob *= p
        worlds.append(World(Relation(relation.schema, rows), prob))
    return worlds


def world_count(relation: Relation) -> int:
    """Number of possible worlds without materializing them."""
    total = 1
    for row in relation.rows:
        n = sum(1 for _ in _row_choices(row))
        total *= max(1, n)
    return total


def tuple_appears_in_some_world(
    relation: Relation, attr: str, op: str, value: Any, tid: int
) -> bool:
    """Check, by enumeration, whether row ``tid`` satisfies the filter in
    at least one possible world — the ground truth for possible-worlds
    filter semantics."""
    idx = relation.schema.index_of(attr)
    row = relation.tid_index()[tid]
    from repro.probabilistic.value import cell_compare

    for values, _prob in _row_choices(row):
        cell = values[idx]
        if isinstance(cell, ValueRange):
            if cell_compare(PValue.certain(cell.midpoint()), op, value):
                return True
        elif cell_compare(cell, op, value):
            return True
    return False
