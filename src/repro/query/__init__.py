"""Query engine: AST, SQL parsing, cleaning-aware planning, execution."""

from repro.query.ast import (
    Aggregate,
    ColumnRef,
    Condition,
    Connector,
    JoinCondition,
    Query,
)
from repro.query.sql import parse_sql
from repro.query.logical import (
    CleanJoinNode,
    CleanSigmaNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
    collect_nodes,
    plan_contains,
)
from repro.query.planner import PlannerCatalog, build_plan, explain, resolve_query
from repro.query.executor import Executor, QueryResult

__all__ = [
    "Query",
    "ColumnRef",
    "Condition",
    "JoinCondition",
    "Aggregate",
    "Connector",
    "parse_sql",
    "PlanNode",
    "ScanNode",
    "FilterNode",
    "CleanSigmaNode",
    "JoinNode",
    "CleanJoinNode",
    "GroupByNode",
    "ProjectNode",
    "plan_contains",
    "collect_nodes",
    "PlannerCatalog",
    "build_plan",
    "resolve_query",
    "explain",
    "Executor",
    "QueryResult",
]
