"""Query AST for the supported SQL template (Section 5).

The template::

    SELECT <SELECTLIST>
    FROM <table> [, <table>...]
    [WHERE <col><op><val> [(AND|OR <col><op><val>)...]]
    [GROUP BY <cols>]

Select-list items are plain columns or aggregates (COUNT/SUM/AVG/MIN/MAX).
Where-clause conditions compare a column with a constant or — for equi-joins
— with another column.  Column names may be table-qualified
(``lineorder.suppkey``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import QueryError


class Connector(enum.Enum):
    """How where-clause conditions combine."""

    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    name: str
    table: Optional[str] = None

    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:
        return self.qualified()

    @classmethod
    def parse(cls, text: str) -> "ColumnRef":
        if "." in text:
            table, _, name = text.partition(".")
            return cls(name=name, table=table)
        return cls(name=text)


@dataclass(frozen=True)
class Condition:
    """``col <op> constant`` — a filter condition."""

    column: ColumnRef
    op: str
    value: Any

    def __str__(self) -> str:
        return f"{self.column}{self.op}{self.value!r}"


@dataclass(frozen=True)
class JoinCondition:
    """``colA = colB`` — an equi-join condition between two tables."""

    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate select-list item, e.g. ``AVG(co) AS avg_co``."""

    func: str  # count / sum / avg / min / max
    column: ColumnRef  # ColumnRef("*") for COUNT(*)
    alias: str

    def __str__(self) -> str:
        return f"{self.func.upper()}({self.column}) AS {self.alias}"


@dataclass
class Query:
    """A parsed query of the supported template."""

    tables: list[str]
    projection: list[ColumnRef] = field(default_factory=list)
    aggregates: list[Aggregate] = field(default_factory=list)
    conditions: list[Condition] = field(default_factory=list)
    join_conditions: list[JoinCondition] = field(default_factory=list)
    connector: Connector = Connector.AND
    group_by: list[ColumnRef] = field(default_factory=list)
    select_star: bool = False

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("query must reference at least one table")
        if len(self.tables) > 1 and len(self.join_conditions) < len(self.tables) - 1:
            raise QueryError(
                f"{len(self.tables)} tables need at least {len(self.tables) - 1} "
                f"join conditions, got {len(self.join_conditions)}"
            )
        if self.group_by and not self.aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")

    # -- attribute accessors used by the planner's overlap analysis ------------------

    def where_attrs(self, table: Optional[str] = None) -> set[str]:
        """Unqualified where-clause attribute names (optionally one table's)."""
        out = set()
        for cond in self.conditions:
            if table is None or cond.column.table in (None, table):
                out.add(cond.column.name)
        return out

    def projection_attrs(self, table: Optional[str] = None) -> set[str]:
        out = set()
        for ref in self.projection:
            if table is None or ref.table in (None, table):
                out.add(ref.name)
        for agg in self.aggregates:
            if agg.column.name != "*" and (
                table is None or agg.column.table in (None, table)
            ):
                out.add(agg.column.name)
        for ref in self.group_by:
            if table is None or ref.table in (None, table):
                out.add(ref.name)
        return out

    def conditions_for_table(self, table: str) -> list[Condition]:
        """Filter conditions attributable to one table.

        Unqualified columns are attributed to a table by the executor (which
        knows the schemas); here only explicitly qualified ones are matched.
        """
        return [c for c in self.conditions if c.column.table == table]

    def is_join_query(self) -> bool:
        return len(self.tables) > 1

    def has_aggregation(self) -> bool:
        return bool(self.aggregates)
