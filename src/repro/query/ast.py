"""Query AST for the supported SQL template (Section 5).

The template::

    SELECT <SELECTLIST>
    FROM <table> [, <table>...]
    [WHERE <col><op><val> [(AND|OR <col><op><val>)...]]
    [GROUP BY <cols>]

Select-list items are plain columns or aggregates (COUNT/SUM/AVG/MIN/MAX).
Where-clause conditions compare a column with a constant or — for equi-joins
— with another column.  Column names may be table-qualified
(``lineorder.suppkey``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryError
from repro._ownership import session_owned


class Connector(enum.Enum):
    """How where-clause conditions combine."""

    AND = "AND"
    OR = "OR"


@dataclass(frozen=True)
class Parameter:
    """A ``?`` placeholder in a prepared query (bound before execution).

    ``index`` is the 0-based position of the placeholder in the query text;
    :meth:`repro.api.PreparedQuery.execute` substitutes positional arguments
    by this index.
    """

    index: int

    def __str__(self) -> str:
        return "?"


def _sql_literal(value: Any) -> str:
    """Render a condition constant back into SQL-literal form.

    Every rendering round-trips through :func:`repro.query.sql.parse_sql`
    to an equal constant: strings escape single quotes by doubling them
    (SQL-standard), ``None`` renders as ``NULL``, bools as ``TRUE`` /
    ``FALSE`` (checked before ``int`` — ``True`` *is* an ``int``), and
    floats via ``repr`` (the tokenizer accepts exponent notation, so e.g.
    ``1e+20`` parses back to the same float).  Non-finite floats have no
    literal form and raise :class:`~repro.errors.QueryError`.
    """
    if isinstance(value, Parameter):
        return "?"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise QueryError(
                f"non-finite float {value!r} has no SQL literal form"
            )
        return repr(value)
    if isinstance(value, int):
        return str(value)
    raise QueryError(
        f"cannot render {type(value).__name__} constant {value!r} as a SQL literal"
    )


def sql_for_log(query: "Query") -> str:
    """Best-effort SQL text for query logging.

    :meth:`Query.to_sql` guarantees a parseable round-trip and *raises* for
    constants with no literal form (non-finite floats, arbitrary objects).
    Logging must never gate execution — such queries still run fine through
    the executor's Python comparisons — so callers that only need a log
    string fall back to a marker here.
    """
    try:
        return query.to_sql()
    except QueryError:
        return f"<unrenderable query over {', '.join(query.tables)}>"


@dataclass(frozen=True)
class ColumnRef:
    """A possibly table-qualified column reference."""

    name: str
    table: str | None = None

    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name

    def __str__(self) -> str:
        return self.qualified()

    @classmethod
    def parse(cls, text: str) -> "ColumnRef":
        if "." in text:
            table, _, name = text.partition(".")
            return cls(name=name, table=table)
        return cls(name=text)


@dataclass(frozen=True)
class Condition:
    """``col <op> constant`` — a filter condition."""

    column: ColumnRef
    op: str
    value: Any

    def __str__(self) -> str:
        return f"{self.column}{self.op}{self.value!r}"


@dataclass(frozen=True)
class JoinCondition:
    """``colA = colB`` — an equi-join condition between two tables."""

    left: ColumnRef
    right: ColumnRef

    def __str__(self) -> str:
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class Aggregate:
    """One aggregate select-list item, e.g. ``AVG(co) AS avg_co``."""

    func: str  # count / sum / avg / min / max
    column: ColumnRef  # ColumnRef("*") for COUNT(*)
    alias: str

    def __str__(self) -> str:
        return f"{self.func.upper()}({self.column}) AS {self.alias}"


@session_owned
@dataclass
class Query:
    """A parsed query of the supported template."""

    tables: list[str]
    projection: list[ColumnRef] = field(default_factory=list)
    aggregates: list[Aggregate] = field(default_factory=list)
    conditions: list[Condition] = field(default_factory=list)
    join_conditions: list[JoinCondition] = field(default_factory=list)
    connector: Connector = Connector.AND
    group_by: list[ColumnRef] = field(default_factory=list)
    select_star: bool = False

    def __post_init__(self) -> None:
        if not self.tables:
            raise QueryError("query must reference at least one table")
        if len(self.tables) > 1 and len(self.join_conditions) < len(self.tables) - 1:
            raise QueryError(
                f"{len(self.tables)} tables need at least {len(self.tables) - 1} "
                f"join conditions, got {len(self.join_conditions)}"
            )
        if self.group_by and not self.aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")

    # -- attribute accessors used by the planner's overlap analysis ------------------

    def where_attrs(self, table: str | None = None) -> set[str]:
        """Unqualified where-clause attribute names (optionally one table's)."""
        out = set()
        for cond in self.conditions:
            if table is None or cond.column.table in (None, table):
                out.add(cond.column.name)
        return out

    def projection_attrs(self, table: str | None = None) -> set[str]:
        out = set()
        for ref in self.projection:
            if table is None or ref.table in (None, table):
                out.add(ref.name)
        for agg in self.aggregates:
            if agg.column.name != "*" and (
                table is None or agg.column.table in (None, table)
            ):
                out.add(agg.column.name)
        for ref in self.group_by:
            if table is None or ref.table in (None, table):
                out.add(ref.name)
        return out

    def conditions_for_table(self, table: str) -> list[Condition]:
        """Filter conditions attributable to one table.

        Unqualified columns are attributed to a table by the executor (which
        knows the schemas); here only explicitly qualified ones are matched.
        """
        return [c for c in self.conditions if c.column.table == table]

    def is_join_query(self) -> bool:
        return len(self.tables) > 1

    def has_aggregation(self) -> bool:
        return bool(self.aggregates)

    def parameters(self) -> list[Parameter]:
        """The unbound ``?`` placeholders of this query, in index order."""
        params = [
            c.value for c in self.conditions if isinstance(c.value, Parameter)
        ]
        return sorted(params, key=lambda p: p.index)

    def to_sql(self) -> str:
        """Render the query back into SQL text of the supported template.

        The rendering round-trips through :func:`repro.query.sql.parse_sql`
        (modulo whitespace and keyword case) and is what the query log
        records for AST-form queries, so ``QueryLogEntry.sql`` is always a
        real query instead of ``"<ast>"``.  Unbound parameters render as
        ``?``.
        """
        items: list[str] = []
        if self.select_star:
            items.append("*")
        items.extend(c.qualified() for c in self.projection)
        items.extend(
            f"{a.func.upper()}"
            f"({'*' if a.column.name == '*' else a.column.qualified()})"
            f" AS {a.alias}"
            for a in self.aggregates
        )
        sql = f"SELECT {', '.join(items) if items else '*'} FROM {', '.join(self.tables)}"
        clauses = [
            f"{jc.left.qualified()} = {jc.right.qualified()}"
            for jc in self.join_conditions
        ]
        clauses.extend(
            f"{c.column.qualified()} {c.op} {_sql_literal(c.value)}"
            for c in self.conditions
        )
        if clauses:
            sql += " WHERE " + f" {self.connector.value} ".join(clauses)
        if self.group_by:
            sql += " GROUP BY " + ", ".join(g.qualified() for g in self.group_by)
        return sql
