"""Plan execution over (gradually cleaned) table states.

The executor follows the cleaning-aware plan produced by the planner:
per-table filters run with possible-worlds semantics, ``cleanσ`` nodes invoke
:func:`repro.core.operators.clean_sigma` (mutating the table state), join
nodes materialize lineage-tracked joins, ``clean⋈`` nodes invoke
:func:`repro.core.operators.clean_join`, and group-by/projection finish the
query.  Repaired cells always keep their original value among the
candidates, so cleaning can only *add* qualifying tuples — the executor
re-evaluates filters over the repaired scope to pick them up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.operators import CleanReport, clean_join, clean_sigma
from repro.core.state import TableState
from repro.engine.stats import WorkCounter
from repro.parallel.clean import ParallelContext
from repro.errors import PlanError, QueryError
from repro.metrics.timing import clock
from repro.probabilistic.lineage import join_with_lineage
from repro.probabilistic.value import cell_compare
from repro.query.ast import Condition, Connector, Query
from repro.query.logical import (
    CleanJoinNode,
    CleanSigmaNode,
    PlanNode,
    collect_nodes,
)
from repro.query.planner import PlannerCatalog, ResolvedQuery, build_plan, resolve_query
from repro.relation.relation import Relation, Row


@dataclass
class QueryResult:
    """The output of one query execution."""

    relation: Relation
    report: CleanReport = field(default_factory=CleanReport)
    plan: PlanNode | None = None
    elapsed_seconds: float = 0.0
    result_tids: dict[str, set[int]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.relation)

    def rows(self) -> list[tuple[Any, ...]]:
        return [row.values for row in self.relation.rows]

    def plain_rows(self) -> list[tuple[Any, ...]]:
        return self.relation.to_plain_rows()


class Executor:
    """Executes queries against a set of table states.

    ``cleaning_enabled=False`` turns the executor into a plain dirty-data
    engine (used for measuring raw query cost and by the offline baseline
    after its upfront cleaning pass).
    """

    def __init__(
        self,
        states: dict[str, TableState],
        catalog: PlannerCatalog,
        cleaning_enabled: bool = True,
        dc_error_threshold: float = 0.2,
        parallel: ParallelContext | None = None,
    ):
        self.states = states
        self.catalog = catalog
        self.cleaning_enabled = cleaning_enabled
        self.dc_error_threshold = dc_error_threshold
        #: Optional sharded/pooled execution context for the clean operators
        #: (owned by the session; None keeps the serial oracle paths).
        self.parallel = parallel

    # -- filter evaluation ----------------------------------------------------------

    @staticmethod
    def _row_satisfies(
        row: Row,
        relation: Relation,
        conditions: list[Condition],
        connector: Connector,
        qualified: bool,
    ) -> bool:
        if not conditions:
            return True
        checks = []
        for cond in conditions:
            attr = cond.column.qualified() if qualified else cond.column.name
            idx = relation.schema.index_of(attr)
            checks.append(cell_compare(row.values[idx], cond.op, cond.value))
        if connector is Connector.OR:
            return any(checks)
        return all(checks)

    def _filter_tids(
        self,
        state: TableState,
        conditions: list[Condition],
        connector: Connector,
        counter: WorkCounter | None = None,
    ) -> set[int]:
        """Tids of ``state`` satisfying ``conditions`` under ``connector``.

        ``counter`` overrides the table counter the selection charges — the
        batch planner's decision phase filters with a throwaway counter so
        pricing a rule group leaves the work-unit totals untouched.
        """
        counter = counter if counter is not None else state.counter
        relation = state.relation
        view = state.column_view()
        if view is not None:
            if not conditions:
                return set(view.tids)
            # Columnar selection: per-condition tid sets served from the
            # view's sorted/hash indexes, combined by the connector —
            # identical semantics to the per-row possible-worlds scan.
            sets = [
                view.filter_tids(
                    cond.column.name, cond.op, cond.value, counter=counter
                )
                for cond in conditions
            ]
            if connector is Connector.OR:
                out: set[int] = set()
                for s in sets:
                    out |= s
                return out
            sets.sort(key=len)
            out = sets[0]
            for s in sets[1:]:
                out &= s
            return out
        out = set()
        for row in relation.rows:
            counter.charge_scan()
            if self._row_satisfies(row, relation, conditions, connector, False):
                out.add(row.tid)
        return out

    # -- execution ----------------------------------------------------------------------

    def execute(self, query: Query | str) -> QueryResult:
        """Execute a query (AST or SQL string), cleaning along the way."""
        if isinstance(query, str):
            from repro.query.sql import parse_sql

            query = parse_sql(query)
        resolved = resolve_query(query, self.catalog)
        plan = build_plan(query, self.catalog, resolved=resolved)
        return self.execute_resolved(query, resolved, plan)

    def execute_resolved(
        self, query: Query, resolved: ResolvedQuery, plan: PlanNode
    ) -> QueryResult:
        """Execute an already-resolved, already-planned query.

        The prepared-query path (:meth:`repro.api.Session.prepare`) resolves
        and plans once, then calls this per execution with freshly bound
        condition values; the plan is reused because cleaning-operator
        placement depends only on the accessed attributes, never on the
        constants.
        """
        if query.is_join_query() and query.connector is Connector.OR:
            raise QueryError("OR-connected conditions are not supported in joins")
        unbound = query.parameters()
        if unbound:
            raise QueryError(
                f"query has {len(unbound)} unbound parameter(s); "
                "use Session.prepare(...).execute(params) to bind them"
            )

        started = clock()
        clean_tables = {
            node.table: node for node in collect_nodes(plan, CleanSigmaNode)
        }  # type: ignore[union-attr]
        clean_joins = collect_nodes(plan, CleanJoinNode)
        report = CleanReport()

        # Per-table: filter, clean, re-filter over the repaired scope.
        table_tids: dict[str, set[int]] = {}
        for table in query.tables:
            state = self._state(table)
            conditions = resolved.conditions_of(table)
            tids = self._filter_tids(state, conditions, query.connector)
            node = clean_tables.get(table)
            if node is not None and self.cleaning_enabled:
                sub = clean_sigma(
                    state,
                    tids,
                    where_attrs=node.where_attrs,
                    projection=node.projection_attrs,
                    dc_error_threshold=self.dc_error_threshold,
                    parallel=self.parallel,
                )
                report.merge(sub)
                # Newly qualifying tuples can only come from the repaired scope.
                recheck = (sub.scope_tids | sub.changed_tids) - tids
                if recheck and conditions:
                    rel = state.relation
                    view = state.column_view()
                    if view is not None:
                        pos_map = view.pos_of_tid
                        cond_cols = [
                            (view.columns[c.column.name], c.op, c.value)
                            for c in conditions
                        ]
                        any_ok = query.connector is Connector.OR
                        for tid in recheck:
                            pos = pos_map.get(tid)
                            if pos is None:
                                continue
                            state.counter.charge_scan()
                            checks = (
                                cell_compare(col[pos], op, value)
                                for col, op, value in cond_cols
                            )
                            if any(checks) if any_ok else all(checks):
                                tids.add(tid)
                    else:
                        tid_rows = rel.tid_index()
                        for tid in recheck:
                            row = tid_rows.get(tid)
                            if row is None:
                                continue
                            state.counter.charge_scan()
                            if self._row_satisfies(
                                row, rel, conditions, query.connector, False
                            ):
                                tids.add(tid)
            table_tids[table] = tids

        if not query.is_join_query():
            result = self._finish_single_table(query, resolved, table_tids)
        else:
            result = self._execute_joins(
                query, resolved, table_tids, clean_joins, report
            )

        elapsed = clock() - started
        return QueryResult(
            relation=result,
            report=report,
            plan=plan,
            elapsed_seconds=elapsed,
            result_tids=table_tids,
        )

    def _state(self, table: str) -> TableState:
        try:
            return self.states[table]
        except KeyError:
            raise PlanError(f"table {table!r} is not registered") from None

    # -- single table -----------------------------------------------------------------

    def _finish_single_table(
        self,
        query: Query,
        resolved: ResolvedQuery,
        table_tids: dict[str, set[int]],
    ) -> Relation:
        table = query.tables[0]
        state = self._state(table)
        if query.aggregates:
            keys = [g.name for g in resolved.group_by]
            aggs = [
                (a.func, a.column.name if a.column.name != "*" else "*", a.alias)
                for a in query.aggregates
            ]
            view = state.column_view()
            if view is not None and len(view) == len(state.relation):
                # Columnar group-by: grouping keys served from the view's
                # hash/group indexes instead of walking Row objects.
                result = state.relation.group_by(
                    keys, aggs, view=view, tids=table_tids[table]
                )
            else:
                result = state.relation.restrict_tids(table_tids[table]).group_by(
                    keys, aggs
                )
            if query.select_star or not resolved.projection:
                return result
            extra = [p.name for p in resolved.projection if p.name not in keys]
            return result.project(keys + extra + [a.alias for a in query.aggregates])
        result = state.relation.restrict_tids(table_tids[table])
        if query.select_star or not resolved.projection:
            return result
        return result.project([p.name for p in resolved.projection])

    # -- joins ---------------------------------------------------------------------------

    def _execute_joins(
        self,
        query: Query,
        resolved: ResolvedQuery,
        table_tids: dict[str, set[int]],
        clean_joins: list,
        report: CleanReport,
    ) -> Relation:
        # Left-deep join over the (filtered) table parts, in plan order.
        joined = {query.tables[0]}
        remaining = list(resolved.join_conditions)
        first_state = self._state(query.tables[0])
        acc = first_state.relation.restrict_tids(table_tids[query.tables[0]])
        acc = acc.prefixed(query.tables[0])
        acc_is_prefixed = True
        first_join = True
        join_cleaned = bool(clean_joins) and self.cleaning_enabled

        while remaining:
            pick = None
            for jc in remaining:
                if (jc.left.table in joined) != (jc.right.table in joined):
                    pick = jc
                    break
            if pick is None:
                raise PlanError("disconnected join graph at execution time")
            remaining.remove(pick)
            if pick.left.table in joined:
                left_ref, right_ref = pick.left, pick.right
            else:
                left_ref, right_ref = pick.right, pick.left
            right_table = right_ref.table
            assert right_table is not None
            right_state = self._state(right_table)
            right_rel = right_state.relation.restrict_tids(table_tids[right_table])

            if first_join and join_cleaned:
                # Rebuild unprefixed left for the lineage join.
                left_table = left_ref.table or query.tables[0]
                left_state = self._state(left_table)
                left_rel = left_state.relation.restrict_tids(table_tids[left_table])
                join_result = join_with_lineage(
                    left_rel,
                    right_rel,
                    left_ref.name,
                    right_ref.name,
                    left_prefix=left_table,
                    right_prefix=right_table,
                )
                left_conditions = resolved.conditions_of(left_table)
                right_conditions = resolved.conditions_of(right_table)
                join_result, sub = clean_join(
                    left_state,
                    right_state,
                    join_result,
                    left_where_attrs=resolved.where_attrs_of(left_table),
                    right_where_attrs=resolved.where_attrs_of(right_table),
                    dc_error_threshold=self.dc_error_threshold,
                    left_filter=lambda row: self._row_satisfies(
                        row, left_state.relation, left_conditions,
                        query.connector, False,
                    ),
                    right_filter=lambda row: self._row_satisfies(
                        row, right_state.relation, right_conditions,
                        query.connector, False,
                    ),
                    parallel=self.parallel,
                )
                report.merge(sub)
                acc = self._reapply_side_filters(
                    join_result.relation, query, resolved, (left_table, right_table)
                )
            else:
                left_attr = (
                    f"{left_ref.table}.{left_ref.name}" if acc_is_prefixed else left_ref.name
                )
                acc = acc.equi_join(
                    right_rel.prefixed(right_table),
                    left_attr,
                    f"{right_table}.{right_ref.name}",
                )
            joined.add(right_table)
            first_join = False

        return self._finish_join(query, resolved, acc)

    def _reapply_side_filters(
        self,
        relation: Relation,
        query: Query,
        resolved: ResolvedQuery,
        tables: tuple[str, str],
    ) -> Relation:
        """After clean⋈, re-check each side's filter on the join output.

        The incremental join may add pairs from relaxed tuples that do not
        satisfy a side filter; possible-worlds re-evaluation on the prefixed
        output columns removes them.
        """
        conditions = [
            c for c in resolved.conditions if c.column.table in tables
        ]
        if not conditions:
            return relation
        return relation.filter(
            lambda row: self._row_satisfies(
                row, relation, conditions, query.connector, qualified=True
            )
        )

    def _finish_join(
        self, query: Query, resolved: ResolvedQuery, acc: Relation
    ) -> Relation:
        if query.aggregates:
            keys = [g.qualified() for g in resolved.group_by]
            aggs = [
                (
                    a.func,
                    a.column.qualified() if a.column.name != "*" else "*",
                    a.alias,
                )
                for a in query.aggregates
            ]
            acc = acc.group_by(keys, aggs)
            if query.select_star or not resolved.projection:
                return acc
            extra = [
                p.qualified() for p in resolved.projection if p.qualified() not in keys
            ]
            return acc.project(keys + extra + [a.alias for a in query.aggregates])
        if query.select_star or not resolved.projection:
            return acc
        return acc.project([p.qualified() for p in resolved.projection])
