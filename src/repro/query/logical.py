"""Logical plan nodes for cleaning-aware query plans (Section 5.1).

The planner translates a :class:`~repro.query.ast.Query` plus the registered
rules into a tree of these nodes.  Cleaning operators (:class:`CleanSigmaNode`,
:class:`CleanJoinNode`) are injected next to the query operators whose
attributes overlap a rule, pushed down as close to the data as possible so
errors do not propagate up the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.dc import Rule
from repro.query.ast import Aggregate, ColumnRef, Condition, Connector


@dataclass
class PlanNode:
    """Base class for logical plan nodes."""

    def children(self) -> list["PlanNode"]:
        return []

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        """Render the plan subtree as an indented outline."""
        lines = [" " * indent + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 2))
        return "\n".join(lines)


@dataclass
class ScanNode(PlanNode):
    """Full scan of a registered table."""

    table: str

    def label(self) -> str:
        return f"Scan({self.table})"


@dataclass
class FilterNode(PlanNode):
    """Apply filter conditions (possible-worlds semantics)."""

    child: PlanNode
    conditions: list[Condition]
    connector: Connector = Connector.AND

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        sep = f" {self.connector.value} "
        return f"Filter({sep.join(str(c) for c in self.conditions)})"


@dataclass
class CleanSigmaNode(PlanNode):
    """The cleanσ operator attached to a select (or a bare scan)."""

    child: PlanNode
    table: str
    rules: list[Rule]
    where_attrs: set[str] = field(default_factory=set)
    projection_attrs: set[str] = field(default_factory=set)

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        names = ", ".join(r.name or str(r) for r in self.rules)
        return f"CleanSigma({self.table}; rules=[{names}])"


@dataclass
class JoinNode(PlanNode):
    """Equi-join of two subplans."""

    left: PlanNode
    right: PlanNode
    left_table: str
    right_table: str
    left_attr: str
    right_attr: str

    def children(self) -> list[PlanNode]:
        return [self.left, self.right]

    def label(self) -> str:
        return (
            f"Join({self.left_table}.{self.left_attr}="
            f"{self.right_table}.{self.right_attr})"
        )


@dataclass
class CleanJoinNode(PlanNode):
    """The clean⋈ operator attached to a join whose key overlaps a rule."""

    child: JoinNode
    left_rules: list[Rule]
    right_rules: list[Rule]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        names = ", ".join(
            r.name or str(r) for r in (self.left_rules + self.right_rules)
        )
        return f"CleanJoin(rules=[{names}])"


@dataclass
class GroupByNode(PlanNode):
    """Group-by with aggregates (cleaning is always pushed below it)."""

    child: PlanNode
    keys: list[ColumnRef]
    aggregates: list[Aggregate]

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        keys = ", ".join(str(k) for k in self.keys)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"GroupBy([{keys}]; [{aggs}])"


@dataclass
class ProjectNode(PlanNode):
    """Final projection."""

    child: PlanNode
    columns: list[ColumnRef]
    star: bool = False

    def children(self) -> list[PlanNode]:
        return [self.child]

    def label(self) -> str:
        if self.star:
            return "Project(*)"
        return f"Project({', '.join(str(c) for c in self.columns)})"


def plan_contains(node: PlanNode, node_type: type) -> bool:
    """Does the plan tree contain a node of the given type?"""
    if isinstance(node, node_type):
        return True
    return any(plan_contains(child, node_type) for child in node.children())


def collect_nodes(node: PlanNode, node_type: type) -> list[PlanNode]:
    """All nodes of one type, in depth-first order."""
    out: list[PlanNode] = []
    if isinstance(node, node_type):
        out.append(node)
    for child in node.children():
        out.extend(collect_nodes(child, node_type))
    return out
