"""The cleaning-aware logical planner (Section 5.1).

Builds a logical plan from a parsed query, the table schemas, and the
registered rules.  Cleaning operators are injected where query-operator
attributes overlap rule attributes, and pushed down:

* ``cleanσ`` sits directly above the select (filter) of each table whose
  accessed attributes overlap a rule — or above the bare scan when the rule
  overlaps only the projection;
* ``clean⋈`` wraps the lowest join whose key participates in a rule of
  either input;
* group-by always sits above all cleaning operators (cleaning is pushed
  below the aggregation to avoid grouping recomputation).

The planner also resolves unqualified column references against the table
schemas and rejects ambiguous ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.constraints.analysis import relevant_rules
from repro.constraints.dc import Rule
from repro.errors import PlanError
from repro.query.ast import ColumnRef, Condition, JoinCondition, Query
from repro.query.logical import (
    CleanJoinNode,
    CleanSigmaNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    PlanNode,
    ProjectNode,
    ScanNode,
)
from repro.relation.schema import Schema
from repro._ownership import shared_engine_state


@shared_engine_state
@dataclass
class PlannerCatalog:
    """What the planner knows: schemas and rules per table.

    Written only during engine registration (``Daisy.register_table`` /
    ``Daisy.add_rule`` delegate to the two seams below); planning reads it
    concurrently from every session.
    """

    MUTATED_UNDER = {
        "schemas": ("PlannerCatalog.add_table",),
        "rules": ("PlannerCatalog.add_table", "PlannerCatalog.add_rule"),
    }

    schemas: dict[str, Schema] = field(default_factory=dict)
    rules: dict[str, list[Rule]] = field(default_factory=dict)

    def add_table(self, name: str, schema: Schema) -> None:
        self.schemas[name] = schema
        self.rules.setdefault(name, [])

    def add_rule(self, table: str, rule: Rule) -> None:
        if table not in self.schemas:
            raise PlanError(f"unknown table {table!r}")
        self.rules.setdefault(table, []).append(rule)

    def resolve(self, ref: ColumnRef, tables: list[str]) -> ColumnRef:
        """Attach a table to an unqualified column reference."""
        if ref.table is not None:
            if ref.table not in self.schemas:
                raise PlanError(f"unknown table {ref.table!r} in {ref}")
            if ref.name not in self.schemas[ref.table]:
                raise PlanError(f"unknown column {ref} (schema of {ref.table})")
            return ref
        owners = [t for t in tables if ref.name in self.schemas.get(t, ())]
        if not owners:
            raise PlanError(f"column {ref.name!r} not found in tables {tables}")
        if len(owners) > 1:
            raise PlanError(
                f"ambiguous column {ref.name!r}: present in {owners}; qualify it"
            )
        return ColumnRef(name=ref.name, table=owners[0])


@dataclass
class ResolvedQuery:
    """A query with every column reference bound to its table."""

    query: Query
    conditions: list[Condition]
    join_conditions: list[JoinCondition]
    projection: list[ColumnRef]
    group_by: list[ColumnRef]

    def conditions_of(self, table: str) -> list[Condition]:
        return [c for c in self.conditions if c.column.table == table]

    def where_attrs_of(self, table: str) -> set[str]:
        return {c.column.name for c in self.conditions if c.column.table == table}

    def projection_attrs_of(self, table: str) -> set[str]:
        out = {p.name for p in self.projection if p.table == table}
        out |= {g.name for g in self.group_by if g.table == table}
        for agg in self.query.aggregates:
            if agg.column.name != "*" and agg.column.table == table:
                out.add(agg.column.name)
        return out

    def join_attrs_of(self, table: str) -> set[str]:
        out = set()
        for jc in self.join_conditions:
            if jc.left.table == table:
                out.add(jc.left.name)
            if jc.right.table == table:
                out.add(jc.right.name)
        return out


def resolve_query(query: Query, catalog: PlannerCatalog) -> ResolvedQuery:
    """Bind all column references of ``query`` to tables."""
    for table in query.tables:
        if table not in catalog.schemas:
            raise PlanError(f"unknown table {table!r}")
    tables = query.tables
    conditions = [
        Condition(catalog.resolve(c.column, tables), c.op, c.value)
        for c in query.conditions
    ]
    join_conditions = [
        JoinCondition(
            catalog.resolve(jc.left, tables), catalog.resolve(jc.right, tables)
        )
        for jc in query.join_conditions
    ]
    projection = [catalog.resolve(p, tables) for p in query.projection]
    group_by = [catalog.resolve(g, tables) for g in query.group_by]
    agg_resolved = [
        agg if agg.column.name == "*" else type(agg)(
            func=agg.func, column=catalog.resolve(agg.column, tables), alias=agg.alias
        )
        for agg in query.aggregates
    ]
    query.aggregates = agg_resolved
    return ResolvedQuery(
        query=query,
        conditions=conditions,
        join_conditions=join_conditions,
        projection=projection,
        group_by=group_by,
    )


def build_plan(
    query: Query,
    catalog: PlannerCatalog,
    resolved: ResolvedQuery | None = None,
) -> PlanNode:
    """Build the cleaning-aware logical plan for ``query``.

    ``resolved`` lets callers that already ran :func:`resolve_query` (the
    executor, prepared queries) skip the second resolution pass.
    """
    if resolved is None:
        resolved = resolve_query(query, catalog)
    per_table: dict[str, PlanNode] = {}

    for table in query.tables:
        node: PlanNode = ScanNode(table)
        conditions = resolved.conditions_of(table)
        if conditions:
            node = FilterNode(node, conditions, query.connector)
        where_attrs = resolved.where_attrs_of(table)
        accessed = (
            where_attrs
            | resolved.projection_attrs_of(table)
            | resolved.join_attrs_of(table)
        )
        table_rules = relevant_rules(accessed, where_attrs, catalog.rules.get(table, []))
        if table_rules:
            node = CleanSigmaNode(
                child=node,
                table=table,
                rules=table_rules,
                where_attrs=where_attrs,
                projection_attrs=resolved.projection_attrs_of(table),
            )
        per_table[table] = node

    plan = per_table[query.tables[0]]
    joined = {query.tables[0]}
    remaining_joins = list(resolved.join_conditions)
    clean_join_done = False

    while len(joined) < len(query.tables):
        # Find a join condition connecting the joined set to a new table.
        pick: JoinCondition | None = None
        for jc in remaining_joins:
            lt, rt = jc.left.table, jc.right.table
            if (lt in joined) != (rt in joined):
                pick = jc
                break
        if pick is None:
            raise PlanError(
                "join graph is disconnected: remaining joins "
                f"{[str(j) for j in remaining_joins]}, joined {sorted(joined)}"
            )
        remaining_joins.remove(pick)
        if pick.left.table in joined:
            left_ref, right_ref = pick.left, pick.right
        else:
            left_ref, right_ref = pick.right, pick.left
        new_table = right_ref.table
        assert new_table is not None
        join = JoinNode(
            left=plan,
            right=per_table[new_table],
            left_table=left_ref.table or query.tables[0],
            right_table=new_table,
            left_attr=left_ref.name,
            right_attr=right_ref.name,
        )
        plan = join
        joined.add(new_table)

        if not clean_join_done:
            left_rules = [
                r
                for r in catalog.rules.get(join.left_table, [])
                if join.left_attr in _rule_attrs(r)
            ]
            right_rules = [
                r
                for r in catalog.rules.get(join.right_table, [])
                if join.right_attr in _rule_attrs(r)
            ]
            if left_rules or right_rules:
                plan = CleanJoinNode(
                    child=join, left_rules=left_rules, right_rules=right_rules
                )
                clean_join_done = True

    if query.aggregates:
        plan = GroupByNode(plan, keys=resolved.group_by, aggregates=query.aggregates)
    plan = ProjectNode(plan, columns=resolved.projection, star=query.select_star)
    return plan


def _rule_attrs(rule: Rule) -> set[str]:
    from repro.constraints.analysis import rule_attributes

    return rule_attributes(rule)


def explain(query: Query, catalog: PlannerCatalog) -> str:
    """A human-readable plan outline (for debugging and the examples)."""
    return build_plan(query, catalog).pretty()
