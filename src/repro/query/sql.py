"""A small SQL parser for the supported query template.

Handles exactly the grammar of Section 5 (SELECT / FROM / WHERE with AND-or-
OR-connected comparisons / GROUP BY), with table-qualified columns, numeric
and quoted-string constants, and aggregate select items.  Case-insensitive
keywords; identifiers keep their case.
"""

from __future__ import annotations

import re
from typing import Any

from repro._ownership import session_owned
from repro.errors import QueryParseError
from repro.query.ast import (
    Aggregate,
    ColumnRef,
    Condition,
    Connector,
    JoinCondition,
    Parameter,
    Query,
)

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^']|'')*' | "[^"]*" |             # strings ('' escapes a quote)
        -?\d+(?:\.\d+)?(?:[eE][-+]?\d+)? |     # numbers (incl. exponent form)
        [A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)? |  # identifiers
        <> | != | <= | >= | = | < | > |
        \( | \) | , | \* | \?
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset((
    "select", "from", "where", "group", "by", "and", "or", "as",
    "count", "sum", "avg", "min", "max",
    "null", "true", "false",
))

_AGG_FUNCS = frozenset(("count", "sum", "avg", "min", "max"))

_OPS = frozenset(("=", "!=", "<>", "<", "<=", ">", ">="))


def _tokenize(sql: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    text = sql.strip().rstrip(";")
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise QueryParseError(
                f"unexpected character at {pos}: {text[pos:pos + 20]!r}"
            )
        tokens.append(match.group(1))
        pos = match.end()
        while pos < len(text) and text[pos].isspace():
            pos += 1
    return tokens


@session_owned
class _Stream:
    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def peek_kw(self) -> str | None:
        token = self.peek()
        return token.lower() if token is not None else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.pos += 1
        return token

    def expect_kw(self, keyword: str) -> None:
        token = self.next()
        if token.lower() != keyword:
            raise QueryParseError(f"expected {keyword.upper()}, got {token!r}")

    def accept_kw(self, keyword: str) -> bool:
        if self.peek_kw() == keyword:
            self.next()
            return True
        return False

    def exhausted(self) -> bool:
        return self.pos >= len(self.tokens)


def _is_identifier(token: str) -> bool:
    return (
        bool(re.match(r"^[A-Za-z_][A-Za-z0-9_]*(\.[A-Za-z_][A-Za-z0-9_]*)?$", token))
        and token.lower() not in _KEYWORDS
    )


def _parse_value(token: str) -> Any:
    if token.startswith("'"):
        return token[1:-1].replace("''", "'")
    if token.startswith('"'):
        return token[1:-1]
    lowered = token.lower()
    if lowered == "null":
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        if "." in token or "e" in lowered:
            return float(token)
        return int(token)
    except ValueError:
        raise QueryParseError(f"invalid literal {token!r}") from None


def _parse_select_list(stream: _Stream) -> tuple[list[ColumnRef], list[Aggregate], bool]:
    projection: list[ColumnRef] = []
    aggregates: list[Aggregate] = []
    star = False
    while True:
        token = stream.next()
        lowered = token.lower()
        if token == "*":
            star = True
        elif lowered in _AGG_FUNCS:
            stream.expect_kw("(")
            inner = stream.next()
            column = ColumnRef(name="*") if inner == "*" else ColumnRef.parse(inner)
            stream.expect_kw(")")
            alias = f"{lowered}_{column.name if column.name != '*' else 'all'}"
            if stream.accept_kw("as"):
                alias = stream.next()
            aggregates.append(Aggregate(func=lowered, column=column, alias=alias))
        elif _is_identifier(token):
            projection.append(ColumnRef.parse(token))
        else:
            raise QueryParseError(f"bad select item {token!r}")
        if stream.peek() == ",":
            stream.next()
            continue
        break
    return projection, aggregates, star


def _parse_where(stream: _Stream) -> tuple[list[Condition], list[JoinCondition], Connector]:
    conditions: list[Condition] = []
    joins: list[JoinCondition] = []
    connector = Connector.AND
    saw_or = False
    saw_and = False
    num_params = 0
    while True:
        left_token = stream.next()
        if not _is_identifier(left_token):
            raise QueryParseError(f"expected column in WHERE, got {left_token!r}")
        op = stream.next()
        if op not in _OPS:
            raise QueryParseError(f"expected comparison operator, got {op!r}")
        if op == "<>":
            op = "!="
        right_token = stream.next()
        if right_token == "?":
            # Prepared-query placeholder: bound positionally at execute time.
            conditions.append(
                Condition(
                    column=ColumnRef.parse(left_token),
                    op=op,
                    value=Parameter(num_params),
                )
            )
            num_params += 1
        elif _is_identifier(right_token):
            if op != "=":
                raise QueryParseError(
                    f"column-to-column comparison must be an equi-join: "
                    f"{left_token} {op} {right_token}"
                )
            joins.append(
                JoinCondition(
                    left=ColumnRef.parse(left_token),
                    right=ColumnRef.parse(right_token),
                )
            )
        else:
            conditions.append(
                Condition(
                    column=ColumnRef.parse(left_token),
                    op=op,
                    value=_parse_value(right_token),
                )
            )
        if stream.accept_kw("and"):
            saw_and = True
            continue
        if stream.accept_kw("or"):
            saw_or = True
            continue
        break
    if saw_or and saw_and:
        raise QueryParseError("mixing AND and OR in one WHERE clause is not supported")
    if saw_or:
        connector = Connector.OR
        if joins:
            raise QueryParseError("OR-connected join conditions are not supported")
    return conditions, joins, connector


def parse_sql(sql: str) -> Query:
    """Parse a SQL string of the supported template into a :class:`Query`."""
    stream = _Stream(_tokenize(sql))
    stream.expect_kw("select")
    projection, aggregates, star = _parse_select_list(stream)

    stream.expect_kw("from")
    tables = [stream.next()]
    if not _is_identifier(tables[0]):
        raise QueryParseError(f"bad table name {tables[0]!r}")
    while stream.peek() == ",":
        stream.next()
        table = stream.next()
        if not _is_identifier(table):
            raise QueryParseError(f"bad table name {table!r}")
        tables.append(table)

    conditions: list[Condition] = []
    joins: list[JoinCondition] = []
    connector = Connector.AND
    if stream.accept_kw("where"):
        conditions, joins, connector = _parse_where(stream)

    group_by: list[ColumnRef] = []
    if stream.accept_kw("group"):
        stream.expect_kw("by")
        group_by.append(ColumnRef.parse(stream.next()))
        while stream.peek() == ",":
            stream.next()
            group_by.append(ColumnRef.parse(stream.next()))

    if not stream.exhausted():
        raise QueryParseError(f"trailing tokens: {stream.peek()!r}")

    return Query(
        tables=tables,
        projection=projection,
        aggregates=aggregates,
        conditions=conditions,
        join_conditions=joins,
        connector=connector,
        group_by=group_by,
        select_star=star,
    )
