"""Relational substrate: schemas, row-store relations, indexes, CSV i/o."""

from repro.relation.schema import Column, ColumnType, Schema
from repro.relation.relation import Relation, Row
from repro.relation.index import GroupIndex, HashIndex
from repro.relation.io import from_csv_string, read_csv, to_csv_string, write_csv

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Relation",
    "Row",
    "GroupIndex",
    "HashIndex",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
]
