"""Relational substrate: schemas, row/column relations, indexes, CSV i/o."""

from repro.relation.schema import Column, ColumnType, Schema
from repro.relation.columnview import (
    BACKEND_COLUMNAR,
    BACKEND_ROWSTORE,
    BACKENDS,
    ColumnView,
    PatchBatch,
    validate_backend,
)
from repro.relation.relation import Relation, Row
from repro.relation.index import GroupIndex, HashIndex
from repro.relation.io import from_csv_string, read_csv, to_csv_string, write_csv

__all__ = [
    "BACKEND_COLUMNAR",
    "BACKEND_ROWSTORE",
    "BACKENDS",
    "Column",
    "ColumnType",
    "ColumnView",
    "PatchBatch",
    "Schema",
    "Relation",
    "Row",
    "GroupIndex",
    "HashIndex",
    "validate_backend",
    "read_csv",
    "write_csv",
    "to_csv_string",
    "from_csv_string",
]
