"""Columnar execution substrate: typed per-attribute arrays over a relation.

The row-store :class:`~repro.relation.relation.Relation` is the semantics
oracle of the system, but its per-``Row`` hot loops dominate every
detection/cleaning benchmark.  A :class:`ColumnView` materializes one
relation as:

* one raw cell array per attribute (``columns[attr][pos]``),
* a parallel tid array (``tids[pos]``) with a lazy tid -> position map,
* a *PValue sidecar* per attribute — the set of positions currently holding
  a probabilistic cell, so the fast paths can run plain comparisons over
  concrete cells and fall back to possible-worlds ``cell_compare`` only for
  the (few) probabilistic positions,
* lazily built, per-attribute **sorted** and **hash** indexes that turn
  range/equality selections into binary searches and dict lookups,
* a small *derived cache* where higher layers (relaxation, detection) park
  per-attribute-set structures that must die when those attributes change.

Views are immutable by convention and cached on the relation
(:meth:`Relation.column_view`).  When Daisy applies in-place fixes
(``Relation.update_cells`` / ``apply_delta``) the new relation receives a
**patched** view: untouched column arrays and indexes are shared with the
old view, touched columns are copied and re-stamped, and derived caches
mentioning a touched attribute are dropped.  This keeps the columnar
substrate incremental across the gradual-cleaning lifecycle instead of
rebuilding O(n·m) state after every repaired cell.
"""

from __future__ import annotations

import logging
import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro._ownership import shared_engine_state
from repro.engine.stats import WorkCounter
from repro.probabilistic.value import PValue, cell_compare, plain
from repro.relation import kernels
from repro.relation.kernels import COLUMN_NUMPY, COLUMN_PYTHON, TypedColumn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relation.relation import Relation
    from repro.relation.schema import Schema

logger = logging.getLogger(__name__)

#: Origin tags for the patch stream (see :class:`PatchBatch`).
PATCH_DATA = "data"        # an external update: the ground truth changed
PATCH_REPAIR = "repair"    # a cleaning repair: originals live in provenance
PATCH_RESOLVE = "resolve"  # PValue resolution: probabilistic cells collapsed

#: Supported execution backends for the detection/cleaning hot path.
BACKEND_COLUMNAR = "columnar"
BACKEND_ROWSTORE = "rowstore"
BACKENDS = (BACKEND_COLUMNAR, BACKEND_ROWSTORE)

#: Sentinel marking a column as unsortable (mixed incomparable types).
_UNSORTABLE = object()
#: Sentinel marking a column as unhashable.
_UNHASHABLE = object()
#: Sentinel marking a typed-column cache miss (None is a valid cache value:
#: "this column does not vectorize").
_TYPED_MISSING = object()

_EMPTY_SET: frozenset[int] = frozenset()


def validate_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name


class SortedColumn:
    """Concrete non-null values of one column in sorted order.

    ``values[i]`` is the i-th smallest concrete value and ``positions[i]``
    its row position.  Probabilistic and ``None`` cells are excluded — they
    are handled by the caller through the PValue sidecar / null semantics.

    ``exact`` optionally carries the numpy backend's pre-validated
    int64/float64 ndarray of ``values`` (same order), so batch probes via
    ``kernels.search_cuts`` skip values-side re-validation.  It is pure
    cache: semantics are defined by ``values``/``positions`` alone.
    """

    __slots__ = ("values", "positions", "exact")

    def __init__(
        self, values: list[Any], positions: list[int], exact: Any = None
    ) -> None:
        self.values = values
        self.positions = positions
        self.exact = exact

    def range_positions(self, op: str, value: Any) -> list[int]:
        """Positions whose value satisfies ``cell <op> value``.

        Raises ``TypeError`` when ``value`` is not comparable with the
        column (callers treat that as "no concrete match", mirroring
        ``_concrete_satisfies``).
        """
        if op == "<":
            return self.positions[: bisect_left(self.values, value)]
        if op == "<=":
            return self.positions[: bisect_right(self.values, value)]
        if op == ">":
            return self.positions[bisect_right(self.values, value):]
        if op == ">=":
            return self.positions[bisect_left(self.values, value):]
        if op == "=":
            lo = bisect_left(self.values, value)
            hi = bisect_right(self.values, value)
            return self.positions[lo:hi]
        raise ValueError(f"unsupported sorted-column operator {op!r}")


def _pvalue_bound(cell: PValue) -> tuple[Any, Any] | None:
    """(min, max) candidate points of a probabilistic cell, or None.

    A range candidate contributes its low/high end (±inf when unbounded);
    any-candidate inequality semantics then reduce to one comparison
    against the min (for ``<``/``<=``) or max (for ``>``/``>=``) point.
    ``None`` means the candidates are not mutually comparable and the
    caller must fall back to the full possible-worlds evaluation.
    """
    lo: Any = None
    hi: Any = None
    for cand in cell.candidates:
        if cand.is_range():
            rng = cand.value
            c_lo = -math.inf if rng.low is None else rng.low
            c_hi = math.inf if rng.high is None else rng.high
        else:
            value = cand.value
            if value is None:
                continue  # a None candidate satisfies no comparison
            c_lo = c_hi = value
        try:
            lo = c_lo if lo is None else min(lo, c_lo)
            hi = c_hi if hi is None else max(hi, c_hi)
        except TypeError:
            return None
    if lo is None:
        return None
    return (lo, hi)


class PValueBoundsSidecar:
    """Per-position (min, max) candidate points of one attribute's PValues.

    Lets range selections answer ``exists candidate: candidate <op> value``
    with a single comparison per probabilistic cell.  Patched positionally
    when cells change (see :meth:`ColumnView.patched`).
    """

    __slots__ = ("attr", "bounds")

    def __init__(self, view: "ColumnView", attr: str) -> None:
        self.attr = attr
        column = view.columns[attr]
        self.bounds: dict[int, tuple[Any, Any] | None] = {
            pos: _pvalue_bound(column[pos]) for pos in view.pvalue_positions(attr)
        }

    def patched_for_view(
        self, view: "ColumnView", touched: dict[str, list[int]]
    ) -> "PValueBoundsSidecar":
        clone = PValueBoundsSidecar.__new__(PValueBoundsSidecar)
        clone.attr = self.attr
        bounds = dict(self.bounds)
        pvals = view.pvalue_positions(self.attr)
        column = view.columns[self.attr]
        for pos in touched.get(self.attr, ()):
            if pos in pvals:
                bounds[pos] = _pvalue_bound(column[pos])
            else:
                bounds.pop(pos, None)
        clone.bounds = bounds
        return clone


@dataclass(frozen=True)
class PatchBatch:
    """One step of a view's patch stream: what changed between two versions.

    ``updates`` is the exact ``(tid, attr) -> new cell`` map the patch
    applied (absent tids already dropped), ``touched`` the per-attribute row
    positions it rewrote, and ``origin`` one of :data:`PATCH_DATA` /
    :data:`PATCH_REPAIR` / :data:`PATCH_RESOLVE` — consumers that maintain
    derived state over the *ground* data (e.g. incremental theta-join matrix
    maintenance) react to ``data`` batches and ignore repair/resolve
    batches, whose originals the provenance store already tracks.
    """

    base_version: int
    version: int
    origin: str
    updates: dict[tuple[int, str], Any]
    touched: dict[str, tuple[int, ...]]


#: A patch-stream subscriber: called with (new_view, batch) after each patch.
PatchListener = Callable[["ColumnView", PatchBatch], None]


@shared_engine_state
class ColumnView:
    """Columnar snapshot of one relation (see module docstring).

    A view is logically immutable — updates produce a *new* view via
    :meth:`patched` — but it memoizes derived structures (typed columns,
    sort orders, hash indexes, group indexes) on first use and carries the
    patch-subscription list forward.  Those caches and the storage
    attach/detach hooks are the only post-construction writes; all run
    inside serialized per-table passes.
    """

    MUTATED_UNDER = {
        "_typed": ("ColumnView.typed_column", "ColumnView.patched"),
        "_sorted": ("ColumnView.sorted_column", "ColumnView.patched"),
        "_hash": ("ColumnView.hash_column", "ColumnView.patched"),
        "_derived": ("ColumnView.derived", "ColumnView.patched"),
        "_pos_of_tid": ("ColumnView.pos_of_tid", "ColumnView.patched"),
        "_patch_listeners": ("ColumnView.subscribe", "ColumnView.patched"),
        "column_backend": ("ColumnView.patched", "TableState.column_view"),
        "derived_evictions": ("ColumnView.patched",),
        "last_patch": ("ColumnView.patched",),
        # Spill modes move column payloads between memory and disk.
        "columns": ("TableStorage.detach", "TableStorage.ensure_attached"),
    }

    __slots__ = (
        "schema",
        "tids",
        "columns",
        "version",
        "last_patch",
        "derived_evictions",
        "column_backend",
        "_pvalue_positions",
        "_pos_of_tid",
        "_sorted",
        "_hash",
        "_typed",
        "_derived",
        "_patch_listeners",
    )

    def __init__(
        self,
        schema: Schema,
        tids: list[int],
        columns: dict[str, list[Any]],
        pvalue_positions: dict[str, set[int]],
        version: int = 0,
    ) -> None:
        self.schema = schema
        self.tids = tids
        self.columns = columns
        self.version = version
        #: The :class:`PatchBatch` that produced this view from its parent
        #: (None for a cold-built view) — the walkable patch stream.
        self.last_patch: PatchBatch | None = None
        #: Cumulative count of derived payloads evicted (rather than
        #: patched) along this view's patch chain.
        self.derived_evictions: int = 0
        #: Resolved kernel backend for this view's index construction and
        #: linear scans: :data:`~repro.relation.kernels.COLUMN_PYTHON`
        #: (the oracle, default) or
        #: :data:`~repro.relation.kernels.COLUMN_NUMPY` — stamped by the
        #: owning :class:`~repro.core.state.TableState`.  Both produce
        #: byte-identical indexes and selections.
        self.column_backend: str = COLUMN_PYTHON
        self._pvalue_positions = pvalue_positions
        self._pos_of_tid: dict[int, int] | None = None
        self._sorted: dict[str, Any] = {}
        self._hash: dict[str, Any] = {}
        self._typed: dict[str, TypedColumn | None] = {}
        self._derived: dict[Any, tuple[frozenset[str], Any]] = {}
        #: Patch-stream listeners; the *list object* is shared with every
        #: patched descendant, so one subscription observes the whole stream.
        self._patch_listeners: list[PatchListener] = []

    # -- construction -----------------------------------------------------------

    @classmethod
    def from_relation(cls, relation: "Relation") -> "ColumnView":
        names = relation.schema.names
        columns: dict[str, list[Any]] = {name: [] for name in names}
        pvalue_positions: dict[str, set[int]] = {}
        tids: list[int] = []
        col_lists = [columns[name] for name in names]
        for pos, row in enumerate(relation.rows):
            tids.append(row.tid)
            for name, col, cell in zip(names, col_lists, row.values):
                col.append(cell)
                if isinstance(cell, PValue):
                    pvalue_positions.setdefault(name, set()).add(pos)
        return cls(relation.schema, tids, columns, pvalue_positions)

    def __len__(self) -> int:
        return len(self.tids)

    # -- positional accessors -----------------------------------------------------

    @property
    def pos_of_tid(self) -> dict[int, int]:
        if self._pos_of_tid is None:
            self._pos_of_tid = {tid: pos for pos, tid in enumerate(self.tids)}
        return self._pos_of_tid

    def positions_of(self, tids: Iterable[int]) -> list[int]:
        """Sorted row positions of the given tids (absent tids are skipped)."""
        pos_map = self.pos_of_tid
        return sorted(pos_map[t] for t in tids if t in pos_map)

    def pvalue_positions(self, attr: str) -> frozenset[int] | set[int]:
        return self._pvalue_positions.get(attr, _EMPTY_SET)

    def cell(self, attr: str, pos: int) -> Any:
        return self.columns[attr][pos]

    # -- lazy per-attribute indexes -----------------------------------------------

    def typed_column(self, attr: str) -> TypedColumn | None:
        """The ndarray mirror of ``attr`` under the numpy backend.

        ``None`` whenever the column does not vectorize exactly (see
        :func:`repro.relation.kernels.build_typed_column`) or the view
        runs the pure-Python backend — callers then use the oracle path.
        Cached per attribute; patches drop the touched entries.
        """
        if self.column_backend != COLUMN_NUMPY or not kernels.HAVE_NUMPY:
            return None
        cached = self._typed.get(attr, _TYPED_MISSING)
        if cached is not _TYPED_MISSING:
            return cached
        typed = kernels.build_typed_column(
            self.columns[attr], self.pvalue_positions(attr)
        )
        self._typed[attr] = typed
        return typed

    def sorted_column(self, attr: str) -> SortedColumn | None:
        """The sorted concrete values of ``attr`` (None if incomparable)."""
        cached = self._sorted.get(attr)
        if cached is not None:
            return None if cached is _UNSORTABLE else cached
        pushed = self._pushdown_sorted(attr)
        if pushed is not None:
            # Served by the storage mirror's ORDER-BY without materializing
            # the column.  The mirror only answers for exactly-mirrorable
            # attrs (homogeneous typed, no probabilistic cells, int order
            # float-exact), where its (value, position) order is the pair
            # sort below; ``exact`` stays None, so downstream vectorized
            # consumers that need exactness fall back to bisection —
            # byte-identical results either way.
            col = SortedColumn(list(pushed[0]), list(pushed[1]))
            self._sorted[attr] = col
            return col
        typed = self.typed_column(attr)
        if typed is not None:
            values, positions, exact = kernels.sorted_pairs(
                typed, self.columns[attr]
            )
            col = SortedColumn(values, positions, exact)
            self._sorted[attr] = col
            return col
        pvals = self.pvalue_positions(attr)
        pairs = [
            (v, pos)
            for pos, v in enumerate(self.columns[attr])
            if v is not None and pos not in pvals
        ]
        try:
            pairs.sort()
        except TypeError:
            self._sorted[attr] = _UNSORTABLE
            return None
        col = SortedColumn([v for v, _ in pairs], [p for _, p in pairs])
        self._sorted[attr] = col
        return col

    def _storage_provider(self, attr: str) -> Any:
        """The columns dict's storage provider, when pushdown could help.

        Non-None only for a storage-backed view whose ``attr`` is not
        currently RAM-resident: a resident column answers faster from the
        in-memory indexes, and a plain dict has no provider at all.
        """
        columns = self.columns
        provider = getattr(columns, "provider", None)
        if provider is None:
            return None
        is_resident = getattr(columns, "is_resident", None)
        if is_resident is None or is_resident(attr):
            return None
        return provider

    def _pushdown_sorted(self, attr: str) -> tuple[list[Any], list[int]] | None:
        provider = self._storage_provider(attr)
        if provider is None:
            return None
        result: tuple[list[Any], list[int]] | None = provider.pushdown_sorted(attr)
        return result

    def _pushdown_filter(
        self, attr: str, op: str, value: Any
    ) -> list[int] | None:
        """A selection answered by the storage mirror (None = run the oracle).

        Only attempted when the matching in-memory index is not already
        built; the mirror declines (returns None) whenever its answer could
        differ from the oracle's, so a None here is a routing decision, not
        an empty result.
        """
        if value is None:
            return None
        if op in ("<", "<=", ">", ">="):
            if attr in self._sorted:
                return None
        elif op == "=":
            if attr in self._hash:
                return None
        else:
            return None
        provider = self._storage_provider(attr)
        if provider is None:
            return None
        result: list[int] | None = provider.pushdown_filter(attr, op, value)
        return result

    def hash_column(self, attr: str) -> dict[Any, list[int]] | None:
        """value -> positions over concrete cells (None if unhashable)."""
        cached = self._hash.get(attr)
        if cached is not None:
            return None if cached is _UNHASHABLE else cached
        typed = self.typed_column(attr)
        if typed is not None:
            table = kernels.hash_groups(typed, self.columns[attr])
            self._hash[attr] = table
            return table
        pvals = self.pvalue_positions(attr)
        table: dict[Any, list[int]] = {}
        try:
            for pos, v in enumerate(self.columns[attr]):
                if v is None or pos in pvals:
                    continue
                table.setdefault(v, []).append(pos)
        except TypeError:
            self._hash[attr] = _UNHASHABLE
            return None
        self._hash[attr] = table
        return table

    def group_index(
        self, keys: tuple[str, ...]
    ) -> tuple[list[tuple[Any, ...]], dict[tuple[Any, ...], list[int]]]:
        """``(order, groups)`` — the grouping index for a key-attribute tuple.

        ``groups`` maps each key tuple (probabilistic cells collapsed to
        their most-probable candidate) to its row positions in ascending
        order; ``order`` lists the keys by first occurrence.  Cached via the
        derived-structure store, so repeated GROUP BY queries over the same
        keys reuse it; a repair touching a key attribute evicts it.  For a
        single concrete key column the index is seeded from the existing
        hash index instead of a fresh scan.
        """
        return self.derived(
            ("group_index", keys), set(keys), lambda: self._build_group_index(keys)
        )

    def _build_group_index(
        self, keys: tuple[str, ...]
    ) -> tuple[list[tuple[Any, ...]], dict[tuple[Any, ...], list[int]]]:
        if len(keys) == 1:
            attr = keys[0]
            if not self.pvalue_positions(attr):
                hashed = self.hash_column(attr)
                if hashed is not None and sum(
                    len(p) for p in hashed.values()
                ) == len(self):
                    # No probabilistic and no NULL cells: the hash index is
                    # already the grouping (positions are in scan order).
                    groups = {
                        (value,): positions for value, positions in hashed.items()
                    }
                    order = sorted(groups, key=lambda key: groups[key][0])
                    return order, groups
        typed_cols = [self.typed_column(k) for k in keys]
        if all(t is not None and t.all_valid for t in typed_cols):
            # Fully concrete, exactly-typed key columns: lexsort grouping
            # reproduces the scan's dict-insertion order (groups by first
            # occurrence, positions ascending); key tuples are fetched
            # from the raw columns at each group's first position — the
            # same objects the scan's first-inserted key tuple holds.
            grouped = kernels.grouped_positions(
                [t.values for t in typed_cols],  # type: ignore[union-attr]
                kernels.arange(len(self)),
            )
            if grouped is not None:
                raw_cols = [self.columns[k] for k in keys]
                groups_np: dict[tuple[Any, ...], list[int]] = {}
                order_np: list[tuple[Any, ...]] = []
                for members in grouped:
                    first = members[0]
                    key = tuple(col[first] for col in raw_cols)
                    groups_np[key] = members
                    order_np.append(key)
                return order_np, groups_np
        cols = [self.columns[k] for k in keys]
        groups: dict[tuple[Any, ...], list[int]] = {}
        order: list[tuple[Any, ...]] = []
        for pos in range(len(self)):
            key = tuple(plain(col[pos]) for col in cols)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(pos)
        return order, groups

    # -- filtering ------------------------------------------------------------------

    def filter_positions(
        self, attr: str, op: str, value: Any, counter: WorkCounter | None = None
    ) -> set[int]:
        """Positions whose cell satisfies ``cell <op> value``.

        Exactly equivalent to evaluating
        :func:`repro.probabilistic.value.cell_compare` per cell, but served
        from the sorted/hash indexes for concrete cells; only probabilistic
        positions pay the possible-worlds evaluation.
        """
        out: set[int] = set()
        pushed = self._pushdown_filter(attr, op, value)
        if pushed is not None:
            # Served by the storage pushdown mirror without materializing
            # the column.  Mirrorable attrs hold no probabilistic cells
            # (kind inference declines them; an update introducing one
            # demotes the attr), so the probabilistic branches below are
            # vacuous and the charge matches the oracle's served path
            # (``len(out) + len(pvals)`` with ``pvals`` empty).
            out.update(pushed)
            if counter is not None:
                counter.charge_scan(len(out))
            return out
        column = self.columns[attr]
        pvals = self.pvalue_positions(attr)
        served = False

        if value is not None:
            if op in ("<", "<=", ">", ">="):
                sorted_col = self.sorted_column(attr)
                if sorted_col is not None:
                    try:
                        matches = sorted_col.range_positions(op, value)
                    except TypeError:
                        matches = []  # incomparable constant: no concrete match
                    out.update(matches)
                    served = True
            elif op == "=":
                hash_col = self.hash_column(attr)
                if hash_col is not None:
                    try:
                        matches = hash_col.get(value, ())
                    except TypeError:
                        matches = ()
                    out.update(matches)
                    served = True

        if not served:
            # Linear fallback over concrete cells ('!=', unsortable columns…).
            # The numpy backend serves it as one boolean-mask pass when the
            # column and probe vectorize exactly; either way the scan is
            # charged at full column length.
            masked: list[int] | None = None
            typed = self.typed_column(attr)
            if typed is not None:
                masked = kernels.mask_filter_positions(typed, op, value)
            if masked is not None:
                out.update(masked)
            else:
                for pos, cell in enumerate(column):
                    if pos in pvals:
                        continue
                    if cell_compare(cell, op, value):
                        out.add(pos)
            if counter is not None:
                counter.charge_scan(len(column))
        elif counter is not None:
            counter.charge_scan(len(out) + len(pvals))

        if not pvals:
            return out
        if op in ("<", "<=", ">", ">=") and value is not None:
            # One comparison per probabilistic cell via the bounds sidecar.
            sidecar: PValueBoundsSidecar = self.derived(
                ("pv_bounds", attr), (attr,), lambda: PValueBoundsSidecar(self, attr)
            )
            bounds = sidecar.bounds
            for pos in pvals:
                bound = bounds.get(pos)
                if bound is None:
                    if cell_compare(column[pos], op, value):
                        out.add(pos)
                    continue
                lo, hi = bound
                try:
                    if op == "<":
                        ok = lo < value
                    elif op == "<=":
                        ok = lo <= value
                    elif op == ">":
                        ok = hi > value
                    else:
                        ok = hi >= value
                except TypeError:
                    ok = cell_compare(column[pos], op, value)
                if ok:
                    out.add(pos)
            return out
        for pos in pvals:
            if cell_compare(column[pos], op, value):
                out.add(pos)
        return out

    def filter_tids(
        self, attr: str, op: str, value: Any, counter: WorkCounter | None = None
    ) -> set[int]:
        tids = self.tids
        return {tids[pos] for pos in self.filter_positions(attr, op, value, counter)}

    # -- derived caches ---------------------------------------------------------------

    def derived(
        self, key: Any, attrs: Iterable[str], build: Callable[[], Any]
    ) -> Any:
        """A cached derived structure keyed by ``key`` over ``attrs``.

        The structure is built once and survives patches that do not touch
        any of ``attrs``.  A patch touching one of them either *patches* the
        payload positionally — when the payload exposes
        ``patched_for_view(new_view, {attr: positions})`` returning a new
        payload — or evicts the entry.
        """
        entry = self._derived.get(key)
        if entry is not None:
            return entry[1]
        payload = build()
        self._derived[key] = (frozenset(attrs), payload)
        return payload

    # -- incremental patching ---------------------------------------------------------

    def subscribe(self, listener: PatchListener) -> Callable[[], None]:
        """Subscribe to this view's patch stream; returns an unsubscriber.

        The listener is called with ``(new_view, batch)`` after every
        subsequent :meth:`patched` call — on this view *or any view patched
        from it* (the listener list is carried across patches), so one
        subscription observes a table's whole update stream.  Listeners must
        not mutate the views they receive.
        """
        self._patch_listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._patch_listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    def patched(
        self, updates: dict[tuple[int, str], Any], origin: str = PATCH_DATA
    ) -> "ColumnView":
        """A new view reflecting cell replacements, sharing untouched state.

        ``updates`` maps (tid, attr) -> new cell — the exact shape of
        ``Relation.update_cells``.  Tids absent from the view are ignored
        (mirroring the row-store behaviour).  Only the touched columns are
        copied; sorted/hash indexes and derived caches survive for columns
        the patch does not mention.  Derived payloads over a touched
        attribute are either patched positionally (when they expose
        ``patched_for_view``) or **explicitly evicted** — counted in
        :attr:`derived_evictions` and logged — never silently dropped.

        ``origin`` tags the emitted :class:`PatchBatch` (see module
        constants); the new view records it as :attr:`last_patch` and every
        subscribed listener is notified.
        """
        by_attr: dict[str, list[tuple[int, Any]]] = {}
        applied: dict[tuple[int, str], Any] = {}
        pos_map = self.pos_of_tid
        for (tid, attr), cell in updates.items():
            pos = pos_map.get(tid)
            if pos is None:
                continue
            by_attr.setdefault(attr, []).append((pos, cell))
            applied[(tid, attr)] = cell
        if not by_attr:
            return self

        # A storage-backed columns dict clones lazily (untouched spilled
        # attrs stay on disk); a plain dict copies as before.
        copier = getattr(self.columns, "storage_copy", None)
        columns = copier() if copier is not None else dict(self.columns)
        pvalue_positions = dict(self._pvalue_positions)
        for attr, cells in by_attr.items():
            col = list(columns[attr])
            pvals = set(pvalue_positions.get(attr, ()))
            for pos, cell in cells:
                col[pos] = cell
                if isinstance(cell, PValue):
                    pvals.add(pos)
                else:
                    pvals.discard(pos)
            columns[attr] = col
            if pvals:
                pvalue_positions[attr] = pvals
            else:
                pvalue_positions.pop(attr, None)

        view = ColumnView(
            self.schema, self.tids, columns, pvalue_positions,
            version=self.version + 1,
        )
        view._pos_of_tid = self._pos_of_tid
        view.derived_evictions = self.derived_evictions
        view.column_backend = self.column_backend
        touched = set(by_attr)
        view._sorted = {
            a: idx for a, idx in self._sorted.items() if a not in touched
        }
        view._hash = {a: idx for a, idx in self._hash.items() if a not in touched}
        view._typed = {a: t for a, t in self._typed.items() if a not in touched}
        touched_positions = {
            attr: [pos for pos, _cell in cells] for attr, cells in by_attr.items()
        }
        for key, (attrs, payload) in self._derived.items():
            if not (attrs & touched):
                view._derived[key] = (attrs, payload)
                continue
            patcher = getattr(payload, "patched_for_view", None)
            if patcher is None:
                # Evict: the payload cannot be patched incrementally.  The
                # next access rebuilds it from the patched view; make the
                # cache miss visible instead of silent.
                view.derived_evictions += 1
                logger.debug(
                    "ColumnView v%d: evicted derived payload %r (attrs %s "
                    "touched by patch)", view.version, key, sorted(attrs & touched),
                )
                continue
            view._derived[key] = (attrs, patcher(view, touched_positions))

        view.last_patch = PatchBatch(
            base_version=self.version,
            version=view.version,
            origin=origin,
            updates=applied,
            touched={
                attr: tuple(positions)
                for attr, positions in touched_positions.items()
            },
        )
        view._patch_listeners = self._patch_listeners
        for listener in list(self._patch_listeners):
            listener(view, view.last_patch)
        return view

    def __repr__(self) -> str:
        return (
            f"ColumnView({len(self.tids)} rows × {len(self.columns)} cols, "
            f"v{self.version})"
        )
