"""Secondary indexes over relations.

Two index kinds are used throughout the cleaning pipeline:

* :class:`HashIndex` — value -> tids for one attribute, used by relaxation to
  find correlated tuples without rescanning the dataset.
* :class:`GroupIndex` — lhs-tuple -> rows, the group-by index used for FD
  violation detection (BigDansing's optimization: group instead of self-join)
  and for the precomputed statistics Daisy uses for pruning.

Probabilistic cells are indexed under every concrete candidate value, so
index lookups respect possible-worlds semantics.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.probabilistic.value import PValue
from repro.relation.columnview import ColumnView
from repro.relation.relation import Relation, Row


def _index_keys(cell: Any) -> Iterable[Any]:
    """The key values a cell contributes to an index."""
    if isinstance(cell, PValue):
        return cell.concrete_values()
    return (cell,)


class HashIndex:
    """value -> set of tids, over one attribute of a relation.

    Pass ``view`` (the relation's columnar view) to build from the
    per-attribute array instead of walking Row objects — same contents.
    """

    def __init__(self, relation: Relation, attr: str, view: ColumnView | None = None) -> None:
        self.attr = attr
        self._map: dict[Any, set[int]] = {}
        if view is not None:
            column = view.columns[attr]
            pvals = view.pvalue_positions(attr)
            tids = view.tids
            for pos, cell in enumerate(column):
                if pos in pvals:
                    for key in cell.concrete_values():
                        self._map.setdefault(key, set()).add(tids[pos])
                else:
                    self._map.setdefault(cell, set()).add(tids[pos])
            return
        idx = relation.schema.index_of(attr)
        for row in relation.rows:
            for key in _index_keys(row.values[idx]):
                self._map.setdefault(key, set()).add(row.tid)

    def lookup(self, value: Any) -> set[int]:
        return self._map.get(value, set())

    def lookup_many(self, values: Iterable[Any]) -> set[int]:
        out: set[int] = set()
        for value in values:
            out |= self._map.get(value, set())
        return out

    def keys(self) -> set[Any]:
        return set(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __contains__(self, value: object) -> bool:
        return value in self._map


class GroupIndex:
    """Group rows by a key attribute tuple.

    ``group_key(row)`` collapses probabilistic cells to their most probable
    candidate so that group statistics remain well-defined on partially
    cleaned data.
    """

    def __init__(
        self,
        relation: Relation,
        attrs: Sequence[str],
        view: ColumnView | None = None,
    ) -> None:
        self.attrs = tuple(attrs)
        self._idx = [relation.schema.index_of(a) for a in attrs]
        self._groups: dict[tuple[Any, ...], list[Row]] = {}
        if view is not None:
            # Columnar group-by: compute keys from the attribute arrays,
            # then attach the Row objects positionally.  The view must be
            # the relation's own (same rows, same order).
            rows = relation.rows
            if len(view) != len(rows):
                raise ValueError(
                    "GroupIndex: view does not match the relation "
                    f"({len(view)} positions vs {len(rows)} rows)"
                )
            cols = [view.columns[a] for a in attrs]
            for pos, row in enumerate(rows):
                key = tuple(
                    cell.most_probable() if isinstance(cell, PValue) else cell
                    for cell in (col[pos] for col in cols)
                )
                self._groups.setdefault(key, []).append(row)
            return
        for row in relation.rows:
            self._groups.setdefault(self.key_of(row), []).append(row)

    def key_of(self, row: Row) -> tuple[Any, ...]:
        key: list[Any] = []
        for i in self._idx:
            cell = row.values[i]
            if isinstance(cell, PValue):
                key.append(cell.most_probable())
            else:
                key.append(cell)
        return tuple(key)

    def groups(self) -> dict[tuple[Any, ...], list[Row]]:
        return self._groups

    def group(self, key: tuple[Any, ...]) -> list[Row]:
        return self._groups.get(key, [])

    def group_sizes(self) -> dict[tuple[Any, ...], int]:
        return {k: len(v) for k, v in self._groups.items()}

    def __len__(self) -> int:
        return len(self._groups)
