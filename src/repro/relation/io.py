"""CSV input/output for relations.

The serialization is deliberately simple: a header row with ``name:type``
column specs, then data rows.  Probabilistic cells round-trip through a
compact textual encoding ``value@prob@world|value@prob@world|...`` so that a
gradually cleaned (probabilistic) dataset can be saved and reloaded —
mirroring how Daisy persists the probabilistic dataset between sessions.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Any, TextIO

from repro.errors import SchemaError
from repro.probabilistic.value import Candidate, PValue, ValueRange
from repro.relation.schema import Column, ColumnType, Schema
from repro.relation.relation import Relation

_PROB_MARK = "\x01P\x01"  # sentinel prefix marking an encoded PValue cell
_NULL_MARK = "\x01N\x01"  # sentinel for SQL NULL (distinct from empty string)
# Sentinel-framed like the marks above: a plain string cell that merely
# *starts with* an ordinary prefix (e.g. "R:") must not decode as a range.
_RANGE_MARK = "\x01R\x01"


def _encode_scalar(value: Any) -> str:
    if value is None:
        return _NULL_MARK
    if isinstance(value, ValueRange):
        lo = "" if value.low is None else repr(value.low)
        hi = "" if value.high is None else repr(value.high)
        return f"{_RANGE_MARK}{lo};{hi};{int(value.low_open)};{int(value.high_open)}"
    return str(value)


def _decode_scalar(token: str, ctype: ColumnType) -> Any:
    if token == _NULL_MARK:
        return None
    if token.startswith(_RANGE_MARK):
        lo_s, hi_s, lo_open, hi_open = token[len(_RANGE_MARK):].split(";")
        return ValueRange(
            low=None if lo_s == "" else float(lo_s),
            high=None if hi_s == "" else float(hi_s),
            low_open=bool(int(lo_open)),
            high_open=bool(int(hi_open)),
        )
    return ctype.coerce(token)


def encode_cell(value: Any) -> str:
    """Encode one cell (concrete or probabilistic) as a CSV token."""
    if isinstance(value, PValue):
        parts = [
            f"{_encode_scalar(c.value)}@{c.prob!r}@{c.world}" for c in value.candidates
        ]
        return _PROB_MARK + "|".join(parts)
    return _encode_scalar(value)


def decode_cell(token: str, ctype: ColumnType) -> Any:
    """Decode one CSV token back into a cell value."""
    if not token.startswith(_PROB_MARK):
        return _decode_scalar(token, ctype)
    body = token[len(_PROB_MARK):]
    candidates = []
    for part in body.split("|"):
        value_s, prob_s, world_s = part.rsplit("@", 2)
        candidates.append(
            Candidate(
                value=_decode_scalar(value_s, ctype),
                prob=float(prob_s),
                world=int(world_s),
            )
        )
    return PValue(candidates)


def write_csv(relation: Relation, target: Path | str | TextIO) -> None:
    """Write a relation (possibly probabilistic) to CSV."""
    close = False
    if isinstance(target, (str, Path)):
        handle: TextIO = open(target, "w", newline="")
        close = True
    else:
        handle = target
    try:
        writer = csv.writer(handle)
        writer.writerow(
            [f"{c.name}:{c.ctype.value}" for c in relation.schema.columns]
        )
        for row in relation.rows:
            writer.writerow([encode_cell(v) for v in row.values])
    finally:
        if close:
            handle.close()


def read_csv(source: Path | str | TextIO, name: str = "") -> Relation:
    """Read a relation written by :func:`write_csv`."""
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, newline="")
        close = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError("empty CSV: no header row") from None
        columns = []
        for spec in header:
            if ":" not in spec:
                raise SchemaError(f"header entry {spec!r} is not 'name:type'")
            cname, _, tname = spec.rpartition(":")
            try:
                ctype = ColumnType(tname)
            except ValueError:
                raise SchemaError(f"unknown column type {tname!r} in header") from None
            columns.append(Column(cname, ctype))
        schema = Schema(columns)
        raw_rows = []
        for record in reader:
            if len(record) != len(columns):
                raise SchemaError(
                    f"row arity {len(record)} does not match header arity {len(columns)}"
                )
            raw_rows.append(
                tuple(
                    decode_cell(token, col.ctype)
                    for token, col in zip(record, columns)
                )
            )
        return Relation.from_rows(schema, raw_rows, name=name, validate=False)
    finally:
        if close:
            handle.close()


def to_csv_string(relation: Relation) -> str:
    """Serialize a relation to a CSV string (round-trips via read_csv)."""
    buffer = io.StringIO()
    write_csv(relation, buffer)
    return buffer.getvalue()


def from_csv_string(text: str, name: str = "") -> Relation:
    """Parse a relation from a CSV string produced by :func:`to_csv_string`."""
    return read_csv(io.StringIO(text), name=name)
