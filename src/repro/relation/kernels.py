"""Vectorized NumPy kernels behind the columnar substrate.

The pure-Python list paths of :mod:`repro.relation.columnview`,
:mod:`repro.detection.fd_detector` and :mod:`repro.detection.thetajoin`
are the **semantics oracle** of the system — every kernel in this module
must be byte-identical to them in results, orderings, and work-unit
charges, exactly as the rowstore backend is the oracle for columnar
execution.  The kernels therefore never *approximate*: each one first
proves (via dtype inference) that the vectorized computation is exact,
and returns ``None`` — "not applicable, use the oracle" — otherwise.

Kernel inventory (see ``docs/kernels.md``):

* **sort** — :func:`sorted_pairs` / :func:`argsort_positions`: stable
  ``np.argsort`` construction of sorted-index position lists, equivalent
  to the oracle's ``sorted((value, position))`` because a stable argsort
  over exactly-representable keys breaks ties by ascending position too.
* **group** — :func:`hash_groups` / :func:`grouped_positions`:
  boundary detection over a stable sort (the ``np.unique`` trick without
  losing first-occurrence order), seeding hash indexes, GROUP BY indexes
  and FD lhs-grouping with dict-insertion-order parity.
* **filter** — :func:`mask_filter_positions`: boolean-mask selection for
  the linear-scan operators (``!=`` and friends), with ``None`` cells
  excluded exactly like ``cell_compare``'s null semantics.
* **stripe** — :func:`numeric_mask_positions` / :func:`search_cuts`:
  intra-stripe pruning masks over NaN-padded float arrays and
  ``np.searchsorted`` window derivation for the sort-based inequality
  join of the theta-join matrix.

NumPy is an *optional* dependency: when it is absent every entry point
reports "not applicable" and the engine runs the pure-Python paths with
zero behaviour change (enforced by the no-numpy CI job).
"""

from __future__ import annotations

from types import MappingProxyType

from typing import Any

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as _np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: Supported column execution backends behind :class:`ColumnView`.
COLUMN_NUMPY = "numpy"
COLUMN_PYTHON = "python"
COLUMN_AUTO = "auto"
COLUMN_BACKENDS = (COLUMN_NUMPY, COLUMN_PYTHON, COLUMN_AUTO)

#: Below this row count the fixed ndarray-construction overhead outweighs
#: the per-cell savings; ``auto`` resolution (static and planner-priced)
#: keeps tiny tables on the pure-Python path.
AUTO_MIN_ROWS = 64

#: Largest integer magnitude exactly representable as a float64.  Columns
#: mixing ints and floats vectorize only when every int is below this
#: bound, so ordering/equality in float64 matches Python's exact
#: int-vs-float comparisons.
MAX_EXACT_FLOAT_INT = 2 ** 53

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

KIND_INT = "int64"
KIND_FLOAT = "float64"
KIND_STR = "str"


def validate_column_backend(name: str) -> str:
    if name not in COLUMN_BACKENDS:
        raise ValueError(
            f"unknown column_backend {name!r}; expected one of {COLUMN_BACKENDS}"
        )
    return name


def resolve_column_backend(name: str, n_rows: int = 0) -> str:
    """Static resolution of the ``column_backend`` knob to a concrete path.

    ``numpy`` silently degrades to ``python`` when NumPy is absent (the
    engine must import and run dependency-free); ``auto`` picks numpy for
    tables past :data:`AUTO_MIN_ROWS` — the same tipping point the
    adaptive planner's priced decision starts from before calibration.
    """
    validate_column_backend(name)
    if not HAVE_NUMPY:
        return COLUMN_PYTHON
    if name == COLUMN_AUTO:
        return COLUMN_NUMPY if n_rows >= AUTO_MIN_ROWS else COLUMN_PYTHON
    return name


class TypedColumn:
    """One column's cells as a typed ndarray plus a validity mask.

    ``values[i]`` holds cell ``i`` rendered in the inferred dtype and
    ``valid[i]`` whether position ``i`` is *concrete*: not ``None`` and
    not probabilistic.  Invalid positions hold a filler value and must
    never be read.  ``kind`` is one of :data:`KIND_INT` /
    :data:`KIND_FLOAT` / :data:`KIND_STR`.

    Kernel outputs never leak ndarray scalars: callers fetch result
    values from the raw Python cell list by position, so downstream
    equality/hashing sees the exact objects the oracle would produce.
    """

    __slots__ = ("kind", "values", "valid", "n_valid")

    def __init__(self, kind: str, values: Any, valid: Any, n_valid: int) -> None:
        self.kind = kind
        self.values = values
        self.valid = valid
        self.n_valid = n_valid

    @property
    def all_valid(self) -> bool:
        return self.n_valid == len(self.valid)


def _int_exact_as_float(v: int) -> bool:
    return -MAX_EXACT_FLOAT_INT <= v <= MAX_EXACT_FLOAT_INT


def _as_exact_array(cells: list[Any]) -> Any | None:
    """``np.asarray(cells)`` when the result provably compares like Python.

    The C-speed twin of the per-cell inference loops: ``asarray`` parses
    the cells in one pass, and the resulting dtype tells us what they
    were.  ``int64`` output is always exact.  ``float64`` output means
    any int cells were cast through float64, so the whole array must stay
    strictly below the 2^53 exactness bound (an int of magnitude >= 2^53+1
    can only round to a float of magnitude >= 2^53, so the vectorized
    bound check catches every lossy cast) and NaN-free.  Everything else
    — object (nulls, mixed families), ``<U`` (NumPy *stringifies* mixed
    str/number lists, which would sort columns Python refuses to sort),
    bool-only — reports "not applicable".

    ``bool`` cells mixed into numeric columns are fine here: ``True == 1``
    in Python and in int64/float64 alike, and every kernel returns
    positions/cuts or fetches result objects from the raw column, so the
    ndarray rendering never leaks.
    """
    try:
        arr = _np.asarray(cells)
    except (OverflowError, ValueError, TypeError):
        return None
    if arr.ndim != 1:
        return None
    if arr.dtype == _np.int64:
        return arr
    if arr.dtype == _np.float64:
        if _np.isnan(arr).any() or not (_np.abs(arr) < MAX_EXACT_FLOAT_INT).all():
            return None
        return arr
    return None


def build_typed_column(
    column: list[Any], invalid_positions: Any = ()
) -> TypedColumn | None:
    """Infer a :class:`TypedColumn` for one raw cell list, or ``None``.

    ``invalid_positions`` are positions to mask out a priori (the
    PValue sidecar).  On top of those, ``None`` cells are masked.  The
    column vectorizes only when the remaining concrete cells are

    * all ``int`` within the int64 range → :data:`KIND_INT`;
    * ``int``/``float`` mixes where every int passes the 2^53 exactness
      bound and no float is NaN → :data:`KIND_FLOAT` (int-vs-float
      ordering and equality are then exact in float64);
    * all ``str`` → :data:`KIND_STR` (NumPy ``<U`` comparison is the
      same code-point lexicographic order as Python's).

    Anything else — mixed families, nested values — returns ``None`` and
    the caller stays on the oracle path.  Fully-concrete numeric columns
    take the C-speed :func:`_as_exact_array` fast path, which also admits
    ``bool`` cells mixed into them (``True == 1`` compares identically in
    both domains and kernels never leak ndarray renderings — result
    objects are always fetched from the raw column); the null-masked
    slow path stays conservative and declines bools.
    """
    if not HAVE_NUMPY:
        return None
    invalid = (
        invalid_positions
        if isinstance(invalid_positions, (set, frozenset))
        else frozenset(invalid_positions)
    )
    n = len(column)
    if not invalid:
        # Fast path for fully-concrete columns: C-speed parse + vectorized
        # exactness checks.  Nulls force object dtype, so any fall-through
        # lands on the per-cell loop below.
        arr = _as_exact_array(column)
        if arr is not None:
            kind = KIND_INT if arr.dtype == _np.int64 else KIND_FLOAT
            return TypedColumn(kind, arr, _np.ones(n, dtype=bool), n)
    has_int = has_float = has_str = False
    for pos, v in enumerate(column):
        if v is None or pos in invalid:
            continue
        t = type(v)
        if t is int:
            has_int = True
        elif t is float:
            has_float = True
        elif t is str:
            has_str = True
        else:
            return None  # bool subclasses int via isinstance; type() is strict
    if has_str and (has_int or has_float):
        return None

    valid = _np.ones(n, dtype=bool)
    if has_str:
        cells: list[Any] = [""] * n
        n_valid = n
        for pos, v in enumerate(column):
            if v is None or pos in invalid:
                valid[pos] = False
                n_valid -= 1
            else:
                cells[pos] = v
        return TypedColumn(KIND_STR, _np.array(cells), valid, n_valid)

    if has_float:
        cells = [0.0] * n
        n_valid = n
        for pos, v in enumerate(column):
            if v is None or pos in invalid:
                valid[pos] = False
                n_valid -= 1
                continue
            if type(v) is int:
                if not _int_exact_as_float(v):
                    return None
            elif v != v:  # NaN: Python sort order over NaN is unreplicable
                return None
            cells[pos] = v
        return TypedColumn(
            KIND_FLOAT, _np.array(cells, dtype=_np.float64), valid, n_valid
        )

    if has_int:
        cells = [0] * n
        n_valid = n
        for pos, v in enumerate(column):
            if v is None or pos in invalid:
                valid[pos] = False
                n_valid -= 1
                continue
            if not (_INT64_MIN <= v <= _INT64_MAX):
                return None
            cells[pos] = v
        return TypedColumn(
            KIND_INT, _np.array(cells, dtype=_np.int64), valid, n_valid
        )

    return None  # all cells null/probabilistic: nothing to vectorize


# -- sort kernel --------------------------------------------------------------------


def sorted_pairs(
    typed: TypedColumn, column: list[Any]
) -> tuple[list[Any], list[int], Any | None]:
    """``(values, positions, exact)`` of the concrete cells in sorted order.

    Byte-identical to the oracle's ``sorted((value, position) for concrete
    cells)``: the stable argsort orders equal keys by ascending position,
    and values are fetched back from the raw Python ``column`` so no
    ndarray scalar escapes.  For numeric columns ``exact`` is the sorted
    int64/float64 ndarray itself — already validated exact by the typed
    build — which :func:`search_cuts` callers carry so the values side
    skips re-validation on every probe batch (``None`` for strings).
    """
    idx = _np.flatnonzero(typed.valid)
    vals = typed.values[idx]
    order = _np.argsort(vals, kind="stable")
    positions = idx[order].tolist()
    exact = None if typed.kind == KIND_STR else vals[order]
    return list(map(column.__getitem__, positions)), positions, exact


def argsort_positions(
    cells: list[Any], positions: list[int]
) -> tuple[list[int], Any] | None:
    """``positions`` reordered by stable ``sorted((cells[i], positions[i]))``.

    One-shot variant for pre-filtered subsets (the theta-join stripe sort,
    which excludes probabilistic/non-numeric rows before sorting).  The
    ``positions`` list must be ascending — then the stable argsort's tie
    order equals the oracle's ``(value, position)`` tuple sort.  Returns
    ``(reordered positions, sorted exact ndarray)`` — the array rides along
    on the stripe's :class:`SortedColumn` so later :func:`search_cuts`
    batches skip values-side re-validation — or ``None`` when the values
    do not vectorize exactly.
    """
    if not HAVE_NUMPY or not positions:
        if positions == [] and HAVE_NUMPY:
            return [], _np.empty(0, dtype=_np.int64)
        return None
    arr = _as_exact_array(cells)
    if arr is None:
        return None
    order = _np.argsort(arr, kind="stable")
    return [positions[i] for i in order.tolist()], arr[order]


# -- group kernels -------------------------------------------------------------------


def hash_groups(typed: TypedColumn, column: list[Any]) -> dict[Any, list[int]]:
    """value -> ascending positions over concrete cells, in first-occurrence
    key order — byte-identical to the oracle's ``dict.setdefault`` scan.

    The stable sort puts each distinct value's positions in ascending
    (= scan) order; group boundaries come from adjacent inequality (the
    ``np.unique`` trick, keeping positions); groups are then emitted by
    first position so dict insertion order matches the scan.  Key objects
    are fetched from the raw ``column`` at each group's first position —
    exactly the first key object the oracle dict would have kept.
    """
    idx = _np.flatnonzero(typed.valid)
    table: dict[Any, list[int]] = {}
    if idx.size == 0:
        return table
    order = _np.argsort(typed.values[idx], kind="stable")
    sidx = idx[order]
    svals = typed.values[idx][order]
    starts = _np.flatnonzero(
        _np.concatenate(([True], svals[1:] != svals[:-1]))
    )
    firsts = sidx[starts]
    bounds = _np.append(starts, sidx.size)
    # One bulk tolist, then C-speed list slices per group — much cheaper
    # than materializing a small ndarray per group.
    sidx_list = sidx.tolist()
    bounds_list = bounds.tolist()
    for g in _np.argsort(firsts, kind="stable").tolist():
        lo, hi = bounds_list[g], bounds_list[g + 1]
        positions = sidx_list[lo:hi]
        table[column[positions[0]]] = positions
    return table


def arange(n: int) -> Any:
    """``[0..n)`` as the int64 index array the group kernels consume."""
    return _np.arange(n, dtype=_np.int64)


def as_index(positions: list[int]) -> Any:
    """An ascending position list as the int64 index array kernels consume."""
    return _np.asarray(positions, dtype=_np.int64)


def grouped_positions(
    key_arrays: list[Any], index: Any
) -> list[Any] | None:
    """Group row indexes by their key-tuple, first-occurrence ordered.

    ``key_arrays`` are same-length ndarrays (one per key attribute, every
    used position valid) and ``index`` an ascending int64 ndarray of the
    original positions they describe.  Returns, per group in first-
    occurrence order, an ascending list of original positions — matching
    the oracle's ``dict.setdefault`` scan grouping exactly.
    """
    if not HAVE_NUMPY:
        return None
    n = int(index.size)
    if n == 0:
        return []
    if len(key_arrays) == 1:
        order = _np.argsort(key_arrays[0], kind="stable")
    else:
        order = _np.lexsort(tuple(reversed(key_arrays)))
    change = _np.zeros(n, dtype=bool)
    change[0] = True
    for arr in key_arrays:
        s = arr[order]
        change[1:] |= s[1:] != s[:-1]
    starts = _np.flatnonzero(change)
    bounds = _np.append(starts, n)
    sindex = index[order]
    firsts = sindex[starts]
    sindex_list = sindex.tolist()
    bounds_list = bounds.tolist()
    groups = []
    for g in _np.argsort(firsts, kind="stable").tolist():
        groups.append(sindex_list[bounds_list[g]:bounds_list[g + 1]])
    return groups


def fd_violating_groups(
    key_arrays: list[Any], rhs_array: Any, index: Any
) -> tuple[int, list[Any]]:
    """``(group_count, violating)`` for FD lhs-grouping over a row subset.

    ``key_arrays`` hold the lhs key columns, ``rhs_array`` the rhs values
    and ``index`` the ascending original positions, all gathered to the
    same subset with every cell valid.  A single lexsort by
    ``(lhs..., rhs)`` yields both the lhs groups (key-change boundaries)
    and each group's distinct-rhs count (rhs-change boundaries *within* a
    group) without any per-group ndarray call.  ``violating`` lists, per
    group holding >1 distinct rhs, the ascending original positions (as a
    plain list) — in first-occurrence group order, matching the oracle's
    dict scan.
    """
    n = int(index.size)
    if n == 0:
        return 0, []
    # lexsort makes the *last* key primary, so (rhs, last_lhs, ...,
    # first_lhs) sorts rows by (lhs..., rhs) with stable ties.
    order = _np.lexsort(tuple([rhs_array] + list(reversed(key_arrays))))
    key_change = _np.zeros(n, dtype=bool)
    key_change[0] = True
    for arr in key_arrays:
        s = arr[order]
        key_change[1:] |= s[1:] != s[:-1]
    srhs = rhs_array[order]
    rhs_change = _np.zeros(n, dtype=bool)
    rhs_change[1:] = srhs[1:] != srhs[:-1]
    within = rhs_change & ~key_change
    starts = _np.flatnonzero(key_change)
    group_count = int(starts.size)
    if not bool(within.any()):
        return group_count, []
    bounds = _np.append(starts, n)
    gid = _np.cumsum(key_change) - 1
    sindex = index[order]
    # gid is non-decreasing, so one stable lexsort by (gid, position)
    # sorts every group's members ascending at once — no per-group sort.
    sindex_list = sindex[_np.lexsort((sindex, gid))].tolist()
    bounds_list = bounds.tolist()
    violating = []
    for g in _np.unique(gid[within]).tolist():
        violating.append(sindex_list[bounds_list[g]:bounds_list[g + 1]])
    violating.sort(key=lambda members: members[0])
    return group_count, violating


# -- filter kernel -------------------------------------------------------------------


def _probe_compatible(typed: TypedColumn, value: Any) -> bool:
    t = type(value)
    if typed.kind == KIND_STR:
        return t is str
    if t is int:
        if typed.kind == KIND_INT:
            return _INT64_MIN <= value <= _INT64_MAX
        return _int_exact_as_float(value)
    if t is float:
        # int64-vs-float comparison would silently cast through float64;
        # only the float column (already 2^53-exact) compares exactly.
        return typed.kind == KIND_FLOAT and value == value
    return False


def mask_filter_positions(
    typed: TypedColumn, op: str, value: Any
) -> list[int] | None:
    """Ascending concrete positions satisfying ``cell <op> value``.

    The boolean-mask twin of the oracle's linear ``cell_compare`` scan:
    invalid (null/probabilistic) positions never match — mirroring
    ``_concrete_satisfies``'s "``None`` satisfies nothing" rule — and an
    incompatible probe type returns ``None`` so the caller falls back.
    ``value is None`` matches nothing under every operator, vectorized or
    not, so it short-circuits to the empty selection.
    """
    if value is None:
        return []
    if not _probe_compatible(typed, value):
        return None
    vals = typed.values
    if op == "=":
        mask = vals == value
    elif op == "!=":
        mask = vals != value
    elif op == "<":
        mask = vals < value
    elif op == "<=":
        mask = vals <= value
    elif op == ">":
        mask = vals > value
    elif op == ">=":
        mask = vals >= value
    else:
        return None
    return _np.flatnonzero(mask & typed.valid).tolist()


# -- stripe kernels ------------------------------------------------------------------


def numeric_array(numeric: list[float | None]) -> Any:
    """The stripe's plain-collapsed numeric column as float64, None -> NaN.

    (NumPy's float64 conversion renders ``None`` as NaN natively, so this
    is a single C-speed parse.)
    """
    return _np.array(numeric, dtype=_np.float64)


def numeric_mask_positions(
    arr: Any, op: str, lo: float, hi: float, empty_box: bool
) -> Any:
    """Vectorized ``_row_may_qualify`` for one predicate over one stripe.

    Returns a boolean mask over the stripe's rows.  ``None`` values (NaN
    in ``arr``) fail every comparison — which is exactly the oracle's
    "``value is None`` → ``False``" first check, so only the operators
    whose oracle returns ``True`` unconditionally (``!=`` et al.) need
    the explicit validity AND.
    """
    if empty_box:
        return _np.zeros(arr.shape[0], dtype=bool)
    if op == "<":
        return arr < hi
    if op == "<=":
        return arr <= hi
    if op == ">":
        return arr > lo
    if op == ">=":
        return arr >= lo
    if op == "=":
        return (arr >= lo) & (arr <= hi)
    return ~_np.isnan(arr)  # '!=' and friends prune only null values


def mask_to_positions(mask: Any) -> list[int]:
    """A boolean row mask as an ascending position list."""
    return _np.flatnonzero(mask).tolist()


_SEARCH_SIDE = MappingProxyType(
    {"<": "left", "<=": "right", ">": "right", ">=": "left"}
)


def subset_exact(exact: Any | None, keep: list[bool]) -> Any | None:
    """``exact[keep]`` for a Python bool list, or ``None`` when absent.

    Carries a sorted column's pre-validated exact array through the
    filtered-subset rebuild in the theta-join scan.
    """
    if exact is None or not HAVE_NUMPY:
        return None
    return exact[_np.asarray(keep, dtype=bool)]


def search_cuts(
    sorted_values: list[Any],
    probes: list[Any],
    op: str,
    values_exact: Any | None = None,
) -> Any | None:
    """Per-probe bisect cut(s) into a sorted value list, via ``searchsorted``.

    The batch twin of ``SortedColumn.range_positions``: for inequality
    ``op``, ``cuts[i]`` is the slice boundary the per-probe ``bisect``
    would compute (prefix for ``<``/``<=``, suffix start for ``>``/
    ``>=``); for ``=`` it returns the ``(lo, hi)`` cut pair.  Returns
    ``None`` unless both sides vectorize exactly (int64, or float64 with
    every int 2^53-exact and no NaN), in which case the cuts are
    bit-identical to the oracle's bisect.  ``values_exact`` is the
    already-validated ndarray of ``sorted_values`` a sorted-index build
    produced (``SortedColumn.exact``); passing it skips the values-side
    re-validation, leaving only the probe batch to prove exact.
    """
    if not HAVE_NUMPY:
        return None
    values = values_exact if values_exact is not None else _as_exact_array(sorted_values)
    if values is None:
        return None
    probe_arr = _as_exact_array(probes)
    if probe_arr is None:
        return None
    if values.dtype != probe_arr.dtype:
        # One side all-int, the other mixed: compare in float64, but only
        # when the int side stays exact there.
        int_side = values if values.dtype.kind == "i" else probe_arr
        # (range check rather than np.abs: abs(int64 min) overflows)
        if not (
            (int_side > -MAX_EXACT_FLOAT_INT) & (int_side < MAX_EXACT_FLOAT_INT)
        ).all():
            return None
        values = values.astype(_np.float64)
        probe_arr = probe_arr.astype(_np.float64)
    if op == "=":
        return (
            _np.searchsorted(values, probe_arr, side="left"),
            _np.searchsorted(values, probe_arr, side="right"),
        )
    side = _SEARCH_SIDE.get(op)
    if side is None:
        return None
    return _np.searchsorted(values, probe_arr, side=side)


#: The kernel-oracle parity registry (checked statically by daisylint
#: DL008 and exercised dynamically by tests/test_kernels.py): every
#: public function in this module names the pure-Python computation it
#: must be byte-identical to — or declares itself a shared knob helper
#: with no vectorized twin.  Adding a kernel without registering its
#: oracle (or vice versa) fails `python -m tools.daisylint src`.
KERNEL_ORACLES: dict[str, str] = {  # daisylint: disable=DL104 - write-once oracle registry, populated here and read-only thereafter (DL008 governs its contents)
    "validate_column_backend": "knob helper (no kernel): shared by both paths",
    "resolve_column_backend": "knob helper (no kernel): shared by both paths",
    "build_typed_column": (
        "identity over the raw Python cell list; dtype inference is "
        "exact-or-decline (2^53 int bounds, NaN/bool/mixed-family rejection)"
    ),
    "sorted_pairs": (
        "sorted((value, position)) over concrete cells — "
        "repro.relation.columnview sorted-index build"
    ),
    "argsort_positions": (
        "sorted((value, position)) position list — stable argsort ties "
        "break by ascending position exactly like the tuple sort"
    ),
    "hash_groups": (
        "dict.setdefault first-occurrence scan — "
        "repro.relation.columnview.ColumnView hash-index build"
    ),
    "arange": "list(range(n))",
    "as_index": "list(positions) (identity position list)",
    "grouped_positions": (
        "dict.setdefault first-occurrence scan — "
        "repro.relation.columnview.ColumnView group-index build"
    ),
    "fd_violating_groups": (
        "repro.detection.fd_detector lhs-group dict scan (violating "
        "groups in first-occurrence order, rows in position order)"
    ),
    "mask_filter_positions": (
        "repro.probabilistic.value.cell_compare linear scan with "
        "None-cells excluded"
    ),
    "numeric_array": "the thetajoin stripe's None-padded numeric column list",
    "numeric_mask_positions": (
        "repro.detection.thetajoin per-row numeric comparison scan "
        "(None fails every comparison)"
    ),
    "mask_to_positions": "[i for i, hit in enumerate(mask) if hit]",
    "subset_exact": "[x for x, keep_it in zip(arr, keep) if keep_it]",
    "search_cuts": (
        "per-probe bisect_left/bisect_right cuts — "
        "repro.detection.thetajoin sort-based inequality scan"
    ),
}
