"""The row-store :class:`Relation` with stable tuple identifiers.

A relation is an ordered multiset of rows over a :class:`~repro.relation.schema.Schema`.
Every row carries a stable tuple id (*tid*) that survives selection,
projection and cleaning — tids are the backbone of the lineage/provenance
machinery (Sections 4 and 4.4 of the paper) and of the in-place update that
Daisy applies after each query.

Cells may hold concrete Python values or probabilistic
:class:`~repro.probabilistic.value.PValue` cells; all comparison helpers in
this module use possible-worlds semantics (a predicate holds iff at least one
candidate satisfies it).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro._ownership import shared_engine_state
from repro.errors import SchemaError
from repro.probabilistic.value import PValue, cell_compare, cells_may_equal, plain
from repro.relation.columnview import ColumnView
from repro.relation.schema import Column, ColumnType, Schema


class Row:
    """One tuple of a relation: a tid plus cell values.

    Rows are immutable; updates produce new Row objects (relations replace
    rows wholesale, which keeps update semantics explicit).
    """

    __slots__ = ("tid", "values")

    def __init__(self, tid: int, values: tuple[Any, ...]) -> None:
        self.tid = tid
        self.values = values

    def __getitem__(self, idx: int) -> Any:
        return self.values[idx]

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.tid == other.tid and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.tid, self.values))

    def __repr__(self) -> str:
        return f"Row(tid={self.tid}, {self.values!r})"

    def replace(self, index: int, value: Any) -> "Row":
        """Return a copy of the row with cell ``index`` replaced."""
        vals = list(self.values)
        vals[index] = value
        return Row(self.tid, tuple(vals))


def _aggregate_numeric(func: str, values: Iterable[Any]) -> Any:
    """One aggregate over plain cell values (non-numeric values are skipped,
    mirroring the possible-worlds collapse the paper's aggregation applies)."""
    nums = [
        v for v in values
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    ]
    if not nums:
        return None
    if func == "sum":
        return float(sum(nums))
    if func == "avg":
        return float(sum(nums)) / len(nums)
    if func == "min":
        return float(min(nums))
    if func == "max":
        return float(max(nums))
    raise SchemaError(f"unknown aggregate function {func!r}")


@shared_engine_state
class Relation:
    """An ordered multiset of :class:`Row` objects over a :class:`Schema`.

    Shared via :class:`~repro.core.state.TableState`; cell updates and the
    cached columnar view are rewritten only inside the serialized cleaning
    and update seams, and the engine stamps ``name`` at registration.
    """

    MUTATED_UNDER = {
        "_colview": (
            "Relation.column_view",
            "Relation.apply_delta",
            "Relation.update_cells",
        ),
        "name": ("Daisy.register_table",),
    }

    def __init__(
        self,
        schema: Schema,
        rows: Iterable[Row] | None = None,
        name: str = "",
        validate: bool = False,
    ) -> None:
        self.schema = schema
        self.name = name
        self._rows: list[Row] = list(rows) if rows is not None else []
        #: Cached columnar view (built on demand, patched across updates).
        self._colview: ColumnView | None = None
        if validate:
            for row in self._rows:
                schema.validate_row(row.values)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        schema: Schema | Sequence[Column | tuple[str, ColumnType] | str],
        raw_rows: Iterable[Sequence[Any]],
        name: str = "",
        validate: bool = True,
    ) -> "Relation":
        """Build a relation from raw value sequences, assigning fresh tids."""
        if not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = [Row(tid, tuple(vals)) for tid, vals in enumerate(raw_rows)]
        return cls(schema, rows, name=name, validate=validate)

    def empty_like(self) -> "Relation":
        """An empty relation with the same schema."""
        return Relation(self.schema, [], name=self.name)

    # -- basic accessors ---------------------------------------------------------

    @property
    def rows(self) -> list[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return f"Relation({self.name or '<anon>'}, {len(self)} rows, {self.schema!r})"

    def column_index(self, attr: str) -> int:
        return self.schema.index_of(attr)

    def column_values(self, attr: str) -> list[Any]:
        """All values of one column, in row order (may contain PValues)."""
        idx = self.schema.index_of(attr)
        return [row.values[idx] for row in self._rows]

    def tids(self) -> set[int]:
        return {row.tid for row in self._rows}

    def row_by_tid(self, tid: int) -> Row:
        """Linear-scan tid lookup (use :meth:`tid_index` for bulk access)."""
        for row in self._rows:
            if row.tid == tid:
                return row
        raise KeyError(f"tid {tid} not present in relation {self.name!r}")

    def tid_index(self) -> dict[int, Row]:
        """A tid -> row dictionary (rows are unique per tid)."""
        return {row.tid: row for row in self._rows}

    def column_view(self) -> ColumnView:
        """The (cached) columnar view of this relation.

        Built lazily on first use; :meth:`update_cells` / :meth:`apply_delta`
        carry the cache forward by incremental patching, so the gradual
        cleaning loop never pays a full rebuild.  The view must be treated
        as immutable — mutating ``_rows`` directly invalidates it silently.
        """
        if self._colview is None:
            self._colview = ColumnView.from_relation(self)
        return self._colview

    # -- relational operators ------------------------------------------------------

    def filter(self, predicate: Callable[[Row], bool]) -> "Relation":
        """Select rows satisfying an arbitrary row predicate."""
        return Relation(
            self.schema, [r for r in self._rows if predicate(r)], name=self.name
        )

    def where(self, attr: str, op: str, value: Any) -> "Relation":
        """Select rows where ``attr <op> value`` under possible-worlds semantics."""
        idx = self.schema.index_of(attr)
        return self.filter(lambda row: cell_compare(row.values[idx], op, value))

    def project(self, attrs: Sequence[str]) -> "Relation":
        """Project to ``attrs`` (tids preserved)."""
        indices = [self.schema.index_of(a) for a in attrs]
        schema = self.schema.project(attrs)
        rows = [Row(r.tid, tuple(r.values[i] for i in indices)) for r in self._rows]
        return Relation(schema, rows, name=self.name)

    def rename(self, mapping: dict[str, str]) -> "Relation":
        return Relation(self.schema.rename(mapping), list(self._rows), name=self.name)

    def prefixed(self, prefix: str) -> "Relation":
        return Relation(self.schema.prefixed(prefix), list(self._rows), name=prefix)

    def union(self, other: "Relation") -> "Relation":
        """Bag union; schemas must match."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"union schema mismatch: {self.schema.names} vs {other.schema.names}"
            )
        return Relation(self.schema, self._rows + other._rows, name=self.name)

    def minus_tids(self, tids: set[int]) -> "Relation":
        """Rows whose tid is not in ``tids``."""
        return Relation(
            self.schema, [r for r in self._rows if r.tid not in tids], name=self.name
        )

    def restrict_tids(self, tids: set[int]) -> "Relation":
        """Rows whose tid is in ``tids``."""
        return Relation(
            self.schema, [r for r in self._rows if r.tid in tids], name=self.name
        )

    def distinct_values(self, attr: str) -> set[Any]:
        """Distinct concrete values of a column; PValues contribute candidates."""
        idx = self.schema.index_of(attr)
        out: set[Any] = set()
        for row in self._rows:
            cell = row.values[idx]
            if isinstance(cell, PValue):
                out.update(cell.concrete_values())
            else:
                out.add(cell)
        return out

    def equi_join(
        self,
        other: "Relation",
        left_attr: str,
        right_attr: str,
        left_prefix: str = "",
        right_prefix: str = "",
    ) -> "Relation":
        """Hash equi-join with possible-worlds key semantics.

        Probabilistic join keys match iff candidate sets overlap (Section 4).
        Output rows get fresh tids; callers needing lineage should use
        :func:`repro.probabilistic.lineage.join_with_lineage` instead.
        """
        left = self.prefixed(left_prefix) if left_prefix else self
        right = other.prefixed(right_prefix) if right_prefix else other
        l_attr = f"{left_prefix}.{left_attr}" if left_prefix else left_attr
        r_attr = f"{right_prefix}.{right_attr}" if right_prefix else right_attr
        li = left.schema.index_of(l_attr)
        ri = right.schema.index_of(r_attr)

        # Build hash table on the right side; probabilistic keys are indexed
        # under every candidate value.
        table: dict[Any, list[Row]] = {}
        uncertain_right: list[Row] = []
        for row in right._rows:
            key = row.values[ri]
            if isinstance(key, PValue):
                uncertain_right.append(row)
                for v in key.concrete_values():
                    table.setdefault(v, []).append(row)
            else:
                table.setdefault(key, []).append(row)

        out_schema = left.schema.concat(right.schema)
        out_rows: list[Row] = []
        tid = 0
        seen: set[tuple[int, int]] = set()
        for lrow in left._rows:
            key = lrow.values[li]
            probe_values: Iterable[Any]
            if isinstance(key, PValue):
                probe_values = key.concrete_values()
            else:
                probe_values = (key,)
            matches: list[Row] = []
            for v in probe_values:
                matches.extend(table.get(v, ()))
            # Range candidates on either side require a scan over the
            # uncertain rows (rare path: only after DC repairs).
            if isinstance(key, PValue) and any(
                c.is_range() for c in key.candidates
            ):
                matches.extend(
                    r for r in other._rows if cells_may_equal(key, r.values[ri])
                )
            else:
                for urow in uncertain_right:
                    ukey = urow.values[ri]
                    if any(c.is_range() for c in ukey.candidates) and cells_may_equal(
                        key, ukey
                    ):
                        matches.append(urow)
            for rrow in matches:
                pair = (lrow.tid, rrow.tid)
                if pair in seen:
                    continue
                seen.add(pair)
                out_rows.append(Row(tid, lrow.values + rrow.values))
                tid += 1
        return Relation(out_schema, out_rows, name=f"{left.name}_join_{right.name}")

    def group_by(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
        *,
        view: ColumnView | None = None,
        tids: set[int] | None = None,
    ) -> "Relation":
        """Group-by with aggregates.

        ``aggregates`` is a sequence of ``(func, attr, out_name)`` where func
        is one of ``count``, ``sum``, ``avg``, ``min``, ``max``.  Probabilistic
        grouping keys are collapsed to their most probable candidate, and
        probabilistic aggregate inputs to their most probable value — the
        paper pushes cleaning below the aggregation precisely so that the
        aggregate sees (mostly) repaired values.

        Passing ``view`` (this relation's own columnar view) serves grouping
        keys and aggregate inputs from the view's per-attribute arrays and
        its cached group index instead of walking Row objects; ``tids``
        optionally restricts the grouped rows (the executor's filtered
        answer).  Both paths return identical relations.
        """
        if view is not None:
            return self._group_by_columnar(view, keys, aggregates, tids)
        if tids is not None:
            return self.restrict_tids(tids).group_by(keys, aggregates)
        key_idx = [self.schema.index_of(k) for k in keys]
        agg_specs = [
            (func, None if attr == "*" else self.schema.index_of(attr), out)
            for func, attr, out in aggregates
        ]
        groups: dict[tuple[Any, ...], list[Row]] = {}
        order: list[tuple[Any, ...]] = []
        for row in self._rows:
            key = tuple(plain(row.values[i]) for i in key_idx)
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(row)

        out_rows: list[Row] = []
        for tid, key in enumerate(order):
            members = groups[key]
            aggs: list[Any] = []
            for func, idx, _out in agg_specs:
                if func == "count":
                    aggs.append(len(members))
                    continue
                values = (plain(r.values[idx]) for r in members)
                aggs.append(_aggregate_numeric(func, values))
            out_rows.append(Row(tid, key + tuple(aggs)))
        return Relation(
            self._group_by_schema(keys, aggregates), out_rows,
            name=f"{self.name}_grouped",
        )

    def _group_by_schema(
        self,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ) -> Schema:
        out_cols: list[Column] = [self.schema.column(k) for k in keys]
        for func, _attr, out in aggregates:
            ctype = ColumnType.INT if func == "count" else ColumnType.FLOAT
            out_cols.append(Column(out, ctype))
        return Schema(out_cols)

    def _group_by_columnar(
        self,
        view: ColumnView,
        keys: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
        tids: set[int] | None,
    ) -> "Relation":
        """Columnar group-by over the view's group index (same output as the
        row path: groups in first-occurrence order, rows in position order)."""
        for k in keys:
            self.schema.index_of(k)  # same unknown-attribute errors as rowstore
        agg_specs = []
        for func, attr, out in aggregates:
            if attr == "*":
                agg_specs.append((func, None, out))
            else:
                self.schema.index_of(attr)
                agg_specs.append((func, view.columns[attr], out))
        order, groups = view.group_index(tuple(keys))

        restrict: set[int] | None = None
        if tids is not None:
            pos_map = view.pos_of_tid
            restrict = {pos_map[t] for t in tids if t in pos_map}
            if len(restrict) == len(view):
                restrict = None
        ordered: list[tuple[tuple[Any, ...], Sequence[int]]]
        if restrict is None:
            ordered = [(key, groups[key]) for key in order]
        else:
            picked = []
            for key in order:
                members = [p for p in groups[key] if p in restrict]
                if members:
                    picked.append((key, members))
            picked.sort(key=lambda kv: kv[1][0])
            ordered = picked

        out_rows: list[Row] = []
        for tid, (key, members) in enumerate(ordered):
            aggs: list[Any] = []
            for func, col, _out in agg_specs:
                if func == "count":
                    aggs.append(len(members))
                    continue
                values = (plain(col[pos]) for pos in members)
                aggs.append(_aggregate_numeric(func, values))
            out_rows.append(Row(tid, key + tuple(aggs)))
        return Relation(
            self._group_by_schema(keys, aggregates), out_rows,
            name=f"{self.name}_grouped",
        )

    # -- updates ---------------------------------------------------------------

    @staticmethod
    def _cell_changed(old_cell: Any, new_cell: Any) -> bool:
        """One changed-cell policy for every diff: ``!=`` with an
        incomparable-means-changed fallback."""
        if new_cell is old_cell:
            return False
        try:
            return bool(new_cell != old_cell)
        except Exception:  # daisylint: disable=DL005
            # Deliberate breadth: user-supplied cell values may raise
            # anything from __eq__; "incomparable means changed" is the
            # documented policy and must not depend on the exception type.
            return True

    def cell_diff(self, delta: dict[int, Row]) -> dict[tuple[int, str], Any]:
        """The ``(tid, attr) -> new cell`` patch a row delta amounts to.

        Only cells that actually changed (per :meth:`_cell_changed`) are
        included — the exact shape :meth:`update_cells` and
        :meth:`ColumnView.patched` consume, and the patch stream the
        incremental maintenance layers subscribe to.  A replacement row
        whose arity does not match the schema raises ``SchemaError`` rather
        than silently truncating the comparison.
        """
        names = self.schema.names
        cell_updates: dict[tuple[int, str], Any] = {}
        for old_row in self._rows:
            new_row = delta.get(old_row.tid)
            if new_row is None or new_row is old_row:
                continue
            if len(new_row.values) != len(names):
                raise SchemaError(
                    f"replacement row for tid {old_row.tid} has arity "
                    f"{len(new_row.values)}, schema has {len(names)}"
                )
            for attr, new_cell, old_cell in zip(
                names, new_row.values, old_row.values
            ):
                if self._cell_changed(old_cell, new_cell):
                    cell_updates[(old_row.tid, attr)] = new_cell
        return cell_updates

    def changed_cells(
        self, updates: dict[tuple[int, str], Any]
    ) -> dict[tuple[int, str], Any]:
        """``updates`` restricted to present tids whose cell really changes.

        The cell-form twin of :meth:`cell_diff` (same comparison policy),
        served from the cached columnar view's positional arrays when one
        exists.
        """
        if self._colview is not None:
            view = self._colview
            pos_map = view.pos_of_tid
            out: dict[tuple[int, str], Any] = {}
            for (tid, attr), value in updates.items():
                self.schema.index_of(attr)  # same SchemaError as the row path
                pos = pos_map.get(tid)
                if pos is None:
                    continue
                if self._cell_changed(view.columns[attr][pos], value):
                    out[(tid, attr)] = value
            return out
        tid_rows = self.tid_index()
        out = {}
        for (tid, attr), value in updates.items():
            idx = self.schema.index_of(attr)
            row = tid_rows.get(tid)
            if row is None:
                continue
            if self._cell_changed(row.values[idx], value):
                out[(tid, attr)] = value
        return out

    def apply_delta(self, delta: dict[int, Row], origin: str = "data") -> "Relation":
        """Replace rows by tid (the paper's in-place dataset update).

        ``delta`` maps tid -> replacement Row (same tid).  Rows absent from
        the delta are kept untouched.  This implements "we isolate the changes
        and apply the delta to the original dataset".  ``origin`` tags the
        patch batch emitted on the cached columnar view's patch stream (see
        :mod:`repro.relation.columnview`).
        """
        if not delta:
            return self
        rows = [delta.get(row.tid, row) for row in self._rows]
        updated = Relation(self.schema, rows, name=self.name)
        if self._colview is not None:
            # Patch the cached columnar view with only the cells the delta
            # actually changed — replacing a whole row must not invalidate
            # the untouched columns' indexes and derived caches.
            updated._colview = self._colview.patched(
                self.cell_diff(delta), origin=origin
            )
        return updated

    def update_rows(self, delta: dict[int, Row], origin: str = "data") -> "Relation":
        """Alias of :meth:`apply_delta` for the external-update API surface."""
        return self.apply_delta(delta, origin=origin)

    def update_cells(
        self, updates: dict[tuple[int, str], Any], origin: str = "data"
    ) -> "Relation":
        """Replace individual cells addressed by (tid, attribute).

        ``origin`` tags the patch batch emitted on the cached columnar
        view's patch stream ("data" for external ground-truth updates,
        "repair"/"resolve" for cleaning-internal rewrites).
        """
        if not updates:
            return self
        by_tid: dict[int, dict[int, Any]] = {}
        for (tid, attr), value in updates.items():
            by_tid.setdefault(tid, {})[self.schema.index_of(attr)] = value
        rows: list[Row] = []
        for row in self._rows:
            cell_map = by_tid.get(row.tid)
            if cell_map is None:
                rows.append(row)
            else:
                vals = list(row.values)
                for idx, value in cell_map.items():
                    vals[idx] = value
                rows.append(Row(row.tid, tuple(vals)))
        updated = Relation(self.schema, rows, name=self.name)
        if self._colview is not None:
            updated._colview = self._colview.patched(updates, origin=origin)
        return updated

    # -- introspection -----------------------------------------------------------

    def probabilistic_cell_count(self) -> int:
        """Number of cells currently holding a PValue (gradual-cleaning gauge)."""
        return sum(
            1 for row in self._rows for cell in row.values if isinstance(cell, PValue)
        )

    def to_plain_rows(self) -> list[tuple[Any, ...]]:
        """Rows with probabilistic cells collapsed to most-probable values."""
        return [tuple(plain(v) for v in row.values) for row in self._rows]
