"""Relation schemas: named, typed columns.

The substrate is a small relational model: a :class:`Schema` is an ordered
collection of :class:`Column` definitions.  Columns are typed with a small
set of logical types (:class:`ColumnType`) that is sufficient for the paper's
workloads (integer keys, floating-point measures, strings).

Values stored in a relation may also be *probabilistic*
(:class:`repro.probabilistic.value.PValue`); the schema type then describes
the type of each candidate value.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.errors import SchemaError, TypeMismatchError


class ColumnType(enum.Enum):
    """Logical column types supported by the relational substrate."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    BOOL = "bool"

    def python_types(self) -> tuple[type[Any], ...]:
        """Return the Python types that are valid for this column type."""
        if self is ColumnType.INT:
            return (int,)
        if self is ColumnType.FLOAT:
            # Integers are acceptable wherever floats are.
            return (float, int)
        if self is ColumnType.BOOL:
            return (bool,)
        return (str,)

    def coerce(self, raw: str) -> Any:
        """Parse ``raw`` (a CSV token) into a value of this type."""
        if self is ColumnType.INT:
            return int(raw)
        if self is ColumnType.FLOAT:
            return float(raw)
        if self is ColumnType.BOOL:
            return raw.strip().lower() in ("1", "true", "t", "yes")
        return raw


@dataclass(frozen=True)
class Column:
    """A single named, typed column of a relation."""

    name: str
    ctype: ColumnType = ColumnType.STRING

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")

    def validate(self, value: Any) -> None:
        """Raise :class:`TypeMismatchError` if ``value`` is not valid here.

        ``None`` is always allowed (SQL NULL).  Probabilistic values validate
        each of their candidates.
        """
        if value is None:
            return
        # Deferred import: probabilistic depends on nothing, but relation
        # must not import it at module load time to keep layering one-way
        # for plain (non-probabilistic) use.
        from repro.probabilistic.value import PValue

        if isinstance(value, PValue):
            for candidate in value.candidates:
                self.validate(candidate.value)
            return
        if isinstance(value, bool) and self.ctype is not ColumnType.BOOL:
            raise TypeMismatchError(
                f"column {self.name!r} of type {self.ctype.value} got boolean {value!r}"
            )
        if not isinstance(value, self.ctype.python_types()):
            raise TypeMismatchError(
                f"column {self.name!r} of type {self.ctype.value} got {value!r}"
            )


class Schema:
    """An ordered, named collection of columns.

    Supports lookup by name and by position, projection, renaming, and
    concatenation (for joins).
    """

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column | tuple[str, ColumnType] | str]) -> None:
        cols: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                cols.append(spec)
            elif isinstance(spec, tuple):
                name, ctype = spec
                cols.append(Column(name, ctype))
            elif isinstance(spec, str):
                cols.append(Column(spec, ColumnType.STRING))
            else:
                raise SchemaError(f"invalid column spec {spec!r}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._columns: tuple[Column, ...] = tuple(cols)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(cols)}

    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Schema({inner})"

    def index_of(self, name: str) -> int:
        """Return the position of column ``name``.

        Raises :class:`SchemaError` for unknown names, listing the schema so
        the error is actionable.
        """
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; schema has {list(self.names)}"
            ) from None

    def column(self, name: str) -> Column:
        return self._columns[self.index_of(name)]

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a new schema with only ``names``, in the given order."""
        return Schema([self.column(n) for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        """Return a schema with columns renamed per ``mapping``."""
        return Schema(
            [Column(mapping.get(c.name, c.name), c.ctype) for c in self._columns]
        )

    def prefixed(self, prefix: str) -> "Schema":
        """Return a schema with every column name prefixed (``prefix.name``).

        Used when joining two relations so that same-named columns from
        different inputs stay distinguishable.
        """
        return Schema([Column(f"{prefix}.{c.name}", c.ctype) for c in self._columns])

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (e.g. for a join output)."""
        return Schema(list(self._columns) + list(other._columns))

    def validate_row(self, row: Sequence[Any]) -> None:
        """Validate arity and types of ``row`` against this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity {len(self._columns)}"
            )
        for column, value in zip(self._columns, row):
            column.validate(value)
