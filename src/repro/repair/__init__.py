"""Repair: probabilistic candidate fixes, provenance, multi-rule merging."""

from repro.repair.fixes import CandidateFix, CellFix, RepairDelta
from repro.repair.provenance import CellProvenance, ProvenanceStore
from repro.repair.fd_repair import apply_fd_delta, compute_fd_fixes
from repro.repair.dc_repair import apply_dc_delta, compute_dc_fixes, inversion_sets
from repro.repair.merge import (
    deltas_equivalent,
    merge_commutes,
    merge_deltas,
    normalize_fix,
)

__all__ = [
    "CandidateFix",
    "CellFix",
    "RepairDelta",
    "ProvenanceStore",
    "CellProvenance",
    "compute_fd_fixes",
    "apply_fd_delta",
    "compute_dc_fixes",
    "apply_dc_delta",
    "inversion_sets",
    "merge_deltas",
    "deltas_equivalent",
    "merge_commutes",
    "normalize_fix",
]
