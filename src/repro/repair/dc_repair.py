"""Holistic repair of general DC violations (Section 4.2).

For a violated DC ∀t1,t2 ¬(p1 ∧ … ∧ pm) and a violating pair, every atom
currently holds; a repair must invert at least one atom.  The subset of
atoms to invert is a satisfiability question: atom variables xi mean "atom i
still holds after repair", and the DC contributes the clause
(¬x1 ∨ … ∨ ¬xm).  We use the DPLL solver to enumerate subset-minimal repairs
(fewest inverted atoms), then translate each inverted atom into candidate
*range* fixes for the two cells it mentions:

    atom t1.a < t2.b  (holds)  →  either  t1.a := [t2.b, +inf)
                                or        t2.b := (-inf, t1.a]

Each affected cell receives candidates {original value, range}, weighted by
the number of possible fixes — reproducing Example 5's
``{(<2000 50%, 3000 50%), 0.2, 32}``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.constraints.dc import DenialConstraint
from repro.constraints.predicate import Predicate
from repro.detection.thetajoin import ViolationPair
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.errors import CleaningError
from repro.probabilistic.value import ValueRange, plain
from repro.relation.relation import Relation, Row
from repro.repair.fixes import CandidateFix, CellFix, RepairDelta
from repro.repair.provenance import ProvenanceStore
from repro.sat.cnf import FormulaBuilder
from repro.sat.solver import minimal_true_models


def _atom_name(index: int) -> str:
    return f"atom_{index}"


def inversion_sets(
    dc: DenialConstraint, frozen_atoms: set[int] | None = None
) -> list[tuple[int, ...]]:
    """Subset-minimal sets of atom indexes to invert, via the SAT solver.

    ``frozen_atoms`` are atoms that must keep holding (their data cannot be
    changed); they become positive unit clauses.  Returns an empty list when
    every atom is frozen (the violation is unrepairable).
    """
    builder = FormulaBuilder()
    clause = []
    for i in range(len(dc.predicates)):
        clause.append((_atom_name(i), False))
    builder.add_clause_names(clause)
    for i in frozen_atoms or set():
        builder.formula.add_unit(builder.var(_atom_name(i)))
    models = minimal_true_models(builder.formula)
    out: list[tuple[int, ...]] = []
    for model in models:
        named = builder.decode(model)
        inverted = tuple(
            sorted(
                i
                for i in range(len(dc.predicates))
                if not named.get(_atom_name(i), True)
            )
        )
        if inverted:
            out.append(inverted)
    return sorted(set(out))


def _inverted_range(op: str, pivot: float) -> ValueRange:
    """The value range that makes ``x <op> pivot`` FALSE.

    E.g. atom ``x < pivot`` holds; the fix range is ``x >= pivot``.
    """
    if op == "<":
        return ValueRange(low=pivot, low_open=False)
    if op == "<=":
        return ValueRange(low=pivot, low_open=True)
    if op == ">":
        return ValueRange(high=pivot, high_open=False)
    if op == ">=":
        return ValueRange(high=pivot, high_open=True)
    raise CleaningError(f"cannot build an inversion range for operator {op!r}")


def _mirror(op: str) -> str:
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}[op]


def _concrete(row: Row, idx: int) -> Any:
    return plain(row.values[idx])


def compute_dc_fixes(
    relation: Relation,
    dc: DenialConstraint,
    violations: Sequence[ViolationPair],
    provenance: ProvenanceStore | None = None,
    counter: WorkCounter | None = None,
) -> RepairDelta:
    """Candidate fixes for a batch of DC violation pairs.

    For each violation and each minimal atom-inversion set, candidate fixes
    are produced for every cell that inverting the atom can touch.  Equality
    and disequality atoms produce value candidates (the other tuple's value);
    order atoms produce :class:`ValueRange` candidates.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    indexes = {a: relation.schema.index_of(a) for a in dc.attributes()}
    tid_rows = relation.tid_index()
    rule_name = dc.name or str(dc)
    delta = RepairDelta()
    inversions = inversion_sets(dc)
    next_world = 1

    for violation in violations:
        row1 = tid_rows.get(violation.t1)
        row2 = tid_rows.get(violation.t2)
        if row1 is None or row2 is None:
            continue
        counter.charge_comparisons(len(dc.predicates))
        pair = (row1, row2)
        # All (cell, candidate-range) options across minimal inversions.
        options: list[tuple[int, str, Any, Any]] = []  # (tid, attr, original, fix)
        for inversion in inversions:
            for atom_idx in inversion:
                pred = dc.predicates[atom_idx]
                options.extend(_atom_fix_options(pred, pair, indexes))
        if not options:
            continue
        # Each option is one possible fix; candidates are weighted by the
        # number of possible fixes (frequency-based, Example 5).
        for tid, attr, original, fix_value in options:
            world = next_world
            next_world += 1
            other_tid = violation.t2 if tid == violation.t1 else violation.t1
            fix = CellFix(tid=tid, attr=attr, original=original, rules={rule_name})
            fix.add(
                CandidateFix(
                    value=original, support=frozenset({tid}), world=world
                )
            )
            fix.add(
                CandidateFix(
                    value=fix_value, support=frozenset({other_tid}), world=world
                )
            )
            delta.add_fix(fix)
    return delta


def _atom_fix_options(
    pred: Predicate,
    pair: tuple[Row, Row],
    indexes: dict[str, int],
) -> list[tuple[int, str, Any, Any]]:
    """The (tid, attr, original, fix-value) options that invert one atom."""
    options: list[tuple[int, str, Any, Any]] = []
    left_row = pair[pred.left_tuple]
    left_val = _concrete(left_row, indexes[pred.left_attr])
    if pred.is_constant():
        if pred.op in ("<", "<=", ">", ">="):
            if isinstance(pred.constant, (int, float)):
                options.append(
                    (
                        left_row.tid,
                        pred.left_attr,
                        left_val,
                        _inverted_range(pred.op, float(pred.constant)),
                    )
                )
        elif pred.op == "=":
            # Invert equality with a constant: no principled alternative value;
            # flag with a disequality placeholder is out of scope, skip.
            pass
        return options

    right_row = pair[pred.right_tuple]  # type: ignore[index]
    right_val = _concrete(right_row, indexes[pred.right_attr])  # type: ignore[index]
    if pred.op in ("<", "<=", ">", ">="):
        if isinstance(left_val, (int, float)) and isinstance(right_val, (int, float)):
            options.append(
                (
                    left_row.tid,
                    pred.left_attr,
                    left_val,
                    _inverted_range(pred.op, float(right_val)),
                )
            )
            options.append(
                (
                    right_row.tid,
                    pred.right_attr,  # type: ignore[arg-type]
                    right_val,
                    _inverted_range(_mirror(pred.op), float(left_val)),
                )
            )
    elif pred.op == "=":
        # Invert t1.a = t2.b by changing either side to "anything else":
        # concretely, no candidate value is known, so skip (FD-shaped DCs
        # take the FD path which does produce value candidates).
        pass
    elif pred.op == "!=":
        # Invert a disequality by equating the two cells.
        options.append((left_row.tid, pred.left_attr, left_val, right_val))
        options.append(
            (right_row.tid, pred.right_attr, right_val, left_val)  # type: ignore[arg-type]
        )
    return options


def apply_dc_delta(
    relation: Relation,
    delta: RepairDelta,
    provenance: ProvenanceStore | None = None,
    counter: WorkCounter | None = None,
) -> Relation:
    """Apply DC fixes in place (same mechanics as the FD path)."""
    from repro.repair.fd_repair import apply_fd_delta

    return apply_fd_delta(relation, delta, provenance=provenance, counter=counter)
