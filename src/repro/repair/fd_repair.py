"""Probabilistic repair of FD violations (Section 4.1).

Given a scope of tuples (a relaxed query result — relaxation guarantees the
scope contains every correlated tuple needed), the repair:

1. groups the scope by the FD's lhs and rhs (using original values for
   already-repaired cells, via the provenance store);
2. flags groups with more than one distinct rhs as violating;
3. for every member t of a violating group builds the two candidate
   families of the paper:

   * RHS — candidate rhs values = rhs of tuples t' with t'.lhs = t.lhs,
     weighted by frequency: P(rhs | lhs);
   * LHS — candidate lhs values = lhs of tuples t' with t'.rhs = t.rhs,
     weighted by frequency: P(lhs | rhs).

   When both families are non-trivial the tuple has two instances (possible
   worlds): world 1 fixes the rhs (lhs keeps its original value), world 2
   fixes the lhs (rhs keeps its original value); candidates carry the world
   id, reproducing Table 2b.

Support sets (the conflicting-tuple sets Ti of Lemma 4) are carried on every
candidate so multi-rule merges re-weight probabilities by union of supports.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation.columnview import ColumnView
from repro.relation.relation import Relation, Row
from repro.repair.fixes import CandidateFix, CellFix, RepairDelta
from repro.repair.provenance import ProvenanceStore

#: World ids for the two tuple instances of an FD repair.
WORLD_FIX_RHS = 1
WORLD_FIX_LHS = 2


def _original_cell(
    row: Row,
    idx: int,
    attr: str,
    provenance: ProvenanceStore | None,
) -> Any:
    """A cell's original (pre-repair) value for grouping purposes."""
    if provenance is not None:
        original = provenance.original(row.tid, attr)
        if original is not None:
            return original
    cell = row.values[idx]
    if isinstance(cell, PValue):
        return cell.most_probable()
    return cell


def _original_value(
    tid: int,
    cell: Any,
    attr: str,
    provenance: ProvenanceStore | None,
) -> Any:
    """Columnar twin of :func:`_original_cell` (cell already in hand)."""
    if provenance is not None:
        original = provenance.original(tid, attr)
        if original is not None:
            return original
    if isinstance(cell, PValue):
        return cell.most_probable()
    return cell


def fd_grouping_keys(
    view: ColumnView,
    fd: FunctionalDependency,
    provenance: ProvenanceStore | None,
) -> "_FdGroupingKeys":
    """The cached per-position grouping keys of ``fd`` over ``view``."""
    return view.derived(
        ("fd_keys", tuple(fd.lhs), fd.rhs, provenance),
        set(fd.lhs) | {fd.rhs},
        lambda: _FdGroupingKeys(view, fd, provenance),
    )


class _FdGroupingKeys:
    """Per-position (lhs key, rhs value) of one FD under a provenance store.

    The grouping values of :func:`compute_fd_fixes` — provenance original
    if recorded, else the cell's most probable value — precomputed per row
    position and patched positionally when repairs land, so each detection
    pass is pure array lookups.  Keyed on the view *and* the provenance
    store (the derived-cache key includes it), since originals differ per
    cleaning engine.
    """

    __slots__ = ("lhs", "rhs", "provenance", "lhs_keys", "rhs_vals", "rhs_groups")

    def __init__(
        self,
        view: ColumnView,
        fd: FunctionalDependency,
        provenance: ProvenanceStore | None,
    ):
        self.lhs = tuple(fd.lhs)
        self.rhs = fd.rhs
        self.provenance = provenance
        lhs_cols = [view.columns[a] for a in self.lhs]
        rhs_col = view.columns[self.rhs]
        tids = view.tids
        self.lhs_keys: list[tuple[Any, ...]] = [
            tuple(
                _original_value(tids[pos], col[pos], attr, provenance)
                for col, attr in zip(lhs_cols, self.lhs)
            )
            for pos in range(len(tids))
        ]
        self.rhs_vals: list[Any] = [
            _original_value(tids[pos], rhs_col[pos], self.rhs, provenance)
            for pos in range(len(tids))
        ]
        #: grouping rhs value -> positions (the inverted rhs group index)
        self.rhs_groups: dict[Any, set[int]] = {}
        for pos, value in enumerate(self.rhs_vals):
            self.rhs_groups.setdefault(value, set()).add(pos)

    def patched_for_view(
        self, view: ColumnView, touched: dict[str, list[int]]
    ) -> "_FdGroupingKeys":
        clone = _FdGroupingKeys.__new__(_FdGroupingKeys)
        clone.lhs = self.lhs
        clone.rhs = self.rhs
        clone.provenance = self.provenance
        tids = view.tids
        lhs_positions: set[int] = set()
        for attr in self.lhs:
            lhs_positions.update(touched.get(attr, ()))
        if lhs_positions:
            lhs_cols = [view.columns[a] for a in self.lhs]
            lhs_keys = list(self.lhs_keys)
            for pos in sorted(lhs_positions):
                lhs_keys[pos] = tuple(
                    _original_value(tids[pos], col[pos], attr, self.provenance)
                    for col, attr in zip(lhs_cols, self.lhs)
                )
            clone.lhs_keys = lhs_keys
        else:
            clone.lhs_keys = self.lhs_keys
        rhs_positions = touched.get(self.rhs, ())
        if rhs_positions:
            rhs_col = view.columns[self.rhs]
            rhs_vals = list(self.rhs_vals)
            rhs_groups = dict(self.rhs_groups)
            copied: set[Any] = set()

            def entry(value: Any) -> set[int]:
                if value not in copied:
                    copied.add(value)
                    rhs_groups[value] = set(rhs_groups.get(value, ()))
                return rhs_groups[value]

            for pos in rhs_positions:
                old = rhs_vals[pos]
                new = _original_value(
                    tids[pos], rhs_col[pos], self.rhs, self.provenance
                )
                if new == old:
                    continue
                rhs_vals[pos] = new
                entry(old).discard(pos)
                entry(new).add(pos)
            clone.rhs_vals = rhs_vals
            clone.rhs_groups = rhs_groups
        else:
            clone.rhs_vals = self.rhs_vals
            clone.rhs_groups = self.rhs_groups
        return clone


def compute_fd_fixes(
    relation: Relation,
    fd: FunctionalDependency,
    scope_tids: Iterable[int],
    provenance: ProvenanceStore | None = None,
    counter: WorkCounter | None = None,
    skip_group_keys: set[tuple[Any, ...]] | None = None,
    consult_tids: Iterable[int] | None = None,
    view: ColumnView | None = None,
) -> tuple[RepairDelta, set[tuple[Any, ...]]]:
    """Compute probabilistic fixes for FD violations inside ``scope_tids``.

    ``consult_tids`` are additional tuples whose values feed the candidate
    maps (they contribute lhs-candidate support via shared rhs values, per
    Example 2 / Table 2b) but are never repaired themselves.

    Returns the delta and the set of violating lhs group keys that were
    repaired (so callers can mark them checked in the provenance store).
    ``skip_group_keys`` suppresses groups already repaired by this rule.

    ``view`` (the columnar backend) visits only the scope ∪ consult
    positions instead of scanning the relation, and memoizes the
    P(lhs | rhs) support maps per rhs value; candidate sets and
    probabilities are identical either way.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    skip = skip_group_keys or set()
    scope = set(scope_tids)
    consult = set(consult_tids) if consult_tids is not None else set()
    consult -= scope

    # One pass over scope ∪ consult: group by lhs and by rhs simultaneously.
    # Only scope tuples enter the lhs groups (repair eligibility); consult
    # tuples only feed the rhs map (candidate support).
    by_lhs: dict[tuple[Any, ...], list[tuple[int, Any]]] = {}
    by_rhs: dict[Any, list[tuple[int, tuple[Any, ...]]]] = {}
    support_of_rhs: Any = None
    if view is not None:
        # Columnar path: the cached grouping keys / rhs group index make the
        # pass positional, and P(lhs | rhs) support maps — which depend only
        # on the rhs value — are served lazily per rhs value, restricted to
        # scope ∪ consult so the result matches the row-store pass exactly.
        keys = fd_grouping_keys(view, fd, provenance)
        lhs_keys, rhs_vals = keys.lhs_keys, keys.rhs_vals
        rhs_groups = keys.rhs_groups
        view_tids = view.tids
        sc_positions = view.positions_of(scope | consult)
        sc_set = set(sc_positions)
        counter.charge_scan(len(sc_positions))
        for pos in view.positions_of(scope):
            by_lhs.setdefault(lhs_keys[pos], []).append(
                (view_tids[pos], rhs_vals[pos])
            )
        support_cache: dict[Any, tuple[dict[tuple[Any, ...], set[int]], int]] = {}

        def _lazy_support(rhs_val: Any) -> tuple[dict, int]:
            cached = support_cache.get(rhs_val)
            if cached is not None:
                return cached
            members = sorted((rhs_groups.get(rhs_val) or set()) & sc_set)
            support: dict[tuple[Any, ...], set[int]] = {}
            for pos in members:
                support.setdefault(lhs_keys[pos], set()).add(view_tids[pos])
            cached = (support, len(members))
            support_cache[rhs_val] = cached
            return cached

        support_of_rhs = _lazy_support
    else:
        lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
        rhs_idx = relation.schema.index_of(fd.rhs)
        for row in relation.rows:
            in_scope = row.tid in scope
            if not in_scope and row.tid not in consult:
                continue
            counter.charge_scan()
            lhs_key = tuple(
                _original_cell(row, i, a, provenance) for i, a in zip(lhs_idx, fd.lhs)
            )
            rhs_val = _original_cell(row, rhs_idx, fd.rhs, provenance)
            if in_scope:
                by_lhs.setdefault(lhs_key, []).append((row.tid, rhs_val))
            by_rhs.setdefault(rhs_val, []).append((row.tid, lhs_key))

    delta = RepairDelta()
    repaired_groups: set[tuple[Any, ...]] = set()
    single_lhs = len(fd.lhs) == 1

    for lhs_key, members in by_lhs.items():
        distinct_rhs = {rhs for _tid, rhs in members}
        counter.charge_comparisons(len(members))
        if len(distinct_rhs) <= 1 or lhs_key in skip:
            continue
        repaired_groups.add(lhs_key)

        # Frequency of each rhs value within this lhs group: P(rhs | lhs).
        rhs_support: dict[Any, set[int]] = {}
        for tid, rhs in members:
            rhs_support.setdefault(rhs, set()).add(tid)

        for tid, rhs_val in members:
            # Frequency of each lhs value among tuples sharing this rhs:
            # P(lhs | rhs).
            if support_of_rhs is not None:
                lhs_support, member_count = support_of_rhs(rhs_val)
                counter.charge_comparisons(member_count)
            else:
                lhs_members = by_rhs.get(rhs_val, [])
                counter.charge_comparisons(len(lhs_members))
                lhs_support = {}
                for other_tid, other_lhs in lhs_members:
                    lhs_support.setdefault(other_lhs, set()).add(other_tid)
            lhs_ambiguous = len(lhs_support) > 1

            # --- RHS fix (world 1) -------------------------------------------
            # Candidate keys are unique by construction (dict keys × fixed
            # world), so the lists are built directly instead of through the
            # merging ``add``.
            rhs_fix = CellFix(
                tid=tid, attr=fd.rhs, original=rhs_val, rules={fd.name or str(fd)}
            )
            rhs_world = WORLD_FIX_RHS if lhs_ambiguous else 0
            rhs_fix.candidates.extend(
                CandidateFix(value, support, rhs_world)
                for value, support in rhs_support.items()
            )

            if not lhs_ambiguous:
                # Only the rhs family exists; the lhs cell stays concrete
                # (the Table 2b tuple-1 case).
                if not rhs_fix.is_trivial():
                    delta.add_fix(rhs_fix)
                continue

            # --- two-instance repair (worlds 1 and 2) --------------------------
            # World 2 keeps the original rhs.
            rhs_fix.candidates.append(
                CandidateFix(
                    rhs_val,
                    lhs_support.get(lhs_key) or {tid},
                    WORLD_FIX_LHS,
                )
            )
            delta.add_fix(rhs_fix)

            if single_lhs:
                lhs_attr = fd.lhs[0]
                lhs_fix = CellFix(
                    tid=tid,
                    attr=lhs_attr,
                    original=lhs_key[0],
                    rules={fd.name or str(fd)},
                )
                # World 1 keeps the original lhs; single-attribute keys make
                # the world-2 values unique, so direct construction is safe.
                lhs_fix.candidates.append(
                    CandidateFix(
                        lhs_key[0],
                        rhs_support.get(rhs_val) or {tid},
                        WORLD_FIX_RHS,
                    )
                )
                lhs_fix.candidates.extend(
                    CandidateFix(value[0], support, WORLD_FIX_LHS)
                    for value, support in lhs_support.items()
                )
                delta.add_fix(lhs_fix)
            else:
                # Composite lhs: emit one fix per lhs attribute, each carrying
                # that attribute's candidate values.
                for pos, lhs_attr in enumerate(fd.lhs):
                    values = {v[pos] for v in lhs_support}
                    if len(values) <= 1:
                        continue
                    lhs_fix = CellFix(
                        tid=tid,
                        attr=lhs_attr,
                        original=lhs_key[pos],
                        rules={fd.name or str(fd)},
                    )
                    lhs_fix.add(
                        CandidateFix(
                            value=lhs_key[pos],
                            support=rhs_support.get(rhs_val) or {tid},
                            world=WORLD_FIX_RHS,
                        )
                    )
                    for value, support in lhs_support.items():
                        lhs_fix.add(
                            CandidateFix(
                                value=value[pos],
                                support=support,
                                world=WORLD_FIX_LHS,
                            )
                        )
                    delta.add_fix(lhs_fix)

    return delta, repaired_groups


def apply_fd_delta(
    relation: Relation,
    delta: RepairDelta,
    provenance: ProvenanceStore | None = None,
    counter: WorkCounter | None = None,
) -> Relation:
    """Apply a repair delta in place of the original cells.

    Records originals in the provenance store before overwriting and charges
    update work per fixed cell.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    updates = delta.cell_updates()
    if provenance is not None:
        tid_rows = relation.tid_index()
        for fix in delta.nontrivial_fixes():
            row = tid_rows.get(fix.tid)
            if row is None:
                continue
            idx = relation.schema.index_of(fix.attr)
            current = row.values[idx]
            if not isinstance(current, PValue):
                for rule in fix.rules or {"?"}:
                    provenance.record_original(fix.tid, fix.attr, current, rule)
            else:
                for rule in fix.rules or {"?"}:
                    provenance.record_original(fix.tid, fix.attr, fix.original, rule)
    counter.charge_update(len(updates))
    return relation.update_cells(updates, origin="repair")
