"""Probabilistic repair of FD violations (Section 4.1).

Given a scope of tuples (a relaxed query result — relaxation guarantees the
scope contains every correlated tuple needed), the repair:

1. groups the scope by the FD's lhs and rhs (using original values for
   already-repaired cells, via the provenance store);
2. flags groups with more than one distinct rhs as violating;
3. for every member t of a violating group builds the two candidate
   families of the paper:

   * RHS — candidate rhs values = rhs of tuples t' with t'.lhs = t.lhs,
     weighted by frequency: P(rhs | lhs);
   * LHS — candidate lhs values = lhs of tuples t' with t'.rhs = t.rhs,
     weighted by frequency: P(lhs | rhs).

   When both families are non-trivial the tuple has two instances (possible
   worlds): world 1 fixes the rhs (lhs keeps its original value), world 2
   fixes the lhs (rhs keeps its original value); candidates carry the world
   id, reproducing Table 2b.

Support sets (the conflicting-tuple sets Ti of Lemma 4) are carried on every
candidate so multi-rule merges re-weight probabilities by union of supports.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.constraints.dc import FunctionalDependency
from repro.engine.stats import GLOBAL_COUNTER, WorkCounter
from repro.probabilistic.value import PValue
from repro.relation.relation import Relation, Row
from repro.repair.fixes import CandidateFix, CellFix, RepairDelta
from repro.repair.provenance import ProvenanceStore

#: World ids for the two tuple instances of an FD repair.
WORLD_FIX_RHS = 1
WORLD_FIX_LHS = 2


def _original_cell(
    row: Row,
    idx: int,
    attr: str,
    provenance: Optional[ProvenanceStore],
) -> Any:
    """A cell's original (pre-repair) value for grouping purposes."""
    if provenance is not None:
        original = provenance.original(row.tid, attr)
        if original is not None:
            return original
    cell = row.values[idx]
    if isinstance(cell, PValue):
        return cell.most_probable()
    return cell


def compute_fd_fixes(
    relation: Relation,
    fd: FunctionalDependency,
    scope_tids: Iterable[int],
    provenance: Optional[ProvenanceStore] = None,
    counter: Optional[WorkCounter] = None,
    skip_group_keys: Optional[set[tuple[Any, ...]]] = None,
    consult_tids: Optional[Iterable[int]] = None,
) -> tuple[RepairDelta, set[tuple[Any, ...]]]:
    """Compute probabilistic fixes for FD violations inside ``scope_tids``.

    ``consult_tids`` are additional tuples whose values feed the candidate
    maps (they contribute lhs-candidate support via shared rhs values, per
    Example 2 / Table 2b) but are never repaired themselves.

    Returns the delta and the set of violating lhs group keys that were
    repaired (so callers can mark them checked in the provenance store).
    ``skip_group_keys`` suppresses groups already repaired by this rule.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    skip = skip_group_keys or set()
    lhs_idx = [relation.schema.index_of(a) for a in fd.lhs]
    rhs_idx = relation.schema.index_of(fd.rhs)
    scope = set(scope_tids)
    consult = set(consult_tids) if consult_tids is not None else set()
    consult -= scope

    # One pass over scope ∪ consult: group by lhs and by rhs simultaneously.
    # Only scope tuples enter the lhs groups (repair eligibility); consult
    # tuples only feed the rhs map (candidate support).
    by_lhs: dict[tuple[Any, ...], list[tuple[int, Any]]] = {}
    by_rhs: dict[Any, list[tuple[int, tuple[Any, ...]]]] = {}
    for row in relation.rows:
        in_scope = row.tid in scope
        if not in_scope and row.tid not in consult:
            continue
        counter.charge_scan()
        lhs_key = tuple(
            _original_cell(row, i, a, provenance) for i, a in zip(lhs_idx, fd.lhs)
        )
        rhs_val = _original_cell(row, rhs_idx, fd.rhs, provenance)
        if in_scope:
            by_lhs.setdefault(lhs_key, []).append((row.tid, rhs_val))
        by_rhs.setdefault(rhs_val, []).append((row.tid, lhs_key))

    delta = RepairDelta()
    repaired_groups: set[tuple[Any, ...]] = set()
    single_lhs = len(fd.lhs) == 1

    for lhs_key, members in by_lhs.items():
        distinct_rhs = {rhs for _tid, rhs in members}
        counter.charge_comparisons(len(members))
        if len(distinct_rhs) <= 1 or lhs_key in skip:
            continue
        repaired_groups.add(lhs_key)

        # Frequency of each rhs value within this lhs group: P(rhs | lhs).
        rhs_support: dict[Any, set[int]] = {}
        for tid, rhs in members:
            rhs_support.setdefault(rhs, set()).add(tid)

        for tid, rhs_val in members:
            lhs_members = by_rhs.get(rhs_val, [])
            counter.charge_comparisons(len(lhs_members))
            # Frequency of each lhs value among tuples sharing this rhs:
            # P(lhs | rhs).
            lhs_support: dict[tuple[Any, ...], set[int]] = {}
            for other_tid, other_lhs in lhs_members:
                lhs_support.setdefault(other_lhs, set()).add(other_tid)
            lhs_ambiguous = len(lhs_support) > 1

            # --- RHS fix (world 1) -------------------------------------------
            rhs_fix = CellFix(
                tid=tid, attr=fd.rhs, original=rhs_val, rules={fd.name or str(fd)}
            )
            rhs_world = WORLD_FIX_RHS if lhs_ambiguous else 0
            for value, support in rhs_support.items():
                rhs_fix.add(
                    CandidateFix(
                        value=value, support=frozenset(support), world=rhs_world
                    )
                )

            if not lhs_ambiguous:
                # Only the rhs family exists; the lhs cell stays concrete
                # (the Table 2b tuple-1 case).
                if not rhs_fix.is_trivial():
                    delta.add_fix(rhs_fix)
                continue

            # --- two-instance repair (worlds 1 and 2) --------------------------
            # World 2 keeps the original rhs.
            rhs_fix.add(
                CandidateFix(
                    value=rhs_val,
                    support=frozenset(lhs_support.get(lhs_key, {tid})),
                    world=WORLD_FIX_LHS,
                )
            )
            delta.add_fix(rhs_fix)

            if single_lhs:
                lhs_attr = fd.lhs[0]
                lhs_fix = CellFix(
                    tid=tid,
                    attr=lhs_attr,
                    original=lhs_key[0],
                    rules={fd.name or str(fd)},
                )
                # World 1 keeps the original lhs.
                lhs_fix.add(
                    CandidateFix(
                        value=lhs_key[0],
                        support=frozenset(rhs_support.get(rhs_val, {tid})),
                        world=WORLD_FIX_RHS,
                    )
                )
                for value, support in lhs_support.items():
                    lhs_fix.add(
                        CandidateFix(
                            value=value[0],
                            support=frozenset(support),
                            world=WORLD_FIX_LHS,
                        )
                    )
                delta.add_fix(lhs_fix)
            else:
                # Composite lhs: emit one fix per lhs attribute, each carrying
                # that attribute's candidate values.
                for pos, lhs_attr in enumerate(fd.lhs):
                    values = {v[pos] for v in lhs_support}
                    if len(values) <= 1:
                        continue
                    lhs_fix = CellFix(
                        tid=tid,
                        attr=lhs_attr,
                        original=lhs_key[pos],
                        rules={fd.name or str(fd)},
                    )
                    lhs_fix.add(
                        CandidateFix(
                            value=lhs_key[pos],
                            support=frozenset(rhs_support.get(rhs_val, {tid})),
                            world=WORLD_FIX_RHS,
                        )
                    )
                    for value, support in lhs_support.items():
                        lhs_fix.add(
                            CandidateFix(
                                value=value[pos],
                                support=frozenset(support),
                                world=WORLD_FIX_LHS,
                            )
                        )
                    delta.add_fix(lhs_fix)

    return delta, repaired_groups


def apply_fd_delta(
    relation: Relation,
    delta: RepairDelta,
    provenance: Optional[ProvenanceStore] = None,
    counter: Optional[WorkCounter] = None,
) -> Relation:
    """Apply a repair delta in place of the original cells.

    Records originals in the provenance store before overwriting and charges
    update work per fixed cell.
    """
    counter = counter if counter is not None else GLOBAL_COUNTER
    updates = delta.cell_updates()
    if provenance is not None:
        tid_rows = relation.tid_index()
        for fix in delta.nontrivial_fixes():
            row = tid_rows.get(fix.tid)
            if row is None:
                continue
            idx = relation.schema.index_of(fix.attr)
            current = row.values[idx]
            if not isinstance(current, PValue):
                for rule in fix.rules or {"?"}:
                    provenance.record_original(fix.tid, fix.attr, current, rule)
            else:
                for rule in fix.rules or {"?"}:
                    provenance.record_original(fix.tid, fix.attr, fix.original, rule)
    counter.charge_update(len(updates))
    return relation.update_cells(updates)
