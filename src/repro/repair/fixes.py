"""Fix representations shared by the FD and DC repair paths.

A :class:`CandidateFix` is one candidate value for one cell, together with
the *supporting tids* — the set Ti of conflicting/correlated tuples that
justify the candidate (Lemma 4's (ai, Ti) pairs).  A :class:`CellFix`
collects a cell's candidates across worlds; probabilities are derived from
support sizes, so merging fixes from multiple rules (union of supports)
automatically re-weights them, exactly as Section 4.3 prescribes
(P(X | Y ∪ Z)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Any, NamedTuple

from repro.probabilistic.value import PValue
from repro._ownership import session_owned


class CandidateFix(NamedTuple):
    """One candidate value with its justification set and world id.

    ``support`` may be any set type; producers on the repair hot path pass
    their (no longer mutated) working sets directly instead of copying into
    frozensets.
    """

    value: Any
    support: AbstractSet[int]
    world: int = 0

    def weight(self) -> int:
        return max(1, len(self.support))


@session_owned
@dataclass
class CellFix:
    """All candidate fixes for one cell (tid, attr)."""

    tid: int
    attr: str
    original: Any
    candidates: list[CandidateFix] = field(default_factory=list)
    rules: set[str] = field(default_factory=set)

    def add(self, candidate: CandidateFix) -> None:
        """Add a candidate, merging supports for an existing (value, world)."""
        for i, existing in enumerate(self.candidates):
            if existing.value == candidate.value and existing.world == candidate.world:
                self.candidates[i] = CandidateFix(
                    value=existing.value,
                    support=existing.support | candidate.support,
                    world=existing.world,
                )
                return
        self.candidates.append(candidate)

    def to_pvalue(self) -> PValue:
        """Materialize as a probabilistic cell.

        Within each world, weights are support sizes; worlds are weighted by
        their total support so the PValue's global normalization preserves
        frequency-based semantics.  ``add`` keeps (value, world) keys unique,
        so the pre-merged fast constructor applies.
        """
        return PValue.from_unique_weights(
            [(c.value, c.world, len(c.support) or 1) for c in self.candidates]
        )

    def values(self) -> list[Any]:
        return [c.value for c in self.candidates]

    def world_ids(self) -> set[int]:
        return {c.world for c in self.candidates}

    def is_trivial(self) -> bool:
        """True when the only candidate is the original value itself."""
        return len(self.candidates) == 1 and self.candidates[0].value == self.original


@session_owned
@dataclass
class RepairDelta:
    """A batch of cell fixes produced by one cleaning step.

    ``fixes`` is keyed by (tid, attr).  Applying the delta to a relation
    replaces each fixed cell with the PValue of its CellFix; trivial fixes
    are skipped.
    """

    fixes: dict[tuple[int, str], CellFix] = field(default_factory=dict)

    def add_fix(self, fix: CellFix) -> None:
        key = (fix.tid, fix.attr)
        existing = self.fixes.get(key)
        if existing is None:
            self.fixes[key] = fix
            return
        existing.rules |= fix.rules
        for candidate in fix.candidates:
            existing.add(candidate)

    def merge(self, other: "RepairDelta") -> None:
        for fix in other.fixes.values():
            self.add_fix(fix)

    def nontrivial_fixes(self) -> list[CellFix]:
        return [f for f in self.fixes.values() if not f.is_trivial()]

    def cell_updates(self) -> dict[tuple[int, str], PValue]:
        """The (tid, attr) -> PValue map ready for Relation.update_cells."""
        return {
            (f.tid, f.attr): f.to_pvalue() for f in self.nontrivial_fixes()
        }

    def touched_tids(self) -> set[int]:
        return {f.tid for f in self.nontrivial_fixes()}

    def __len__(self) -> int:
        return len(self.fixes)

    def __bool__(self) -> bool:
        return bool(self.fixes)
