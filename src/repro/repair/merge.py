"""Multi-rule fix merging (Section 4.3, Lemma 4).

When several rules flag the same cell, its candidate sets must be merged:
candidate values are united and probabilities adjusted to reflect the union
of the supporting (conflicting-tuple) sets — P(X | Y ∪ Z) for rules Y→X and
Z→X.  Because :class:`~repro.repair.fixes.CellFix` carries supports as tid
sets and derives probabilities from support sizes, the merge is a plain
union and is therefore commutative and associative (Lemma 4); helpers here
expose the merge over whole deltas and a verification utility used by tests.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.repair.fixes import CellFix, RepairDelta


def merge_deltas(deltas: Iterable[RepairDelta]) -> RepairDelta:
    """Merge per-rule deltas into one (order-independent by Lemma 4)."""
    merged = RepairDelta()
    for delta in deltas:
        merged.merge(delta)
    return merged


def normalize_fix(fix: CellFix) -> tuple:
    """A canonical, order-insensitive summary of a fix.

    Worlds coming from different rules are not comparable, so the canonical
    form collapses worlds and keys candidates by value with their united
    supports.  Two merge orders are equivalent iff their canonical forms
    match.
    """
    by_value: dict = {}
    for cand in fix.candidates:
        key = _canonical_value(cand.value)
        by_value.setdefault(key, set()).update(cand.support)
    return (
        fix.tid,
        fix.attr,
        tuple(
            sorted(
                (key, tuple(sorted(supp))) for key, supp in by_value.items()
            )
        ),
    )


def _canonical_value(value) -> str:
    return repr(value)


def deltas_equivalent(a: RepairDelta, b: RepairDelta) -> bool:
    """Are two deltas equal up to candidate order and world relabeling?"""
    if set(a.fixes) != set(b.fixes):
        return False
    for key in a.fixes:
        if normalize_fix(a.fixes[key]) != normalize_fix(b.fixes[key]):
            return False
    return True


def merge_commutes(deltas: Sequence[RepairDelta]) -> bool:
    """Check Lemma 4 on a concrete instance: forward merge == reverse merge."""
    forward = merge_deltas(deltas)
    backward = merge_deltas(list(reversed(list(deltas))))
    return deltas_equivalent(forward, backward)
