"""Provenance for repaired cells.

Section 4: "We also maintain provenance to the original values in case new
rules appear."  The :class:`ProvenanceStore` remembers, per (tid, attribute):

* the original concrete value before the first probabilistic repair, and
* which rules have contributed fixes to the cell.

It also records, per rule, the lhs groups / tid pairs already checked, so
Daisy can (a) skip re-checking (Section 4.3 "Daisy maintains information
about the already checked tuples by each rule") and (b) run a *new* rule
over the original data and merge with existing fixes instead of recleaning
from scratch (the Table 7 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable
from repro._ownership import shared_engine_state


@dataclass
class CellProvenance:
    """Original value + contributing rules for one repaired cell."""

    original: Any
    rules: set[str] = field(default_factory=set)


@shared_engine_state
class ProvenanceStore:
    """Provenance for one relation's repaired cells and per-rule progress.

    Mutated only inside cleaning passes (which the service tier serializes
    per table): repairs land via :meth:`record_original`, progress via
    :meth:`mark_checked`, and external updates retract stale cells via
    :meth:`forget_cell` under the table's update seam.
    """

    MUTATED_UNDER = {
        "_cells": ("ProvenanceStore.record_original", "ProvenanceStore.forget_cell"),
        "_checked_groups": ("ProvenanceStore.mark_checked",),
    }

    def __init__(self) -> None:
        self._cells: dict[tuple[int, str], CellProvenance] = {}
        #: rule name -> set of group keys (FDs) or cell ids already checked.
        self._checked_groups: dict[str, set[Hashable]] = {}

    # -- cell originals ----------------------------------------------------------

    def record_original(self, tid: int, attr: str, value: Any, rule: str) -> None:
        """Record the pre-repair value of a cell (first writer wins)."""
        key = (tid, attr)
        if key not in self._cells:
            self._cells[key] = CellProvenance(original=value)
        self._cells[key].rules.add(rule)

    def original(self, tid: int, attr: str) -> Any | None:
        """The original value of a repaired cell, or None if never repaired."""
        prov = self._cells.get((tid, attr))
        return prov.original if prov is not None else None

    def originals_map(self) -> dict[tuple[int, str], Any]:
        """(tid, attr) -> original value, for all repaired cells."""
        return {key: prov.original for key, prov in self._cells.items()}

    def rules_of(self, tid: int, attr: str) -> set[str]:
        prov = self._cells.get((tid, attr))
        return set(prov.rules) if prov is not None else set()

    def repaired_cells(self) -> set[tuple[int, str]]:
        return set(self._cells)

    def is_repaired(self, tid: int, attr: str) -> bool:
        return (tid, attr) in self._cells

    def forget_cell(self, tid: int, attr: str) -> None:
        """Drop a cell's provenance (an external update replaced its ground
        truth, so the pre-repair original no longer describes anything)."""
        self._cells.pop((tid, attr), None)

    # -- per-rule progress ---------------------------------------------------------

    def mark_checked(self, rule: str, keys: set[Hashable]) -> None:
        """Record that ``keys`` (groups, cells, or stripe ids) were checked."""
        self._checked_groups.setdefault(rule, set()).update(keys)

    def checked(self, rule: str) -> set[Hashable]:
        return self._checked_groups.get(rule, set())

    def is_checked(self, rule: str, key: Hashable) -> bool:
        return key in self._checked_groups.get(rule, set())

    def reset_rule(self, rule: str) -> None:
        """Forget a rule's progress (e.g. after the data changed externally)."""
        self._checked_groups.pop(rule, None)

    def __len__(self) -> int:
        return len(self._cells)
