"""SAT substrate: CNF formulas + DPLL solver (used by holistic DC repair)."""

from repro.sat.cnf import Clause, CnfFormula, FormulaBuilder, Literal
from repro.sat.solver import is_satisfiable, minimal_true_models, solve, solve_all

__all__ = [
    "CnfFormula",
    "FormulaBuilder",
    "Clause",
    "Literal",
    "solve",
    "solve_all",
    "is_satisfiable",
    "minimal_true_models",
]
