"""CNF formulas: variables, literals, clauses.

The holistic DC repair (Section 4.2) maps the "which atoms must invert their
condition" question to satisfiability: each atom of a violated DC becomes a
Boolean variable (true = the atom's condition still holds after repair), the
DC itself contributes the clause ¬(p1 ∧ … ∧ pm) = (¬p1 ∨ … ∨ ¬pm), and side
constraints (e.g. an atom that cannot be changed) contribute unit clauses.
A model of the formula is a choice of atom subsets to invert.

Literals are non-zero integers in DIMACS style: variable ``v`` is the
positive literal ``v`` and its negation ``-v``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import SatError
from repro._ownership import session_owned

Literal = int
Clause = tuple[Literal, ...]


def check_literal(lit: int) -> None:
    if not isinstance(lit, int) or lit == 0:
        raise SatError(f"literal must be a non-zero integer, got {lit!r}")


@session_owned
class CnfFormula:
    """A conjunction of disjunctive clauses over integer variables."""

    def __init__(self, clauses: Iterable[Iterable[Literal]] | None = None):
        self._clauses: list[Clause] = []
        self._num_vars = 0
        if clauses:
            for clause in clauses:
                self.add_clause(clause)

    @property
    def clauses(self) -> list[Clause]:
        return self._clauses

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def add_clause(self, literals: Iterable[Literal]) -> None:
        clause = tuple(literals)
        if not clause:
            raise SatError("empty clause makes the formula trivially unsatisfiable; "
                           "add it explicitly via add_empty_clause if intended")
        for lit in clause:
            check_literal(lit)
            self._num_vars = max(self._num_vars, abs(lit))
        self._clauses.append(clause)

    def add_empty_clause(self) -> None:
        """Explicitly make the formula unsatisfiable."""
        self._clauses.append(())

    def add_unit(self, literal: Literal) -> None:
        self.add_clause([literal])

    def variables(self) -> set[int]:
        return {abs(lit) for clause in self._clauses for lit in clause}

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def evaluate(self, assignment: dict[int, bool]) -> bool:
        """Evaluate under a (total) assignment."""
        for clause in self._clauses:
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    raise SatError(f"assignment missing variable {var}")
                if assignment[var] == (lit > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def __repr__(self) -> str:
        return f"CnfFormula({len(self._clauses)} clauses, {self._num_vars} vars)"


@session_owned
@dataclass
class FormulaBuilder:
    """Incrementally assign variables to named atoms and build a CNF.

    Used by the repair module: atoms of a DC get stable names
    (``pred_0``, ``pred_1``, …) and the builder maps them to variable ids.
    """

    _names: dict[str, int] = field(default_factory=dict)
    formula: CnfFormula = field(default_factory=CnfFormula)

    def var(self, name: str) -> int:
        """The variable id for ``name`` (allocating if new)."""
        if name not in self._names:
            self._names[name] = len(self._names) + 1
        return self._names[name]

    def literal(self, name: str, positive: bool = True) -> Literal:
        v = self.var(name)
        return v if positive else -v

    def add_clause_names(self, literals: Iterable[tuple[str, bool]]) -> None:
        self.formula.add_clause(
            self.literal(name, positive) for name, positive in literals
        )

    def name_of(self, var: int) -> str:
        for name, v in self._names.items():
            if v == var:
                return name
        raise SatError(f"unknown variable {var}")

    def decode(self, assignment: dict[int, bool]) -> dict[str, bool]:
        """Translate a variable assignment back to atom names."""
        return {name: assignment[v] for name, v in self._names.items() if v in assignment}
