"""A DPLL SAT solver with unit propagation and pure-literal elimination.

Complete (always terminates with SAT+model or UNSAT) and deliberately simple:
the formulas produced by holistic DC repair have one variable per DC atom, so
they are tiny.  The solver still implements the classic optimizations so it
behaves well if users feed it larger formulas:

* unit propagation to fixpoint,
* pure-literal elimination,
* most-frequent-variable branching.

``solve_all`` enumerates every model (used to enumerate all candidate
atom-inversion subsets); ``minimal_true_models`` filters to subset-minimal
sets of *false* atoms, matching the repair-minimality principle.
"""

from __future__ import annotations

from typing import Iterator

from repro.sat.cnf import Clause, CnfFormula, Literal


def _simplify(clauses: list[Clause], literal: Literal) -> list[Clause] | None:
    """Assign ``literal`` true: drop satisfied clauses, shrink the rest.

    Returns None if an empty clause arises (conflict).
    """
    out: list[Clause] = []
    neg = -literal
    for clause in clauses:
        if literal in clause:
            continue
        if neg in clause:
            shrunk = tuple(l for l in clause if l != neg)
            if not shrunk:
                return None
            out.append(shrunk)
        else:
            out.append(clause)
    return out


def _unit_propagate(
    clauses: list[Clause], assignment: dict[int, bool]
) -> list[Clause] | None:
    """Propagate unit clauses to fixpoint, updating ``assignment`` in place."""
    while True:
        unit = next((c[0] for c in clauses if len(c) == 1), None)
        if unit is None:
            return clauses
        assignment[abs(unit)] = unit > 0
        simplified = _simplify(clauses, unit)
        if simplified is None:
            return None
        clauses = simplified


def _pure_literals(clauses: list[Clause]) -> list[Literal]:
    polarity: dict[int, set[bool]] = {}
    for clause in clauses:
        for lit in clause:
            polarity.setdefault(abs(lit), set()).add(lit > 0)
    return [
        (var if True in pols else -var)
        for var, pols in polarity.items()
        if len(pols) == 1
    ]


def _choose_branch_variable(clauses: list[Clause]) -> int:
    counts: dict[int, int] = {}
    for clause in clauses:
        for lit in clause:
            counts[abs(lit)] = counts.get(abs(lit), 0) + 1
    return max(counts, key=lambda v: (counts[v], -v))


def _dpll(clauses: list[Clause], assignment: dict[int, bool]) -> dict[int, bool] | None:
    clauses_or_none = _unit_propagate(clauses, assignment)
    if clauses_or_none is None:
        return None
    clauses = clauses_or_none
    for lit in _pure_literals(clauses):
        assignment[abs(lit)] = lit > 0
        simplified = _simplify(clauses, lit)
        if simplified is None:
            return None
        clauses = simplified
    if not clauses:
        return assignment
    var = _choose_branch_variable(clauses)
    for value in (True, False):
        lit = var if value else -var
        trial = dict(assignment)
        trial[var] = value
        simplified = _simplify(clauses, lit)
        if simplified is None:
            continue
        result = _dpll(simplified, trial)
        if result is not None:
            return result
    return None


def solve(formula: CnfFormula) -> dict[int, bool] | None:
    """Return a satisfying total assignment, or None if unsatisfiable.

    Variables not constrained by any clause are assigned True.
    """
    if any(len(c) == 0 for c in formula.clauses):
        return None
    assignment = _dpll(list(formula.clauses), {})
    if assignment is None:
        return None
    for var in range(1, formula.num_vars + 1):
        assignment.setdefault(var, True)
    return assignment


def is_satisfiable(formula: CnfFormula) -> bool:
    return solve(formula) is not None


def solve_all(formula: CnfFormula, limit: int = 100000) -> Iterator[dict[int, bool]]:
    """Enumerate all models by iteratively blocking found models.

    Complete but exponential — meant for the small atom-level formulas of DC
    repair.  Raises RuntimeError if more than ``limit`` models are produced.
    """
    if any(len(c) == 0 for c in formula.clauses):
        return
    blocking = CnfFormula(list(formula.clauses))
    produced = 0
    variables = sorted(formula.variables()) or list(range(1, formula.num_vars + 1))
    while True:
        model = solve(blocking)
        if model is None:
            return
        # Project to the original variables for a canonical model.
        canonical = {v: model.get(v, True) for v in variables}
        yield canonical
        produced += 1
        if produced > limit:
            raise RuntimeError(f"model enumeration exceeded limit={limit}")
        if not variables:
            return
        blocking.add_clause(
            (-v if canonical[v] else v) for v in variables
        )


def minimal_true_models(
    formula: CnfFormula, limit: int = 100000
) -> list[dict[int, bool]]:
    """Models whose set of FALSE variables is subset-minimal.

    In the repair encoding, a false variable means "invert this atom's
    condition" (i.e. change data).  Minimal-false models correspond to
    repairs that change as few atoms as possible — the minimality principle
    the paper inherits from holistic data cleaning.
    """
    models = list(solve_all(formula, limit=limit))
    false_sets = [frozenset(v for v, val in m.items() if not val) for m in models]
    minimal: list[dict[int, bool]] = []
    for i, fs in enumerate(false_sets):
        if any(other < fs for other in false_sets):
            continue
        minimal.append(models[i])
    return minimal
