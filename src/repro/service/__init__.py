"""The concurrent multi-session service tier over one shared Daisy engine.

The layering, bottom-up (see ``docs/service.md`` for the full guide):

* :mod:`.snapshot` — the isolation primitives: data-epoch snapshot pins
  for reads, epoch compare-and-swap leases for writes;
* :mod:`.requests` — the wire objects and their canonical (byte-stable)
  JSON encoding;
* :mod:`.runner` — per-client request dispatch over one session, shared
  verbatim by the concurrent workers and the serial oracle;
* :mod:`.scheduler` — :class:`DaisyService`: admission control priced by
  the :class:`~repro.core.costmodel.AdaptivePlanner`, per-table FIFO
  turnstiles, one worker thread per client;
* :mod:`.oracle` — :func:`replay_serial`, the one-session-at-a-time
  replay every concurrent run must match byte for byte;
* :mod:`.server` — the stdlib-asyncio HTTP/JSON front end.
"""

from repro.service.oracle import replay_serial
from repro.service.requests import ServiceRequest, ServiceResponse
from repro.service.runner import RequestRunner
from repro.service.scheduler import DaisyService, ServicePolicy, TableTurnstile
from repro.service.server import ServiceServer
from repro.service.snapshot import (
    EpochCasError,
    EpochLease,
    EpochSnapshot,
    IsolationError,
    SnapshotHandle,
    SnapshotViolation,
)

__all__ = [
    "DaisyService",
    "EpochCasError",
    "EpochLease",
    "EpochSnapshot",
    "IsolationError",
    "RequestRunner",
    "ServicePolicy",
    "ServiceRequest",
    "ServiceResponse",
    "ServiceServer",
    "SnapshotHandle",
    "SnapshotViolation",
    "TableTurnstile",
    "replay_serial",
]
