"""The serial one-session-at-a-time oracle the parity suite compares against.

:func:`replay_serial` replays an admission log on a *fresh* engine, one
request at a time, with one persistent
:class:`~repro.service.runner.RequestRunner` per client (created on the
client's first request, exactly like the concurrent service's worker
threads).  Because the concurrent scheduler serializes same-table engine
mutations in admission order and same-client session mutations in client
order (a subsequence of admission order), this single-threaded replay
performs the identical sequence of state transitions — every response
must come out byte-identical (:meth:`ServiceResponse.encode`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.service.requests import ServiceRequest, ServiceResponse
from repro.service.runner import RequestRunner

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.config import DaisyConfig
    from repro.daisy import Daisy

__all__ = ["replay_serial"]


def replay_serial(
    engine: "Daisy",
    log: Iterable[ServiceRequest],
    session_config: "DaisyConfig | None" = None,
) -> list[ServiceResponse]:
    """Replay an admission log serially; returns responses in log order.

    ``engine`` must be a fresh engine with the same tables/rules/config as
    the one the concurrent run started from, and ``session_config`` must
    match the service's — per-client sessions are opened against it on
    first use and closed at the end.
    """
    runners: dict[str, RequestRunner] = {}
    responses: list[ServiceResponse] = []
    try:
        for admitted, request in enumerate(log):
            runner = runners.get(request.client)
            if runner is None:
                runner = RequestRunner(engine.connect(session_config))
                runners[request.client] = runner
            responses.append(runner.run(request, admitted))
    finally:
        for client in sorted(runners):
            runners[client].session.close()
    return responses
