"""Wire objects of the service tier: requests in, responses out.

Both sides are frozen dataclasses with a canonical JSON encoding.  The
encoding is load-bearing: the parity suite compares a concurrent run
against the serial oracle **byte for byte**, so responses must be
bit-stable — keys sorted, separators fixed, non-JSON engine values (e.g.
probabilistic cells) rendered through ``repr``, and no wall-clock fields
anywhere (``elapsed_seconds`` is deliberately absent from every payload).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.query.sql import parse_sql
from repro.relation.relation import Row

__all__ = [
    "KIND_BATCH",
    "KIND_EXECUTE",
    "KIND_PREPARED",
    "KIND_UPDATE_ROWS",
    "KIND_UPDATE_TABLE",
    "READ_KINDS",
    "REQUEST_KINDS",
    "ServiceRequest",
    "ServiceResponse",
    "WRITE_KINDS",
]

#: Request kinds the service understands.
KIND_EXECUTE = "execute"
KIND_PREPARED = "prepared"
KIND_BATCH = "batch"
KIND_UPDATE_TABLE = "update_table"
KIND_UPDATE_ROWS = "update_rows"
READ_KINDS = (KIND_EXECUTE, KIND_PREPARED, KIND_BATCH)
WRITE_KINDS = (KIND_UPDATE_TABLE, KIND_UPDATE_ROWS)
REQUEST_KINDS = READ_KINDS + WRITE_KINDS


def canonical_encode(value: Any) -> bytes:
    """The one byte-stable JSON encoding every comparison goes through."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=repr
    ).encode()


@dataclass(frozen=True)
class ServiceRequest:
    """One client request: a read (SQL) or a write (cell/row updates).

    ``client`` scopes session state (each client maps to one long-lived
    session in both the concurrent service and the serial oracle);
    ``seq`` is the client's own submission counter, echoed back so a
    client can match responses to requests.
    """

    client: str
    seq: int
    kind: str
    sql: str | None = None
    params: tuple[Any, ...] = ()
    queries: tuple[str, ...] = ()
    table: str | None = None
    #: Cell updates as ``(tid, attr, value)`` triples (JSON has no tuple keys).
    cells: tuple[tuple[int, str, Any], ...] = ()
    #: Row replacements as ``(tid, (values...))`` pairs.
    rows: tuple[tuple[int, tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}; "
                f"expected one of {REQUEST_KINDS}"
            )
        if self.kind in WRITE_KINDS and not self.table:
            raise ValueError(f"{self.kind} requests need a table")
        if self.kind in (KIND_EXECUTE, KIND_PREPARED) and not self.sql:
            raise ValueError(f"{self.kind} requests need sql")
        if self.kind == KIND_BATCH and not self.queries:
            raise ValueError("batch requests need queries")

    def touched_tables(self) -> tuple[str, ...]:
        """Every table this request reads or writes, sorted.

        The admission scheduler takes one turnstile ticket per touched
        table, so this *is* the request's lock footprint.
        """
        if self.kind in WRITE_KINDS:
            assert self.table is not None
            return (self.table,)
        sqls = self.queries if self.kind == KIND_BATCH else (self.sql,)
        tables: set[str] = set()
        for sql in sqls:
            assert sql is not None
            tables.update(parse_sql(sql).tables)
        return tuple(sorted(tables))

    def cell_updates(self) -> dict[tuple[int, str], Any]:
        """The ``(tid, attr) -> value`` map ``update_table`` expects."""
        return {(tid, attr): value for tid, attr, value in self.cells}

    def row_updates(self) -> list[Row]:
        """The replacement :class:`~repro.relation.relation.Row` objects."""
        return [Row(tid, tuple(values)) for tid, values in self.rows]

    def to_wire(self) -> dict[str, Any]:
        return {
            "client": self.client,
            "seq": self.seq,
            "kind": self.kind,
            "sql": self.sql,
            "params": list(self.params),
            "queries": list(self.queries),
            "table": self.table,
            "cells": [[tid, attr, value] for tid, attr, value in self.cells],
            "rows": [[tid, list(values)] for tid, values in self.rows],
        }

    @classmethod
    def from_wire(cls, data: dict[str, Any]) -> ServiceRequest:
        return cls(
            client=str(data["client"]),
            seq=int(data["seq"]),
            kind=str(data["kind"]),
            sql=data.get("sql"),
            params=tuple(data.get("params") or ()),
            queries=tuple(data.get("queries") or ()),
            table=data.get("table"),
            cells=tuple(
                (int(tid), str(attr), value)
                for tid, attr, value in (data.get("cells") or ())
            ),
            rows=tuple(
                (int(tid), tuple(values))
                for tid, values in (data.get("rows") or ())
            ),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """One response, byte-comparable against the serial oracle's.

    ``admitted`` is the request's position in the global admission log
    (-1 for shed/rejected requests that never entered it); ``epochs``
    records, per touched table, the data epoch the request observed — the
    pinned snapshot epoch for reads, the post-commit epoch for writes.
    ``payload`` deliberately contains no wall-clock quantities.
    """

    client: str
    seq: int
    kind: str
    status: str  # "ok" | "error" | "shed"
    admitted: int
    epochs: tuple[tuple[str, int], ...] = ()
    payload: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_wire(self) -> dict[str, Any]:
        return {
            "client": self.client,
            "seq": self.seq,
            "kind": self.kind,
            "status": self.status,
            "admitted": self.admitted,
            "epochs": {table: epoch for table, epoch in self.epochs},
            "payload": self.payload,
        }

    def encode(self) -> bytes:
        """The canonical byte encoding the parity suite compares."""
        return canonical_encode(self.to_wire())
