"""Per-client request dispatch: one runner wraps one long-lived session.

The runner is the *shared* execution core of the service tier: the
concurrent workers (:mod:`repro.service.scheduler`) and the serial oracle
(:mod:`repro.service.oracle`) both drive requests through this exact
class, so any divergence between the two runs can only come from
scheduling — which is precisely what the parity suite is testing.

Reads pin an :class:`~repro.service.snapshot.EpochSnapshot` over their
touched tables before executing and verify it after; writes run under an
:class:`~repro.service.snapshot.EpochLease` (epoch compare-and-swap).
Every payload is wall-clock-free and deterministic, including error
payloads (``{"error": "ExcType: message"}``), so failed requests are
byte-comparable too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro._ownership import session_owned
from repro.service.requests import (
    KIND_BATCH,
    KIND_EXECUTE,
    KIND_PREPARED,
    KIND_UPDATE_ROWS,
    KIND_UPDATE_TABLE,
    ServiceRequest,
    ServiceResponse,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.prepared import PreparedQuery
    from repro.api.session import Session
    from repro.core.state import UpdateReport
    from repro.query.executor import QueryResult

__all__ = ["RequestRunner"]


def _rows_payload(result: QueryResult) -> list[list[Any]]:
    """Result rows as JSON-ready lists (plain values; PValues resolved)."""
    return [list(values) for values in result.relation.to_plain_rows()]


def _update_payload(report: UpdateReport) -> dict[str, Any]:
    return {
        "epoch": report.epoch,
        "cells_requested": report.cells_requested,
        "cells_applied": report.cells_applied,
        "attrs_touched": sorted(report.attrs_touched),
        "rules_invalidated": list(report.rules_invalidated),
        "stats_rebuilt": list(report.stats_rebuilt),
        "provenance_forgotten": report.provenance_forgotten,
    }


@session_owned
class RequestRunner:
    """Dispatch :class:`ServiceRequest` objects through one session.

    Owns the per-client prepared-statement cache (keyed on SQL text) so a
    client's repeated ``prepared`` requests reuse one plan — in the
    concurrent service *and* in the oracle, identically.
    """

    def __init__(self, session: Session) -> None:
        self.session = session
        self._prepared: dict[str, PreparedQuery] = {}

    def run(self, request: ServiceRequest, admitted: int) -> ServiceResponse:
        """Execute one request; never raises — errors become responses."""
        try:
            payload, epochs = self._dispatch(request)
            status = "ok"
        except Exception as exc:  # daisylint: disable=DL005
            # Deliberate breadth: the service boundary converts *every*
            # engine exception into a deterministic error response — the
            # type and message are part of the byte-compared payload, so
            # nothing is hidden, and one bad request must never take the
            # worker thread (and its client's whole queue) down.
            payload = {"error": f"{type(exc).__name__}: {exc}"}
            epochs = {}
            status = "error"
        return ServiceResponse(
            client=request.client,
            seq=request.seq,
            kind=request.kind,
            status=status,
            admitted=admitted,
            epochs=tuple(sorted(epochs.items())),
            payload=payload,
        )

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(
        self, request: ServiceRequest
    ) -> tuple[dict[str, Any], dict[str, int]]:
        if request.kind == KIND_EXECUTE:
            return self._run_execute(request)
        if request.kind == KIND_PREPARED:
            return self._run_prepared(request)
        if request.kind == KIND_BATCH:
            return self._run_batch(request)
        if request.kind == KIND_UPDATE_TABLE:
            return self._run_update(request, rows=False)
        if request.kind == KIND_UPDATE_ROWS:
            return self._run_update(request, rows=True)
        raise ValueError(f"unknown request kind {request.kind!r}")

    def _read_payload(self, result: QueryResult) -> dict[str, Any]:
        entry = self.session.query_log[-1]
        return {
            "rows": _rows_payload(result),
            "result_size": len(result),
            "work_units": entry.work_units,
            "errors_fixed": entry.errors_fixed,
            "extra_tuples": entry.extra_tuples,
            "switched_to_full": entry.switched_to_full,
        }

    def _run_execute(
        self, request: ServiceRequest
    ) -> tuple[dict[str, Any], dict[str, int]]:
        assert request.sql is not None
        snap = self.session.snapshot(*request.touched_tables())
        result = self.session.execute(request.sql)
        snap.verify()
        return self._read_payload(result), snap.epochs()

    def _run_prepared(
        self, request: ServiceRequest
    ) -> tuple[dict[str, Any], dict[str, int]]:
        assert request.sql is not None
        prepared = self._prepared.get(request.sql)
        if prepared is None:
            prepared = self.session.prepare(request.sql)
            self._prepared[request.sql] = prepared
        snap = self.session.snapshot(*request.touched_tables())
        result = prepared.execute(*request.params)
        snap.verify()
        return self._read_payload(result), snap.epochs()

    def _run_batch(
        self, request: ServiceRequest
    ) -> tuple[dict[str, Any], dict[str, int]]:
        snap = self.session.snapshot(*request.touched_tables())
        batch = self.session.execute_batch(list(request.queries))
        snap.verify()
        payload = {
            "results": [
                {"rows": _rows_payload(result), "result_size": len(result)}
                for result in batch.results
            ],
            "work_units": batch.report.total_work_units,
            "member_work_units": [
                entry.work_units for entry in batch.report.entries
            ],
            "groups": len(batch.groups),
        }
        return payload, snap.epochs()

    def _run_update(
        self, request: ServiceRequest, rows: bool
    ) -> tuple[dict[str, Any], dict[str, int]]:
        assert request.table is not None
        lease = self.session.epoch_lease(request.table)
        if rows:
            report = self.session.update_rows(
                request.table, request.row_updates(), lease=lease
            )
        else:
            report = self.session.update_table(
                request.table, request.cell_updates(), lease=lease
            )
        return _update_payload(report), {request.table: report.epoch}
