"""The concurrent service scheduler: admission, turnstiles, client workers.

One :class:`DaisyService` multiplexes many clients over one shared
:class:`~repro.daisy.Daisy` engine.  The threading model is built around a
single fact about this engine: **reads mutate** (incremental cleaning
writes ``seen_tids``, repairs cells, replaces relations), so two requests
touching the same table can never overlap — but requests on disjoint
tables can, and that is where the concurrency lives.

Three thread roles:

* the **scheduler thread** (one): owns every admission decision.  It
  drains a FIFO inbox of ``submit`` / ``complete`` / ``stop`` messages,
  prices each pending request through the service-level
  :class:`~repro.core.costmodel.AdaptivePlanner` (``choose_admission``),
  and on admit assigns the request its global admission index plus one
  turnstile ticket per touched table.  Because the planner is
  ``@session_owned``, funnelling every ``PassDecision`` write through
  this one thread is exactly its ownership contract.
* **client worker threads** (one per client): each constructs its own
  :class:`~repro.api.Session` + :class:`~repro.service.runner.RequestRunner`
  *inside* ``run()`` (so the session's single-writer ownership holds by
  construction), then processes its client's admitted requests in
  admission order: wait on every table ticket, execute, advance the
  turnstiles, report completion.
* callers: ``submit()`` returns a ``concurrent.futures.Future`` resolved
  with the :class:`~repro.service.requests.ServiceResponse`.

**Why this cannot deadlock.**  Tickets on every table are issued in
global admission order, and a client's requests are admitted in its own
submission order.  Consider the earliest-admitted uncompleted request R:
every smaller ticket on each of R's tables belongs to an earlier-admitted
request (all completed), so R's turnstiles are open; and every
earlier-admitted request of R's client is completed, so R is at its
worker's queue head.  R can always run — global progress follows by
induction.

**Why concurrent equals serial.**  Per-table engine state mutates in
admission order (turnstiles); per-client session state mutates in client
submission order, which is a subsequence of admission order.  Hence
replaying the admission log serially — one persistent session per client,
requests in admission order (:func:`repro.service.oracle.replay_serial`)
— performs the identical sequence of state transitions, and every
response is byte-identical.  ``policy.mode == "global-lock"`` collapses
all tickets onto one turnstile (full serialization): the naive baseline
the benchmark compares against.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass, field

from repro._ownership import session_owned, shared_engine_state
from repro.core.costmodel import AdaptivePlanner, PassDecision
from repro.detection.maintenance import visibility_of
from repro.service.requests import ServiceRequest, ServiceResponse
from repro.service.runner import RequestRunner

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.config import DaisyConfig
    from repro.daisy import Daisy

__all__ = ["DaisyService", "ServicePolicy", "TableTurnstile"]

#: Scheduling modes: per-table turnstiles (concurrent reads on disjoint
#: tables) or one global turnstile (the naive fully-serialized baseline).
MODE_PER_TABLE = "per-table"
MODE_GLOBAL_LOCK = "global-lock"
_GLOBAL_KEY = "__global__"


@dataclass(frozen=True)
class ServicePolicy:
    """Admission and scheduling knobs of one :class:`DaisyService`.

    ``budget_units <= 0`` disables admission control (every request
    admits immediately, in submission order — what the parity suite
    runs under).  With a positive budget, the scheduler keeps the total
    *calibrated* work-unit estimate of in-flight requests at or under the
    budget: over-budget requests are delayed at the queue head (FIFO
    order is never reordered), and a request whose own estimate exceeds
    the whole budget is shed outright.
    """

    mode: str = MODE_PER_TABLE
    budget_units: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in (MODE_PER_TABLE, MODE_GLOBAL_LOCK):
            raise ValueError(
                f"unknown service mode {self.mode!r}; expected "
                f"{MODE_PER_TABLE!r} or {MODE_GLOBAL_LOCK!r}"
            )


@shared_engine_state
class TableTurnstile:
    """FIFO ticket lock for one table: tickets run strictly in issue order.

    The scheduler thread issues tickets (in global admission order);
    worker threads wait for their ticket and advance when done.  Shared
    across every worker, hence ``@shared_engine_state`` with both counters
    seam-declared; the condition variable serializes the actual writes.
    """

    MUTATED_UNDER = {
        "issued": ("TableTurnstile.issue",),
        "serving": ("TableTurnstile.advance",),
    }

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self.issued = 0
        self.serving = 0

    def issue(self) -> int:
        """Hand out the next ticket (scheduler thread only)."""
        with self._cond:
            ticket = self.issued
            self.issued = ticket + 1
            return ticket

    def wait_for(self, ticket: int) -> None:
        """Block until ``ticket`` is being served."""
        with self._cond:
            self._cond.wait_for(lambda: self.serving >= ticket)

    def advance(self) -> None:
        """Finish the current ticket and wake the next holder."""
        with self._cond:
            self.serving = self.serving + 1
            self._cond.notify_all()


@session_owned
@dataclass
class _WorkItem:
    """One admitted request in flight, scheduler -> worker."""

    request: ServiceRequest
    future: "Future[ServiceResponse]"
    admitted: int
    #: (turnstile, ticket) pairs in sorted-table order, tickets issued in
    #: admission order; one entry per *distinct* turnstile (in global-lock
    #: mode every table collapses onto one, which must be ticketed once).
    tickets: list[tuple[TableTurnstile, int]] = field(default_factory=list)
    decision: PassDecision | None = None
    estimate: float = 0.0


@session_owned
class _ClientWorker:
    """One client's executor thread: a session, a runner, a FIFO queue.

    The session and runner are constructed *inside* :meth:`_run`, on the
    worker thread itself, so every post-construction write to session
    state comes from the one thread that owns it — the
    ``@session_owned`` contract holds by construction, witnessed at
    runtime when diagnostics are on.
    """

    def __init__(self, service: "DaisyService", client: str) -> None:
        self._service = service
        self.client = client
        self._queue: "queue.Queue[_WorkItem | None]" = queue.Queue()
        self._thread = threading.Thread(
            target=self._run, name=f"daisy-service-{client}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def enqueue(self, item: "_WorkItem | None") -> None:
        self._queue.put(item)

    def join(self) -> None:
        self._thread.join()

    def _run(self) -> None:
        session = self._service.engine.connect(self._service.session_config)
        runner = RequestRunner(session)
        try:
            while True:
                item = self._queue.get()
                if item is None:
                    return
                self._execute(runner, item)
        finally:
            session.close()

    def _execute(self, runner: RequestRunner, item: _WorkItem) -> None:
        states = self._service.engine.states
        tables = [
            t for t in item.request.touched_tables() if t in states
        ]
        for turnstile, ticket in item.tickets:
            turnstile.wait_for(ticket)
        try:
            before = {t: states[t].counter.total() for t in tables}
            response = runner.run(item.request, item.admitted)
            units = float(
                sum(states[t].counter.total() - before[t] for t in tables)
            )
        finally:
            for turnstile, _ticket in item.tickets:
                turnstile.advance()
        # Completion must be enqueued *before* the future resolves: a
        # caller that saw every future done and then calls stop() is
        # guaranteed its "stop" lands behind every completion in the
        # scheduler's FIFO inbox.
        self._service.post_completion(item, units)
        item.future.set_result(response)


@shared_engine_state
class DaisyService:
    """The concurrent multi-session front end over one shared engine.

    Usable as a context manager::

        service = DaisyService(engine)
        with service:
            future = service.submit(request)
            response = future.result()

    One instance is shared by every submitting thread plus its own
    scheduler and worker threads, hence ``@shared_engine_state``: every
    mutable attribute below names the scheduler-side seams allowed to
    write it.  All seams except ``start``/``stop`` (caller thread, before
    and after the scheduler runs) execute on the scheduler thread.
    """

    MUTATED_UNDER = {
        "queued_units": ("DaisyService._launch", "DaisyService._complete"),
        "admission_log": ("DaisyService._launch",),
        "shed_log": ("DaisyService._drain", "DaisyService._reject_pending"),
        "_pending": (
            "DaisyService._enqueue",
            "DaisyService._drain",
            "DaisyService._reject_pending",
        ),
        "_workers": ("DaisyService._worker",),
        "_turnstiles": ("DaisyService._turnstile",),
        "_started": ("DaisyService.start", "DaisyService.stop"),
        "_thread": ("DaisyService.start",),
    }

    def __init__(
        self,
        engine: "Daisy",
        policy: ServicePolicy | None = None,
        session_config: "DaisyConfig | None" = None,
    ) -> None:
        self.engine = engine
        self.policy = policy if policy is not None else ServicePolicy()
        self.session_config = session_config
        #: The service-level planner pricing admission; owned by the
        #: scheduler thread (every post-init write happens there).
        self.planner = AdaptivePlanner()
        #: Requests admitted so far, in admission order — the exact log
        #: the serial oracle replays.
        self.admission_log: list[ServiceRequest] = []
        #: Requests shed (or rejected at shutdown), in decision order.
        self.shed_log: list[ServiceRequest] = []
        #: Calibrated work-unit estimate of admitted-but-uncompleted work.
        self.queued_units = 0.0
        self._inbox: "queue.Queue[tuple[Any, ...]]" = queue.Queue()
        self._pending: "list[tuple[ServiceRequest, Future[ServiceResponse]]]" = []
        self._workers: dict[str, _ClientWorker] = {}
        self._turnstiles: dict[str, TableTurnstile] = {}
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "DaisyService":
        self.start()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.stop()
        return False

    def start(self) -> None:
        """Start the scheduler thread (idempotent)."""
        if self._started:
            return
        self._thread = threading.Thread(
            target=self._run, name="daisy-service-scheduler", daemon=True
        )
        self._started = True
        self._thread.start()

    def stop(self) -> None:
        """Drain and stop: scheduler first, then every client worker.

        Callers that wait for all submitted futures before stopping get a
        clean drain — completions are enqueued before futures resolve, so
        the ``stop`` message lands behind them.  Requests still pending
        (delayed past shutdown) resolve as ``status="shed"``.
        """
        if not self._started:
            return
        self._inbox.put(("stop",))
        self._thread.join()
        for client in sorted(self._workers):
            self._workers[client].enqueue(None)
        for client in sorted(self._workers):
            self._workers[client].join()
        self._started = False

    # -- submission (any thread) ---------------------------------------------------

    def submit(self, request: ServiceRequest) -> "Future[ServiceResponse]":
        """Enqueue one request; the future resolves with its response."""
        future: "Future[ServiceResponse]" = Future()
        self._inbox.put(("submit", request, future))
        return future

    def post_completion(self, item: _WorkItem, units: float) -> None:
        """Worker-side: report one finished request to the scheduler."""
        self._inbox.put(("complete", item, units))

    # -- scheduler thread ----------------------------------------------------------

    def _run(self) -> None:
        while True:
            message = self._inbox.get()
            kind = message[0]
            if kind == "submit":
                self._enqueue(message[1], message[2])
            elif kind == "complete":
                self._complete(message[1], message[2])
            elif kind == "stop":
                self._reject_pending()
                return
            self._drain()

    def _enqueue(
        self, request: ServiceRequest, future: "Future[ServiceResponse]"
    ) -> None:
        self._pending.append((request, future))

    def _complete(self, item: _WorkItem, units: float) -> None:
        self.queued_units = max(0.0, self.queued_units - item.estimate)
        if item.decision is not None:
            self.planner.observe(item.decision, units)

    def _estimate_units(self, request: ServiceRequest) -> float:
        """The request's raw work estimate: rows touched (reads scale with
        scope; updates with invalidation over the same table)."""
        states = self.engine.states
        rows = sum(
            len(states[t].relation.rows)
            for t in request.touched_tables()
            if t in states
        )
        multiplier = len(request.queries) if request.queries else 1
        return float(max(1, rows) * multiplier)

    def _drain(self) -> None:
        """Admit from the queue head, strictly FIFO.

        A delayed head blocks everything behind it (order is part of the
        parity contract); it is re-priced once per subsequent inbox
        message, so completions steadily open the budget.
        """
        while self._pending:
            request, future = self._pending[0]
            decision = self.planner.choose_admission(
                table=",".join(request.touched_tables()) or "-",
                raw_units=self._estimate_units(request),
                queued_units=self.queued_units,
                budget_units=self.policy.budget_units,
            )
            if decision.choice == "delay":
                return
            del self._pending[0]
            if decision.choice == "shed":
                self.shed_log.append(request)
                future.set_result(self._shed_response(request))
                continue
            self._launch(request, future, decision)

    def _shed_response(self, request: ServiceRequest) -> ServiceResponse:
        return ServiceResponse(
            client=request.client,
            seq=request.seq,
            kind=request.kind,
            status="shed",
            admitted=-1,
            payload={"error": "request shed by admission control"},
        )

    def _launch(
        self,
        request: ServiceRequest,
        future: "Future[ServiceResponse]",
        decision: PassDecision,
    ) -> None:
        admitted = len(self.admission_log)
        self.admission_log.append(request)
        item = _WorkItem(
            request=request,
            future=future,
            admitted=admitted,
            decision=decision,
            estimate=decision.estimated_cost - self.queued_units,
        )
        ticketed: set[int] = set()
        for table in request.touched_tables():
            turnstile = self._turnstile(table)
            if id(turnstile) not in ticketed:
                ticketed.add(id(turnstile))
                item.tickets.append((turnstile, turnstile.issue()))
        self.queued_units = decision.estimated_cost
        self._worker(request.client).enqueue(item)

    def _reject_pending(self) -> None:
        """Resolve still-pending futures at shutdown (as shed)."""
        for request, future in self._pending:
            self.shed_log.append(request)
            future.set_result(self._shed_response(request))
        del self._pending[:]

    def _turnstile(self, table: str) -> TableTurnstile:
        key = _GLOBAL_KEY if self.policy.mode == MODE_GLOBAL_LOCK else table
        turnstile = self._turnstiles.get(key)
        if turnstile is None:
            turnstile = TableTurnstile()
            self._turnstiles[key] = turnstile
        return turnstile

    def _worker(self, client: str) -> _ClientWorker:
        worker = self._workers.get(client)
        if worker is None:
            worker = _ClientWorker(self, client)
            self._workers[client] = worker
            worker.start()
        return worker

    # -- introspection (any thread; reads only) --------------------------------------

    def status(self) -> dict[str, Any]:
        """A JSON-ready status surface: epochs, visibility, admission."""
        tables = {}
        for name in sorted(self.engine.states):
            visibility = visibility_of(self.engine.states[name])
            tables[name] = {
                "data_epoch": visibility.data_epoch,
                "min_matrix_epoch": visibility.min_matrix_epoch,
                "pending_batches": visibility.pending_batches,
                "fully_synced": visibility.fully_synced,
            }
        return {
            "mode": self.policy.mode,
            "budget_units": self.policy.budget_units,
            "queued_units": self.queued_units,
            "admitted": len(self.admission_log),
            "shed": len(self.shed_log),
            "clients": sorted(self._workers),
            "tables": tables,
        }
