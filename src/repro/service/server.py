"""A stdlib-asyncio HTTP/JSON front end over :class:`DaisyService`.

Deliberately thin: a hand-rolled HTTP/1.1 parser over
``asyncio.start_server`` (no new dependencies), two endpoints, one wire
format (:mod:`repro.service.requests`):

* ``POST /v1/requests`` — body is one ``ServiceRequest.to_wire()`` JSON
  object; the connection waits until the scheduler resolves the request
  and answers with the canonical ``ServiceResponse`` encoding (the same
  bytes the parity suite compares).
* ``GET /v1/status`` — the service's status surface: per-table epochs and
  matrix visibility, admission counters, queue pressure.

The event loop never blocks on the engine: ``DaisyService.submit``
returns a ``concurrent.futures.Future`` resolved by the worker threads,
bridged with ``asyncio.wrap_future`` so thousands of in-flight requests
multiplex over one loop thread.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.requests import ServiceRequest, canonical_encode
from repro.service.scheduler import DaisyService

__all__ = ["ServiceServer"]

_MAX_BODY_BYTES = 16 * 1024 * 1024


def _http_response(status: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode() + body


def _error_body(message: str) -> bytes:
    return canonical_encode({"error": message})


class ServiceServer:
    """Serve one :class:`DaisyService` over HTTP on ``host:port``.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the bound
    address.  The server owns neither the service nor the engine — stop
    the server first, then the service, then close the engine.
    """

    def __init__(
        self, service: DaisyService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.port = sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            response = await self._respond(reader)
        except Exception as exc:  # daisylint: disable=DL005
            # Deliberate breadth: a malformed connection must answer 500
            # (with the exception surfaced in the body) rather than kill
            # the acceptor loop; engine invariants are enforced below the
            # service boundary, not by crashing the socket handler.
            response = _http_response(
                "500 Internal Server Error",
                _error_body(f"{type(exc).__name__}: {exc}"),
            )
        try:
            writer.write(response)
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader: asyncio.StreamReader) -> bytes:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return _http_response("400 Bad Request", _error_body("empty request"))
        parts = request_line.split()
        if len(parts) != 3:
            return _http_response(
                "400 Bad Request", _error_body(f"malformed request line {request_line!r}")
            )
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return _http_response(
                "413 Payload Too Large", _error_body("request body too large")
            )
        body = await reader.readexactly(length) if length else b""

        if method == "POST" and path == "/v1/requests":
            return await self._handle_request(body)
        if method == "GET" and path == "/v1/status":
            return _http_response("200 OK", canonical_encode(self.service.status()))
        return _http_response(
            "404 Not Found", _error_body(f"no route for {method} {path}")
        )

    async def _handle_request(self, body: bytes) -> bytes:
        try:
            data: Any = json.loads(body.decode())
            request = ServiceRequest.from_wire(data)
        except (ValueError, KeyError, TypeError) as exc:
            return _http_response(
                "400 Bad Request", _error_body(f"{type(exc).__name__}: {exc}")
            )
        future = self.service.submit(request)
        response = await asyncio.wrap_future(future)
        status = "200 OK" if response.status != "shed" else "429 Too Many Requests"
        return _http_response(status, response.encode())
