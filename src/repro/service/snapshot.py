"""Snapshot pins and epoch leases: the service tier's isolation primitives.

The concurrency regime of the Daisy engine is unusual: *reads mutate*.  A
query's incremental cleaning repairs cells, replaces the relation object,
and advances storage stripe generations — all **without** moving the
table's ``data_epoch``.  The epoch moves only when the external world
does, through :meth:`~repro.core.state.TableState.apply_updates`.  So the
unit of isolation a concurrent reader can actually be pinned to is the
**data epoch**, not object identity:

* :class:`SnapshotHandle` pins one table at pin time — data epoch, patch
  log length, per-attribute storage stripe generations, and the
  ``write_in_progress`` torn-read marker.  :meth:`SnapshotHandle.verify`
  re-checks the pin after the read ran: the epoch must not have moved, no
  update may be mid-flight, and stripe generations must never have
  *decreased* (they advance under the read's own repairs, which is fine;
  going backwards would mean the reader resolved columns against stripes
  older than its pin).
* :class:`EpochSnapshot` bundles one handle per touched table for
  multi-table reads (joins, batches).
* :class:`EpochLease` is the write-path counterpart: an epoch
  compare-and-swap.  A writer acquires the lease at the current epoch;
  :meth:`EpochLease.check` fails if any other writer moved the epoch
  since (the single-writer-per-table discipline was violated), and
  :meth:`EpochLease.commit` verifies the update landed exactly one epoch
  ahead of the acquisition point.

All three are frozen after construction (``@immutable_after_init``): a
pin that could be edited after the fact would prove nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro._ownership import immutable_after_init
from repro.errors import IsolationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.state import TableState, UpdateReport
    from repro.storage.provider import TableStorage

__all__ = [
    "EpochCasError",
    "EpochLease",
    "EpochSnapshot",
    "IsolationError",
    "SnapshotHandle",
    "SnapshotViolation",
]


class SnapshotViolation(IsolationError):
    """A snapshot-pinned read observed state outside its pinned epoch."""


class EpochCasError(IsolationError):
    """An epoch compare-and-swap failed: another writer interleaved."""


@immutable_after_init
class SnapshotHandle:
    """One table's isolation pin: epoch + patch-log length + generations.

    Construction *is* the pin: it refuses to pin a table that is mid-
    ``apply_updates`` (the torn-read marker is set), then captures the
    quantities :meth:`verify` re-checks.  The handle keeps a reference to
    the live :class:`~repro.core.state.TableState` purely to re-read it at
    verify time — it never writes through it.
    """

    def __init__(self, table: str, state: TableState, storage: TableStorage | None) -> None:
        if state.write_in_progress:
            raise SnapshotViolation(
                f"cannot pin table {table!r}: an external update is mid-flight "
                "(write_in_progress is set)"
            )
        self.table = table
        self._state = state
        self._storage = storage
        self.data_epoch = state.data_epoch
        self.patch_count = len(state.patch_log)
        self.generations: dict[str, int] = (
            storage.generation_snapshot() if storage is not None else {}
        )

    def verify(self) -> None:
        """Re-check the pin after the read ran; raise on any torn read.

        The read's *own* cleaning legally replaced the relation and
        advanced stripe generations — neither moves the data epoch, so the
        checks are: marker clear, epoch unchanged, patch log not shorter
        (trim only ever removes *synced* prefixes at the same epoch), and
        generations monotone non-decreasing (a decrease is time-travel).
        """
        state = self._state
        if state.write_in_progress:
            raise SnapshotViolation(
                f"torn read on table {self.table!r}: an external update was "
                "mid-flight while the snapshot was live"
            )
        if state.data_epoch != self.data_epoch:
            raise SnapshotViolation(
                f"snapshot of table {self.table!r} pinned epoch "
                f"{self.data_epoch} but the table is now at epoch "
                f"{state.data_epoch}"
            )
        if self._storage is not None:
            current = self._storage.generation_snapshot()
            for attr in sorted(self.generations):
                pinned = self.generations[attr]
                if current.get(attr, pinned) < pinned:
                    raise SnapshotViolation(
                        f"storage generation of {self.table!r}.{attr} went "
                        f"backwards ({self.generations[attr]} -> "
                        f"{current[attr]}): reader resolved stripes older "
                        "than its pin"
                    )


@immutable_after_init
class EpochSnapshot:
    """A consistent multi-table pin: one :class:`SnapshotHandle` per table."""

    def __init__(self, handles: dict[str, SnapshotHandle]) -> None:
        self.handles = dict(sorted(handles.items()))

    def epochs(self) -> dict[str, int]:
        """``table -> pinned data epoch`` for every table in the snapshot."""
        return {
            table: self.handles[table].data_epoch
            for table in sorted(self.handles)
        }

    def verify(self) -> None:
        """Verify every per-table pin (see :meth:`SnapshotHandle.verify`)."""
        for table in sorted(self.handles):
            self.handles[table].verify()


@immutable_after_init
class EpochLease:
    """An epoch compare-and-swap for one table's write path.

    ``acquire -> check -> apply -> commit``: the lease captures the data
    epoch at acquisition; :meth:`check` (called immediately before the
    update applies) fails if another writer moved the epoch since, and
    :meth:`commit` (called with the resulting
    :class:`~repro.core.state.UpdateReport`) fails unless the epoch
    advanced by exactly the applied batch — proof that no other writer
    interleaved anywhere inside the critical section.
    """

    def __init__(self, table: str, state: TableState) -> None:
        if state.write_in_progress:
            raise EpochCasError(
                f"cannot lease table {table!r}: another update is mid-flight"
            )
        self.table = table
        self._state = state
        self.acquired_epoch = state.data_epoch

    def check(self) -> None:
        """Fail unless the table is still at the acquisition epoch."""
        if self._state.write_in_progress:
            raise EpochCasError(
                f"epoch CAS failed for {self.table!r}: another update is "
                "mid-flight"
            )
        if self._state.data_epoch != self.acquired_epoch:
            raise EpochCasError(
                f"epoch CAS failed for {self.table!r}: leased epoch "
                f"{self.acquired_epoch} but the table moved to "
                f"{self._state.data_epoch}"
            )

    def commit(self, report: UpdateReport) -> None:
        """Verify the update landed exactly one batch past the lease."""
        expected = self.acquired_epoch + (1 if report.cells_applied else 0)
        if self._state.data_epoch != expected or report.epoch != expected:
            raise EpochCasError(
                f"epoch CAS commit failed for {self.table!r}: leased "
                f"{self.acquired_epoch}, expected {expected}, table is at "
                f"{self._state.data_epoch} (report epoch {report.epoch})"
            )
