"""Out-of-core storage layer: stripe spill, mmap read-back, SQL pushdown.

All engine I/O goes through this package (enforced by daisylint DL009):

* :mod:`repro.storage.stripefile` — the typed on-disk stripe format,
* :mod:`repro.storage.stripestore` — chunked spill + mmap reads + the LRU
  resident-column budget,
* :mod:`repro.storage.sqlitebackend` — filter / order-by / join-window
  pushdown for exactly-mirrorable columns,
* :mod:`repro.storage.provider` — the lazy columns dict behind
  :class:`~repro.relation.columnview.ColumnView` and the per-table facade,
* :mod:`repro.storage.manager` — the engine-owned registry that
  ``Session.close()`` uses to release every OS handle.
"""

from repro.storage.manager import StorageManager
from repro.storage.modes import (
    STORAGE_AUTO,
    STORAGE_MEMORY,
    STORAGE_MMAP,
    STORAGE_MODES,
    STORAGE_SQLITE,
    validate_storage_mode,
)
from repro.storage.provider import StorageColumns, TableStorage
from repro.storage.sqlitebackend import SqliteBackend
from repro.storage.stripefile import (
    STRIPE_ROWS,
    StripeFormatError,
    decode_stripe,
    encode_stripe,
    infer_stripe_kind,
    stripe_kind,
)
from repro.storage.stripestore import (
    ResidencyTracker,
    StaleGenerationError,
    StripeStore,
)

__all__ = [
    "STORAGE_AUTO",
    "STORAGE_MEMORY",
    "STORAGE_MMAP",
    "STORAGE_MODES",
    "STORAGE_SQLITE",
    "STRIPE_ROWS",
    "ResidencyTracker",
    "SqliteBackend",
    "StaleGenerationError",
    "StorageColumns",
    "StorageManager",
    "StripeFormatError",
    "StripeStore",
    "TableStorage",
    "decode_stripe",
    "encode_stripe",
    "infer_stripe_kind",
    "stripe_kind",
    "validate_storage_mode",
]
