"""Engine-owned registry of per-table storage, with handle accounting.

One :class:`StorageManager` lives on the :class:`~repro.daisy.Daisy`
engine.  It lazily creates a temp spill root on first use, hands out one
:class:`~repro.storage.provider.TableStorage` per registered table (with
a deterministic ``t<slot>`` directory name — never the raw table name,
never ``hash()``), and is the single place ``Session.close()`` and the
leak-check fixture go to release or count OS handles.
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro._ownership import shared_engine_state
from repro.storage.provider import TableStorage
from repro.storage.stripefile import STRIPE_ROWS


@shared_engine_state
class StorageManager:
    """All spilled state of one engine: spill root + per-table storage.

    One per :class:`~repro.daisy.Daisy`; the spill root materializes
    lazily on first use, per-table facades are created under the engine's
    registration/storage seams, and :meth:`close` tears everything down.
    """

    MUTATED_UNDER = {
        "_root": ("StorageManager.root", "StorageManager.close"),
        "_closed": ("StorageManager.root", "StorageManager.close"),
        "_tables": ("StorageManager.table_storage", "StorageManager.close"),
    }

    def __init__(self, chunk_rows: int = STRIPE_ROWS) -> None:
        self._root: Path | None = None
        self._tables: dict[str, TableStorage] = {}
        self._chunk_rows = chunk_rows
        self._closed = False

    @property
    def root(self) -> Path:
        if self._root is None:
            self._root = Path(tempfile.mkdtemp(prefix="daisy-storage-"))
            self._closed = False
        return self._root

    def table_storage(
        self, table: str, mode: str, memory_budget_mb: int = 0
    ) -> TableStorage:
        """The (created-on-demand) storage facade for one table."""
        existing = self._tables.get(table)
        if existing is not None:
            return existing
        slot = len(self._tables)
        storage = TableStorage(
            table,
            self.root / f"t{slot}",
            mode,
            memory_budget_mb=memory_budget_mb,
            chunk_rows=self._chunk_rows,
        )
        self._tables[table] = storage
        return storage

    def get(self, table: str) -> "TableStorage | None":
        return self._tables.get(table)

    def tables(self) -> "list[TableStorage]":
        return list(self._tables.values())

    # -- handle accounting ---------------------------------------------------------

    def release_handles(self) -> None:
        """Close every OS handle engine-wide (reopened lazily on next use)."""
        for storage in self._tables.values():
            storage.release_handles()

    def open_handle_count(self) -> int:
        """Open fds/connections across all tables (0 after release)."""
        return sum(s.open_handle_count() for s in self._tables.values())

    def spill_root_exists(self) -> bool:
        return self._root is not None and self._root.exists()

    def close(self) -> None:
        """Release all handles and delete the whole spill root."""
        for storage in self._tables.values():
            storage.close()
        self._tables.clear()
        if self._root is not None:
            shutil.rmtree(self._root, ignore_errors=True)
            self._root = None
        self._closed = True
