"""Storage-mode constants shared by the storage layer and the engine API.

Kept in a leaf module (no engine imports) so ``repro.api.config`` and the
storage backends can both import the vocabulary without cycles — the same
layering as ``repro.relation.kernels``' column-backend constants.
"""

from __future__ import annotations

#: Everything stays RAM-resident (the historical behaviour; the oracle).
STORAGE_MEMORY = "memory"
#: Columns spill to on-disk stripe chunks, memory-mapped back on demand
#: under an LRU resident budget.
STORAGE_MMAP = "mmap"
#: Stripe spill *plus* a SQLite mirror serving filter / order-by /
#: join-window pushdown for exactly-mirrorable columns.
STORAGE_SQLITE = "sqlite"
#: Let the adaptive planner price and pin one of the concrete modes.
STORAGE_AUTO = "auto"

#: The concrete (pinnable) modes.
STORAGE_MODES = (STORAGE_MEMORY, STORAGE_MMAP, STORAGE_SQLITE)


def validate_storage_mode(name: str) -> str:
    """Validate a ``DaisyConfig.storage`` value (``auto`` allowed)."""
    if name not in STORAGE_MODES and name != STORAGE_AUTO:
        raise ValueError(
            f"unknown storage mode {name!r}; expected one of "
            f"{STORAGE_MODES + (STORAGE_AUTO,)}"
        )
    return name


#: Modeled resident cost of one cell kept in a Python list (list slot +
#: the small-object overhead the LRU budget is protecting against).
CELL_BYTES = 56


def storage_fits_budget(n_rows: int, n_cols: int, memory_budget_mb: int) -> bool:
    """Whether a fully resident table fits the configured budget."""
    if memory_budget_mb <= 0:
        return True
    return n_rows * n_cols * CELL_BYTES <= memory_budget_mb * 1024 * 1024


def resolve_storage_mode(
    mode: str,
    n_rows: int,
    n_cols: int,
    memory_budget_mb: int,
    theta_rules: bool = False,
) -> str:
    """Statically resolve ``auto`` to a concrete mode.

    The uncalibrated twin of the planner's ``choose_storage`` pricing (and
    the fallback when no session has connected to pin the knob): a table
    that fits the budget stays in memory; one that does not spills.  The
    SQLite mirror only goes on for tables carrying general denial
    constraints (``theta_rules``) — its pushdown surfaces (order-by for
    the theta-join rebuild sort, indexed BETWEEN candidate windows) fire
    nowhere else, and on an FD-only table the mirror would charge an
    UPDATE round-trip per repair patch for nothing.  The adaptive pin
    prices the same alternatives with calibration; every mode is
    byte-identical in results.
    """
    validate_storage_mode(mode)
    if mode != STORAGE_AUTO:
        return mode
    if storage_fits_budget(n_rows, n_cols, memory_budget_mb):
        return STORAGE_MEMORY
    return STORAGE_SQLITE if theta_rules else STORAGE_MMAP
