"""Storage-backed column provider: a lazy columns dict behind ``ColumnView``.

:class:`StorageColumns` is the seam between the columnar engine and the
storage layer: a ``dict`` subclass that looks exactly like the plain
``{attr: [cells]}`` mapping a :class:`~repro.relation.columnview.ColumnView`
carries, but materializes columns **on first access** from the table's
:class:`~repro.storage.stripestore.StripeStore` and registers them with the
store's LRU residency tracker, which may later evict them (delete the key)
so the next access reloads from disk.  Iteration order is pinned to the
schema order regardless of materialization order, preserving the engine's
dict-insertion-order parity discipline.

:class:`TableStorage` is the per-table facade: it owns the stripe store
(and, in ``sqlite`` mode, the pushdown mirror), attaches itself to a view
by swapping the columns dict and subscribing to the patch stream, and on
every patch — data, repair, *and* resolve origins alike — rewrites only
the touched stripe chunks and updates the SQLite mirror, bumping the
column generation so stale snapshots are refused rather than served new
bytes.  That keeps spilled state consistent with PR 4's epoch-stamped
patch stream without ever rewriting a whole column.
"""

from __future__ import annotations

import os
import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro._ownership import shared_engine_state
from repro.storage.modes import STORAGE_SQLITE
from repro.storage.sqlitebackend import SqliteBackend
from repro.storage.stripefile import STRIPE_ROWS
from repro.storage.stripestore import StripeStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relation.columnview import ColumnView, PatchBatch


@shared_engine_state
class StorageColumns(dict):  # type: ignore[type-arg]
    """Lazy ``{attr: [cells]}`` mapping over a :class:`TableStorage`.

    Keys listed in ``order`` exist whether or not they are currently
    materialized; ``__missing__`` loads them from the stripe store pinned
    to the generation recorded at view-creation time, so an evict + reload
    can never time-travel a snapshot across a patch.

    The dict payload itself (materialize / evict) mutates via the dict
    protocol under the serialized storage passes; the two bookkeeping
    attributes below move only when a patched view adopts the mapping.
    """

    MUTATED_UNDER = {
        "order": ("StorageColumns.adopt", "StorageColumns.__setitem__"),
        "generations": ("StorageColumns.adopt",),
    }

    def __init__(
        self,
        provider: "TableStorage",
        order: "tuple[str, ...]",
        generations: dict[str, int],
        seed: "dict[str, list[Any]] | None" = None,
    ) -> None:
        super().__init__()
        self.provider = provider
        self.order = tuple(order)
        self.generations = dict(generations)
        if seed:
            for attr, values in seed.items():
                dict.__setitem__(self, attr, values)

    # -- lazy materialization ------------------------------------------------------

    def __missing__(self, attr: str) -> list[Any]:
        if attr not in self.generations:
            raise KeyError(attr)
        values = self.provider.load_column(attr, self.generations[attr])
        dict.__setitem__(self, attr, values)
        self.provider.note_resident(self, attr, values)
        return values

    def __getitem__(self, attr: str) -> list[Any]:
        if dict.__contains__(self, attr):
            self.provider.touch_resident(self, attr)
            return dict.__getitem__(self, attr)  # type: ignore[no-any-return]
        return self.__missing__(attr)

    def __setitem__(self, attr: str, values: list[Any]) -> None:
        # A direct assignment (a patched column) supersedes whatever the
        # tracker accounted for; the new object is pinned resident until
        # the patch listener re-registers it at its new generation.
        self.provider.forget_resident(self, attr)
        dict.__setitem__(self, attr, values)
        if attr not in self.order:
            self.order = self.order + (attr,)
            self.generations.setdefault(attr, -1)

    def adopt(self, attr: str, values: list[Any], generation: int) -> None:
        """Install a column as the store's current ``generation`` snapshot
        (evictable: the tracker may drop it and ``__missing__`` reload it).
        """
        self.provider.forget_resident(self, attr)
        dict.__setitem__(self, attr, values)
        self.generations[attr] = generation
        self.provider.note_resident(self, attr, values)

    # -- full-mapping façade over the lazy keys ------------------------------------
    # All loadable attrs are "present" whether or not materialized, and
    # iteration follows schema order — the engine's dict-insertion-order
    # parity contract.  (Deliberate LSP bends: views become lists.)

    def __contains__(self, attr: object) -> bool:
        return attr in self.generations

    def __iter__(self) -> Iterator[str]:
        return iter(self.order)

    def __len__(self) -> int:
        return len(self.order)

    def keys(self) -> "tuple[str, ...]":  # type: ignore[override]
        return self.order

    def values(self) -> "list[list[Any]]":  # type: ignore[override]
        return [self[attr] for attr in self.order]

    def items(self) -> "list[tuple[str, list[Any]]]":  # type: ignore[override]
        return [(attr, self[attr]) for attr in self.order]

    def get(self, attr: str, default: Any = None) -> Any:  # type: ignore[override]
        return self[attr] if attr in self.generations else default

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StorageColumns):
            other = other.materialized()
        if isinstance(other, dict):
            return self.materialized() == other
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def materialized(self) -> dict[str, list[Any]]:
        """The fully loaded plain-dict twin (schema order)."""
        return {attr: self[attr] for attr in self.order}

    def materialized_attrs(self) -> "list[str]":
        """The attrs currently resident (introspection for tests/benches)."""
        return [attr for attr in self.order if dict.__contains__(self, attr)]

    def is_resident(self, attr: str) -> bool:
        """Whether ``attr`` is currently materialized (no load triggered)."""
        return dict.__contains__(self, attr)

    def storage_copy(self) -> "StorageColumns":
        """The storage-aware analogue of ``dict(self.columns)`` for
        :meth:`ColumnView.patched`: shares materialized column objects and
        the provider; unmaterialized attrs stay lazy in the copy.
        """
        seed = {
            attr: dict.__getitem__(self, attr)
            for attr in self.order
            if dict.__contains__(self, attr)
        }
        clone = StorageColumns(self.provider, self.order, self.generations, seed)
        for attr, values in seed.items():
            self.provider.note_resident(clone, attr, values)
        return clone

    def copy(self) -> "StorageColumns":
        return self.storage_copy()

    def __reduce__(self) -> "tuple[Any, ...]":
        # Cross-process shipping (fork pool work units) materializes to a
        # plain dict: the child gets byte-identical columns without a
        # provider, and never touches the parent's handles.
        return (dict, (self.materialized(),))


@shared_engine_state
class TableStorage:
    """One table's storage facade: stripe store + optional SQLite mirror.

    Attach/detach swap a view's columns dict and the patch subscription;
    both run inside the serialized per-table passes that build or close
    views.  ``_fresh_sqlite`` re-opens the pushdown mirror after a fork
    (the child's inherited handle is unusable), stamping the new owner pid.
    """

    MUTATED_UNDER = {
        "attached": (
            "TableStorage.ensure_attached",
            "TableStorage.detach",
            "TableStorage.close",
        ),
        "_unsubscribe": ("TableStorage.ensure_attached", "TableStorage.detach"),
        "sqlite": ("TableStorage._fresh_sqlite",),
        "_owner_pid": ("TableStorage._fresh_sqlite",),
    }

    def __init__(
        self,
        table: str,
        root: Path,
        mode: str,
        memory_budget_mb: int = 0,
        chunk_rows: int = STRIPE_ROWS,
    ) -> None:
        self.table = table
        self.mode = mode
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.store = StripeStore(
            self.root / "stripes",
            memory_budget_mb=memory_budget_mb,
            chunk_rows=chunk_rows,
        )
        self.sqlite: SqliteBackend | None = (
            SqliteBackend(self.root / "pushdown.sqlite3")
            if mode == STORAGE_SQLITE
            else None
        )
        self.attached = False
        self._owner_pid = os.getpid()
        self._unsubscribe: "Any | None" = None

    # -- view attachment -----------------------------------------------------------

    def ensure_attached(self, view: "ColumnView") -> None:
        """Swap ``view.columns`` for a storage-backed dict (idempotent).

        A cold-rebuilt view (row churn) arrives with a plain dict and is
        re-spilled from scratch; a patched descendant already carries a
        :class:`StorageColumns` (via ``storage_copy``) and is left alone.
        """
        if isinstance(view.columns, StorageColumns):
            return
        plain = view.columns
        order = tuple(plain)
        for attr in order:
            self.store.put_column(attr, plain[attr])
        if self.sqlite is not None:
            self.sqlite.load_table(
                {attr: plain[attr] for attr in order}, generation=0
            )
        generations = {attr: self.store.generation(attr) for attr in order}
        columns = StorageColumns(self, order, generations)
        for attr in order:
            columns.adopt(attr, plain[attr], generations[attr])
        view.columns = columns
        self._unsubscribe = view.subscribe(self._on_patch)
        self.attached = True

    def _on_patch(self, view: "ColumnView", batch: "PatchBatch") -> None:
        # Every origin — data, repair, resolve — rewrites the touched
        # chunks: a repair that stayed only in RAM would be silently
        # undone by a later evict-then-reload.
        columns = view.columns
        sqlite_updates: dict[str, list[tuple[int, Any]]] = {}
        for attr, positions in batch.touched.items():
            column = columns[attr]
            self.store.rewrite_positions(attr, column, list(positions))
            generation = self.store.generation(attr)
            if isinstance(columns, StorageColumns):
                columns.adopt(attr, column, generation)
            if self.sqlite is not None:
                sqlite_updates[attr] = [(pos, column[pos]) for pos in positions]
        if self.sqlite is not None and sqlite_updates:
            self.sqlite.update_rows(sqlite_updates, batch.version)

    def generation_snapshot(self) -> dict[str, int]:
        """Per-attribute stripe generations at this instant, sorted by attr.

        The service tier pins this on snapshot creation: generations only
        ever advance (every rewrite bumps them), so a verify that sees a
        generation *decrease* has caught time-travel — a reader resolving
        against stripes older than its pin.
        """
        return {attr: self.store.generation(attr) for attr in sorted(self.store.attrs())}

    # -- provider protocol (StorageColumns callbacks) ------------------------------

    def load_column(self, attr: str, generation: "int | None") -> list[Any]:
        return self.store.load_column(attr, generation)

    def note_resident(
        self, owner: StorageColumns, attr: str, values: list[Any]
    ) -> None:
        self.store.tracker.note(owner, attr, values, self.store.column_bytes(attr))

    def touch_resident(self, owner: StorageColumns, attr: str) -> None:
        self.store.tracker.touch(owner, attr)

    def forget_resident(self, owner: StorageColumns, attr: str) -> None:
        self.store.tracker.forget(owner, attr)

    # -- pushdown surface (sqlite mode only; None = run the oracle path) -----------

    def pushdown_filter(
        self, attr: str, op: str, value: Any
    ) -> "list[int] | None":
        if self.sqlite is None or not self.attached:
            return None
        return self._fresh_sqlite().filter_positions(attr, op, value)

    def pushdown_sorted(self, attr: str) -> "tuple[list[Any], list[int]] | None":
        if self.sqlite is None or not self.attached:
            return None
        return self._fresh_sqlite().sorted_pairs(attr)

    def pushdown_window(
        self,
        attr: str,
        low: float,
        high: float,
        positions: "list[int] | None" = None,
    ) -> "list[int] | None":
        if self.sqlite is None or not self.attached:
            return None
        return self._fresh_sqlite().range_window(attr, low, high, positions)

    def _fresh_sqlite(self) -> SqliteBackend:
        # A forked worker must never use the parent's inherited connection
        # (shared fd, shared file offset): drop it and reopen in-process.
        assert self.sqlite is not None
        if os.getpid() != self._owner_pid:
            self.sqlite._conn = None
            self._owner_pid = os.getpid()
        return self.sqlite

    # -- lifecycle -----------------------------------------------------------------

    def detach(self, view: "ColumnView | None") -> None:
        """Undo the attachment before the spill files go away.

        Materializes the view's columns back into a plain RAM dict (so
        the table keeps working without the store) and unsubscribes the
        patch listener (so future patches stop writing to disk).
        """
        if view is not None and isinstance(view.columns, StorageColumns):
            if view.columns.provider is self:
                view.columns = view.columns.materialized()
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None
        self.attached = False

    def release_handles(self) -> None:
        """Close every OS handle (stripe reads are already transient)."""
        if self.sqlite is not None:
            self.sqlite.release_handles()

    def open_handle_count(self) -> int:
        count = self.store.open_fd_count()
        if self.sqlite is not None:
            count += self.sqlite.open_handle_count()
        return count

    def close(self) -> None:
        """Release handles and delete every spill file for this table."""
        if self.sqlite is not None:
            self.sqlite.close()
        self.store.close()
        shutil.rmtree(self.root, ignore_errors=True)
        self.attached = False
