"""SQLite pushdown backend: filters, order-by, and candidate windows in SQL.

The stripe store answers "give me the column back"; this backend answers
the *bounded* questions without materialising the column at all — the
DMR-XPath window-shrinking move, applied to Daisy's seams:

* **selection filters** (``WHERE attr op constant``) become indexed range
  scans returning only the matching row positions,
* **order-by** (sorted-index construction) becomes ``ORDER BY attr, pos``,
  reproducing the engine's stable ``(value, position)`` sort order,
* **inequality-join candidate windows** (the searchsorted bounds of the
  theta-join's driving predicate) become indexed ``BETWEEN`` scans
  returning candidate position sets.

Parity discipline (the PR 6 kernel-oracle contract): the backend only
serves attributes whose columns are **exactly mirrorable** in SQLite —
single-family ``int``/``float``/``str`` columns, no booleans, no
probabilistic cells, no NaN (SQLite binds NaN as NULL), no out-of-range
integers, and integer order-by additionally requires every value within
2^53 so the float-collapsed oracle sort cannot disagree with SQLite's
exact integer order.  Everything else falls back to the in-memory oracle
path.  Where it does serve, results are *membership- and order-identical*
to the oracle: SQLite's BINARY text collation is UTF-8 memcmp, which
equals Python's code-point order, and int/float cross-type comparisons
are exact in both systems.

The connection is opened lazily per table file and tracked so
``Session.close()`` can release every handle; the database file lives in
the table's spill directory and is deleted with it.
"""

from __future__ import annotations

from types import MappingProxyType

import math
import sqlite3
from pathlib import Path
from typing import Any, Iterable

from repro._ownership import shared_engine_state
from repro.storage.stripefile import (
    KIND_FLOAT64,
    KIND_INT64,
    KIND_STR,
    infer_stripe_kind,
)

#: Integer magnitude bound for order-by pushdown: the theta-join oracle
#: sorts by the float-collapsed value, so SQLite's exact integer order is
#: only guaranteed to agree while every value is exactly representable
#: as a float64 (mirrors ``repro.relation.kernels.MAX_EXACT_FLOAT_INT``).
MAX_EXACT_ORDER_INT = 2 ** 53

_SQL_TYPE = MappingProxyType(
    {KIND_INT64: "INTEGER", KIND_FLOAT64: "REAL", KIND_STR: "TEXT"}
)


def _pushable_kind(values: list[Any]) -> "int | None":
    """The SQLite-mirrorable kind of a column, or None if it declines.

    Stricter than the stripe encoder: float columns containing NaN
    decline (SQLite stores NaN as NULL, which would change membership).
    """
    kind = infer_stripe_kind(values)
    if kind not in _SQL_TYPE:
        return None
    if kind == KIND_FLOAT64 and any(
        v is not None and math.isnan(v) for v in values
    ):
        return None
    if kind == KIND_STR:
        # Lone surrogates cannot bind (sqlite3 encodes UTF-8 strictly).
        try:
            for v in values:
                if v is not None:
                    v.encode("utf-8")
        except UnicodeEncodeError:
            return None
    return kind


def probe_matches_kind(kind: int, value: Any) -> bool:
    """Can ``value`` be pushed as a probe against a ``kind`` column?

    Mirrors the oracle's comparison semantics: numeric probes (bool
    included — Python compares it as an int, SQLite binds it as one)
    compare with numeric columns, strings with text columns, and
    anything else (None, NaN, exotic types) falls back to the oracle.
    """
    if value is None:
        return False
    if isinstance(value, bool):
        return kind in (KIND_INT64, KIND_FLOAT64)
    if isinstance(value, int):
        if kind == KIND_INT64:
            # INTEGER vs INTEGER comparison is exact; the probe just has
            # to fit an int64 to bind at all.
            return -(2 ** 63) <= value < 2 ** 63
        return kind == KIND_FLOAT64 and (
            -MAX_EXACT_ORDER_INT <= value <= MAX_EXACT_ORDER_INT
        )
    if isinstance(value, float):
        return kind in (KIND_INT64, KIND_FLOAT64) and not math.isnan(value)
    if isinstance(value, str):
        return kind == KIND_STR
    return False


_OPS = frozenset(("<", "<=", ">", ">=", "="))


@shared_engine_state
class SqliteBackend:
    """One table's pushdown mirror: ``(pos, c0, c1, …)`` plus indexes.

    The mirror is (re)loaded and patched only inside the serialized
    storage passes; the connection handle opens lazily and is dropped by
    ``release_handles`` between sessions.  ``queries_served`` is an
    introspection tally charged by the pushdown query seams.
    """

    MUTATED_UNDER = {
        "_conn": ("SqliteBackend._connection", "SqliteBackend.release_handles"),
        "_attrs": ("SqliteBackend.load_table", "SqliteBackend.update_rows"),
        "_order_exact": ("SqliteBackend.load_table", "SqliteBackend.update_rows"),
        "_generation": ("SqliteBackend.load_table", "SqliteBackend.update_rows"),
        "_loaded": ("SqliteBackend.load_table",),
        "queries_served": (
            "SqliteBackend.filter_positions",
            "SqliteBackend.range_window",
            "SqliteBackend.sorted_pairs",
        ),
    }

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None
        #: attr -> (column slot, kind); attrs absent here are not pushable.
        self._attrs: dict[str, tuple[int, int]] = {}
        #: attr -> True when every non-null int is within 2^53 (order-by
        #: pushdown additionally requires it; filters do not).
        self._order_exact: dict[str, bool] = {}
        self._generation: dict[str, int] = {}
        self._loaded = False
        #: Monotonic pushdown counters for introspection/benchmarks.
        self.queries_served = 0

    # -- connection lifecycle ------------------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            # check_same_thread=False: the service tier's client workers
            # reach one table's mirror from different threads, strictly
            # serialized by the per-table turnstile (and sqlite3 compiled
            # at threadsafety level "serialized" locks internally anyway).
            # The default same-thread guard would reject that hand-off
            # outright even though accesses never overlap.
            self._conn = sqlite3.connect(
                str(self.path), check_same_thread=False
            )
            self._conn.execute("PRAGMA synchronous = OFF")
            self._conn.execute("PRAGMA journal_mode = MEMORY")
        return self._conn

    def release_handles(self) -> None:
        """Close the connection (reopened lazily on next use)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def open_handle_count(self) -> int:
        return 1 if self._conn is not None else 0

    def close(self) -> None:
        self.release_handles()
        self.path.unlink(missing_ok=True)

    def __getstate__(self) -> dict[str, Any]:
        # Fork-process workers reopen their own connection lazily; a live
        # sqlite3.Connection must never cross the fork boundary.
        state = dict(self.__dict__)
        state["_conn"] = None
        return state

    # -- loading -------------------------------------------------------------------

    def load_table(
        self, columns: dict[str, list[Any]], generation: int = 0
    ) -> list[str]:
        """(Re)mirror the pushable columns; returns the attrs mirrored."""
        conn = self._connection()
        conn.execute("DROP TABLE IF EXISTS t")
        self._attrs.clear()
        self._order_exact.clear()
        specs: list[tuple[str, int, int]] = []
        for slot, (attr, values) in enumerate(columns.items()):
            kind = _pushable_kind(values)
            if kind is None:
                continue
            specs.append((attr, slot, kind))
            self._attrs[attr] = (slot, kind)
            self._order_exact[attr] = kind != KIND_INT64 or all(
                v is None or -MAX_EXACT_ORDER_INT <= v <= MAX_EXACT_ORDER_INT
                for v in values
            )
            self._generation[attr] = generation
        cols_sql = ", ".join(
            f"c{slot} {_SQL_TYPE[kind]}" for _attr, slot, kind in specs
        )
        if not cols_sql:
            self._loaded = True
            conn.commit()
            return []
        conn.execute(f"CREATE TABLE t (pos INTEGER PRIMARY KEY, {cols_sql})")
        n_rows = max(len(columns[attr]) for attr, _slot, _kind in specs)
        col_lists = [columns[attr] for attr, _slot, _kind in specs]
        placeholders = ", ".join(["?"] * (1 + len(specs)))
        conn.executemany(
            f"INSERT INTO t VALUES ({placeholders})",
            (
                (pos, *(col[pos] for col in col_lists))
                for pos in range(n_rows)
            ),
        )
        for _attr, slot, _kind in specs:
            conn.execute(f"CREATE INDEX idx_c{slot} ON t (c{slot}, pos)")
        conn.commit()
        self._loaded = True
        return [attr for attr, _slot, _kind in specs]

    def update_rows(
        self, updates: dict[str, list[tuple[int, Any]]], generation: int
    ) -> None:
        """Apply a patch batch: per attr, ``[(pos, new value), …]``.

        An update that makes an attribute un-mirrorable (a probabilistic
        cell, a family change, NaN) *demotes* the attr — it is dropped
        from the pushdown surface and later served by the oracle.
        """
        if not self._loaded:
            return
        conn = self._connection()
        for attr, cells in updates.items():
            spec = self._attrs.get(attr)
            if spec is None:
                continue
            slot, kind = spec
            demote = any(
                v is not None and _pushable_kind([v]) != kind for _pos, v in cells
            )
            if demote:
                self._attrs.pop(attr, None)
                self._order_exact.pop(attr, None)
                continue
            conn.executemany(
                f"UPDATE t SET c{slot} = ? WHERE pos = ?",
                ((v, pos) for pos, v in cells),
            )
            if kind == KIND_INT64 and self._order_exact.get(attr, False):
                self._order_exact[attr] = all(
                    v is None or -MAX_EXACT_ORDER_INT <= v <= MAX_EXACT_ORDER_INT
                    for _pos, v in cells
                )
            self._generation[attr] = generation
        conn.commit()

    # -- pushdown queries ----------------------------------------------------------

    def pushable(self, attr: str) -> bool:
        return self._loaded and attr in self._attrs

    def filter_positions(
        self, attr: str, op: str, value: Any
    ) -> "list[int] | None":
        """Positions of non-null cells satisfying ``cell op value``.

        ``None`` means "not pushable here" — the caller must run the
        oracle path.  Membership is exactly the oracle's: NULLs never
        match, and cross-type int/float comparisons are exact on both
        sides.
        """
        spec = self._attrs.get(attr)
        if spec is None or not self._loaded or op not in _OPS:
            return None
        slot, kind = spec
        if not probe_matches_kind(kind, value):
            if isinstance(value, (bool, int, float)) and kind in (
                KIND_INT64,
                KIND_FLOAT64,
            ):
                # Numeric probe the mirror cannot push *exactly* (NaN, an
                # int beyond the exactness bound): comparable in Python,
                # so the oracle must decide.
                return None
            if value is None:
                return None  # the oracle's linear-fallback path
            # Cross-family probe: the oracle's TypeError branch yields no
            # concrete matches.
            return []
        try:
            cursor = self._connection().execute(
                f"SELECT pos FROM t WHERE c{slot} {op} ? ORDER BY pos", (value,)
            )
        except (sqlite3.Error, ValueError, OverflowError):
            # Unbindable probe (e.g. a lone-surrogate string): the oracle
            # compares it fine, so decline instead of failing.
            return None
        self.queries_served += 1
        return [row[0] for row in cursor]

    def sorted_pairs(self, attr: str) -> "tuple[list[Any], list[int]] | None":
        """``(values, positions)`` of non-null cells, ordered by
        ``(value, position)`` — the engine's stable sorted-index order.

        ``None`` when the attr is not pushable or (for integer columns)
        contains values beyond 2^53, where SQLite's exact integer order
        could diverge from the oracle's float-collapsed ties.
        """
        spec = self._attrs.get(attr)
        if spec is None or not self._loaded:
            return None
        if not self._order_exact.get(attr, False):
            return None
        slot, _kind = spec
        cursor = self._connection().execute(
            f"SELECT c{slot}, pos FROM t WHERE c{slot} IS NOT NULL "
            f"ORDER BY c{slot}, pos"
        )
        self.queries_served += 1
        values: list[Any] = []
        positions: list[int] = []
        for value, pos in cursor:
            values.append(value)
            positions.append(pos)
        return values, positions

    def range_window(
        self,
        attr: str,
        low: float,
        high: float,
        positions: "Iterable[int] | None" = None,
    ) -> "list[int] | None":
        """Candidate positions with ``low <= value <= high`` (inclusive),
        ordered by ``(value, position)`` — the searchsorted window of the
        theta-join driving predicate as one indexed ``BETWEEN`` scan.

        ``positions`` optionally restricts the scan to a stripe's row
        range (the matrix's pushdown-bounded stripes).
        """
        spec = self._attrs.get(attr)
        if spec is None or not self._loaded:
            return None
        if not self._order_exact.get(attr, False):
            return None
        if (isinstance(low, float) and math.isnan(low)) or (
            isinstance(high, float) and math.isnan(high)
        ):
            return None
        slot, _kind = spec
        sql = f"SELECT pos FROM t WHERE c{slot} BETWEEN ? AND ?"
        params: list[Any] = [low, high]
        if positions is not None:
            pos_list = sorted(positions)
            marks = ", ".join(["?"] * len(pos_list))
            sql += f" AND pos IN ({marks})"
            params.extend(pos_list)
        sql += f" ORDER BY c{slot}, pos"
        cursor = self._connection().execute(sql, params)
        self.queries_served += 1
        return [row[0] for row in cursor]
