"""On-disk stripe format: typed column chunks with a pickle fallback.

One *stripe* is a contiguous row range of one attribute's column, encoded
to a compact self-describing binary blob:

* a fixed header (magic, format version, kind tag, row count),
* a null bitmap (one bit per row) for the typed kinds,
* a typed payload — ``int64`` / ``float64`` rows via the :mod:`struct`
  machine formats, ``str`` rows as an offset table over one UTF-8 blob —
  or an opaque :mod:`pickle` payload for columns that *decline* typed
  encoding (probabilistic cells, mixed types, out-of-range integers,
  booleans, unencodable strings).

The decline rules deliberately mirror the PR 6 kernel dtype inference
(:func:`repro.relation.kernels.build_typed_column`): a chunk is typed only
when every non-null cell is exactly representable and round-trips to the
*same Python value* — ``int`` stays ``int``, ``float`` stays ``float``
(including NaN/±inf/−0.0 via the IEEE-754 ``d`` format), ``str`` stays
``str``.  Everything else falls back to pickle, which round-trips any
engine cell (PValues ship through the fork-process pool the same way).
Decoding therefore reproduces the in-memory column **byte-for-byte** in
the engine's value semantics — the property the hypothesis suite in
``tests/test_storage_roundtrip.py`` pins.

The format is dependency-free: encoding and decoding use only
``struct``/``pickle`` over :class:`memoryview`, so spilled tables work in
the no-numpy CI configuration, and a decoder can run straight over an
``mmap``-ed file without copying the payload first.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.probabilistic.value import PValue

#: Stripe blob magic + format version (bumped on any layout change).
MAGIC = b"DST1"

#: Kind tags (header byte).
KIND_PICKLE = 0
KIND_INT64 = 1
KIND_FLOAT64 = 2
KIND_STR = 3

#: Header: magic, version, kind, count.
_HEADER = struct.Struct("<4sBBQ")
_FORMAT_VERSION = 1

#: int64 payload bounds (values outside decline to pickle).
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: Default rows per stripe chunk — small enough that a single-cell patch
#: rewrites a bounded slice of the column, large enough that the per-chunk
#: header/bitmap overhead stays negligible.
STRIPE_ROWS = 2048


def infer_stripe_kind(values: list[Any]) -> int:
    """The typed kind of one chunk, or :data:`KIND_PICKLE` if it declines.

    Mirrors the kernel dtype-inference decline rules: booleans and
    probabilistic cells always decline, integers must fit int64, floats
    and strings must be a *pure* family (mixed int/float declines so the
    decoded cell keeps its exact Python type), and ``None`` is allowed
    everywhere (it travels in the null bitmap).
    """
    kind: int | None = None
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool) or isinstance(v, PValue):
            return KIND_PICKLE
        if isinstance(v, int):
            if not _INT64_MIN <= v <= _INT64_MAX:
                return KIND_PICKLE
            v_kind = KIND_INT64
        elif isinstance(v, float):
            v_kind = KIND_FLOAT64
        elif isinstance(v, str):
            v_kind = KIND_STR
        else:
            return KIND_PICKLE
        if kind is None:
            kind = v_kind
        elif kind != v_kind:
            return KIND_PICKLE
    return KIND_PICKLE if kind is None else kind


def _null_bitmap(values: list[Any]) -> bytes:
    out = bytearray((len(values) + 7) // 8)
    for i, v in enumerate(values):
        if v is None:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def encode_stripe(values: list[Any]) -> bytes:
    """Encode one column chunk to a stripe blob (typed or pickle)."""
    kind = infer_stripe_kind(values)
    n = len(values)
    if kind == KIND_STR:
        try:
            blobs = [b"" if v is None else v.encode("utf-8") for v in values]
        except UnicodeEncodeError:
            kind = KIND_PICKLE  # lone surrogates etc.: not UTF-8 encodable
        else:
            offsets = [0]
            for b in blobs:
                offsets.append(offsets[-1] + len(b))
            payload = (
                _null_bitmap(values)
                + struct.pack(f"<{n + 1}Q", *offsets)
                + b"".join(blobs)
            )
            return _HEADER.pack(MAGIC, _FORMAT_VERSION, KIND_STR, n) + payload
    if kind == KIND_INT64:
        payload = _null_bitmap(values) + struct.pack(
            f"<{n}q", *(0 if v is None else v for v in values)
        )
        return _HEADER.pack(MAGIC, _FORMAT_VERSION, KIND_INT64, n) + payload
    if kind == KIND_FLOAT64:
        payload = _null_bitmap(values) + struct.pack(
            f"<{n}d", *(0.0 if v is None else v for v in values)
        )
        return _HEADER.pack(MAGIC, _FORMAT_VERSION, KIND_FLOAT64, n) + payload
    blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(MAGIC, _FORMAT_VERSION, KIND_PICKLE, len(values)) + blob


class StripeFormatError(ValueError):
    """A stripe blob failed structural validation."""


def decode_stripe(buf: "bytes | memoryview") -> list[Any]:
    """Decode one stripe blob back to the exact Python value list.

    Accepts any buffer — in particular a :class:`memoryview` over an
    ``mmap``-ed stripe file, in which case only the rows' bytes are read
    (the typed payloads decode without an intermediate copy).
    """
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise StripeFormatError("stripe blob shorter than its header")
    magic, version, kind, n = _HEADER.unpack_from(view, 0)
    if magic != MAGIC:
        raise StripeFormatError(f"bad stripe magic {magic!r}")
    if version != _FORMAT_VERSION:
        raise StripeFormatError(f"unsupported stripe format version {version}")
    body = view[_HEADER.size:]
    if kind == KIND_PICKLE:
        out = pickle.loads(body)
        if not isinstance(out, list) or len(out) != n:
            raise StripeFormatError("pickle payload does not match row count")
        return out
    bitmap_len = (n + 7) // 8
    bitmap = body[:bitmap_len]
    payload = body[bitmap_len:]
    if kind == KIND_INT64:
        raw: tuple[Any, ...] = struct.unpack_from(f"<{n}q", payload, 0)
    elif kind == KIND_FLOAT64:
        raw = struct.unpack_from(f"<{n}d", payload, 0)
    elif kind == KIND_STR:
        offsets = struct.unpack_from(f"<{n + 1}Q", payload, 0)
        blob = payload[struct.calcsize(f"<{n + 1}Q"):]
        raw = tuple(
            bytes(blob[offsets[i]:offsets[i + 1]]).decode("utf-8")
            for i in range(n)
        )
    else:
        raise StripeFormatError(f"unknown stripe kind tag {kind}")
    return [
        None if bitmap[i >> 3] & (1 << (i & 7)) else raw[i] for i in range(n)
    ]


def stripe_kind(buf: "bytes | memoryview") -> int:
    """The kind tag of an encoded stripe (header peek, no payload decode)."""
    view = memoryview(buf)
    if len(view) < _HEADER.size:
        raise StripeFormatError("stripe blob shorter than its header")
    magic, version, kind, _n = _HEADER.unpack_from(view, 0)
    if magic != MAGIC or version != _FORMAT_VERSION:
        raise StripeFormatError("bad stripe header")
    return int(kind)
