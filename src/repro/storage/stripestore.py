"""Spill-to-disk stripe store: chunked columns, mmap read-back, LRU budget.

A :class:`StripeStore` owns one table's spilled columns.  Each attribute
is split into fixed-size row chunks (:data:`~repro.storage.stripefile.STRIPE_ROWS`)
and every chunk is one :mod:`repro.storage.stripefile` blob in its own
file under the store's spill directory.  Reads memory-map the chunk file
and decode straight off the mapping; decoded chunks are **not** cached
here — residency is owned by the :class:`~repro.storage.provider.StorageColumns`
lazy dict, whose loaded columns this store's :class:`ResidencyTracker`
evicts in LRU order once their estimated bytes exceed the configured
``memory_budget_mb``.

Writes are chunk-granular: :meth:`StripeStore.rewrite_positions` re-encodes
only the chunks containing touched row positions — the patch-stream hook
that keeps a spilled table consistent with PR 4's epoch-stamped updates
without rewriting the whole column.  Every rewrite bumps the attribute's
*generation*; readers pinned to an older generation (pre-patch views) are
refused, so an evict-then-reload can never time-travel a snapshot.

All OS handles (mmaps + file objects) are transient: opened per read,
closed before returning.  The store itself therefore holds no open fds
between calls — :meth:`close` only deletes the spill files — which is what
lets ``Session.close()`` guarantee a handle-free engine.
"""

from __future__ import annotations

import mmap
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, MutableMapping

from repro._ownership import shared_engine_state
from repro.storage.stripefile import STRIPE_ROWS, decode_stripe, encode_stripe


@dataclass
class _ChunkMeta:
    """Manifest entry for one encoded chunk on disk."""

    rows: int
    nbytes: int


@shared_engine_state
@dataclass
class _ColumnMeta:
    """Manifest entry for one spilled attribute.

    Owned by its :class:`StripeStore` manifest; the generation bumps (and
    the chunk list rewrites) only inside the store's write seams.
    """

    MUTATED_UNDER = {
        "generation": ("StripeStore.put_column", "StripeStore.rewrite_positions"),
        "n_rows": ("StripeStore.put_column", "StripeStore.rewrite_positions"),
        "chunks": ("StripeStore.put_column", "StripeStore.rewrite_positions"),
    }

    n_rows: int
    generation: int = 0
    chunks: list[_ChunkMeta] = field(default_factory=list)


class StaleGenerationError(RuntimeError):
    """A reader asked for a column generation the store has rewritten."""


@dataclass
class _Resident:
    """One column a lazy dict currently holds in memory."""

    owner: "MutableMapping[str, list[Any]]"
    attr: str
    payload_id: int
    nbytes: int


@shared_engine_state
class ResidencyTracker:
    """LRU accounting of decoded columns against a byte budget.

    Entries are ``(owner dict, attr)`` pairs registered by the lazy
    column dicts when they materialize a column.  Crossing the budget
    evicts the least recently touched entries by deleting the key from
    its owner dict — the next access reloads from disk.  An entry is only
    evicted while the dict still holds the *exact* object that was
    registered (a patched/pinned replacement is never touched), and
    pinned entries (stale-generation snapshots that could not be
    reloaded) are skipped entirely.
    """

    MUTATED_UNDER = {
        "_entries": (
            "ResidencyTracker.note",
            "ResidencyTracker.forget",
            "ResidencyTracker._enforce",
        ),
        "_order": (
            "ResidencyTracker.note",
            "ResidencyTracker.touch",
            "ResidencyTracker.forget",
            "ResidencyTracker._enforce",
        ),
        "resident_bytes": (
            "ResidencyTracker.note",
            "ResidencyTracker.forget",
            "ResidencyTracker._enforce",
        ),
        "evictions": ("ResidencyTracker._enforce",),
        "budget_bytes": ("ResidencyTracker.set_budget",),
    }

    def __init__(self, budget_bytes: int) -> None:
        self.budget_bytes = budget_bytes
        self._entries: dict[tuple[int, str], _Resident] = {}
        self._order: list[tuple[int, str]] = []
        self.resident_bytes = 0
        self.evictions = 0

    def set_budget(self, budget_bytes: int) -> None:
        """Re-point the residency budget (takes effect on the next load)."""
        self.budget_bytes = budget_bytes

    def note(
        self,
        owner: "MutableMapping[str, list[Any]]",
        attr: str,
        payload: list[Any],
        nbytes: int,
    ) -> None:
        """Register (or refresh) one materialized column."""
        if self.budget_bytes <= 0:
            # Unlimited budget: tracking would only accumulate strong
            # references to superseded column dicts, never evict anything.
            return
        key = (id(owner), attr)
        previous = self._entries.pop(key, None)
        if previous is not None:
            self.resident_bytes -= previous.nbytes
            try:
                self._order.remove(key)
            except ValueError:
                pass
        self._entries[key] = _Resident(owner, attr, id(payload), nbytes)
        self._order.append(key)
        self.resident_bytes += nbytes
        self._enforce()

    def touch(self, owner: "MutableMapping[str, list[Any]]", attr: str) -> None:
        key = (id(owner), attr)
        if key in self._entries:
            try:
                self._order.remove(key)
            except ValueError:
                return
            self._order.append(key)

    def forget(self, owner: "MutableMapping[str, list[Any]]", attr: str) -> None:
        """Drop one entry from accounting without touching the dict."""
        key = (id(owner), attr)
        entry = self._entries.pop(key, None)
        if entry is not None:
            self.resident_bytes -= entry.nbytes
            try:
                self._order.remove(key)
            except ValueError:
                pass

    def _enforce(self) -> None:
        # The most recently noted entry is never evicted: the caller is
        # actively reading it, and evicting it would thrash reload loops.
        if self.budget_bytes <= 0:
            return
        cursor = 0
        while self.resident_bytes > self.budget_bytes and cursor < len(self._order) - 1:
            key = self._order[cursor]
            entry = self._entries.get(key)
            if entry is None:
                self._order.pop(cursor)
                continue
            # Raw dict lookup on purpose: lazy owner dicts override .get()
            # to *load* missing columns, and enforcement must never turn
            # an eviction into a reload (or re-enter note() recursively).
            current = (
                dict.get(entry.owner, entry.attr)
                if isinstance(entry.owner, dict)
                else entry.owner.get(entry.attr)
            )
            if current is None or id(current) != entry.payload_id:
                # The dict replaced or dropped the object (patched column):
                # stop accounting for it, never delete the replacement.
                self._order.pop(cursor)
                self._entries.pop(key, None)
                self.resident_bytes -= entry.nbytes
                continue
            del entry.owner[entry.attr]
            self._order.pop(cursor)
            self._entries.pop(key, None)
            self.resident_bytes -= entry.nbytes
            self.evictions += 1


@shared_engine_state
class StripeStore:
    """One table's spill directory of chunked column stripes.

    Writes (spill, patch-rewrite) happen only inside the serialized
    per-table storage passes; the two counters are introspection tallies
    charged by the same seams that do the I/O.
    """

    MUTATED_UNDER = {
        "_columns": ("StripeStore.put_column",),
        "_slots": ("StripeStore._chunk_path",),
        "chunk_writes": ("StripeStore.put_column", "StripeStore.rewrite_positions"),
        "chunk_reads": ("StripeStore.load_column",),
    }

    def __init__(
        self,
        root: Path,
        memory_budget_mb: int = 0,
        chunk_rows: int = STRIPE_ROWS,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.chunk_rows = max(1, chunk_rows)
        self.tracker = ResidencyTracker(int(memory_budget_mb) * 1024 * 1024)
        self._columns: dict[str, _ColumnMeta] = {}
        #: Stable file-name slot per attribute (registration order, never
        #: the raw name and never ``hash()`` — file names must be
        #: deterministic across processes).
        self._slots: dict[str, int] = {}
        #: Monotonic counters for introspection/benchmarks.
        self.chunk_reads = 0
        self.chunk_writes = 0

    # -- manifest ----------------------------------------------------------------

    def attrs(self) -> list[str]:
        return sorted(self._columns)

    def generation(self, attr: str) -> int:
        return self._columns[attr].generation

    def n_rows(self, attr: str) -> int:
        return self._columns[attr].n_rows

    def spilled_bytes(self) -> int:
        return sum(
            chunk.nbytes for meta in self._columns.values() for chunk in meta.chunks
        )

    def column_bytes(self, attr: str) -> int:
        return sum(chunk.nbytes for chunk in self._columns[attr].chunks)

    def _chunk_path(self, attr: str, index: int) -> Path:
        # Attribute names are arbitrary: file names use a stable per-attr
        # slot assigned in registration order, never the raw name.
        slot = self._slots.setdefault(attr, len(self._slots))
        return self.root / f"col_{slot}_{index}.stripe"

    # -- writes ------------------------------------------------------------------

    def put_column(self, attr: str, values: list[Any]) -> None:
        """Spill one whole column (registration / full rewrite)."""
        meta = _ColumnMeta(n_rows=len(values))
        meta.generation = (
            self._columns[attr].generation + 1 if attr in self._columns else 0
        )
        for index, start in enumerate(range(0, max(1, len(values)), self.chunk_rows)):
            chunk_values = values[start:start + self.chunk_rows]
            blob = encode_stripe(chunk_values)
            path = self._chunk_path(attr, index)
            with open(path, "wb") as handle:
                handle.write(blob)
            meta.chunks.append(_ChunkMeta(rows=len(chunk_values), nbytes=len(blob)))
            self.chunk_writes += 1
        self._columns[attr] = meta

    def rewrite_positions(
        self, attr: str, values: list[Any], positions: "list[int] | tuple[int, ...]"
    ) -> int:
        """Re-encode only the chunks containing ``positions``.

        ``values`` is the attribute's *full* post-patch column; the store
        slices out each touched chunk's row range.  Returns the number of
        chunks rewritten, and bumps the column generation so readers
        pinned to the pre-patch snapshot are refused rather than served
        the new bytes.  A length change (row set changed) degrades to a
        full :meth:`put_column`.
        """
        meta = self._columns.get(attr)
        if meta is None or meta.n_rows != len(values):
            self.put_column(attr, values)
            return len(self._columns[attr].chunks)
        touched_chunks = sorted({pos // self.chunk_rows for pos in positions})
        for index in touched_chunks:
            if index >= len(meta.chunks):
                continue
            start = index * self.chunk_rows
            blob = encode_stripe(values[start:start + self.chunk_rows])
            with open(self._chunk_path(attr, index), "wb") as handle:
                handle.write(blob)
            meta.chunks[index] = _ChunkMeta(
                rows=meta.chunks[index].rows, nbytes=len(blob)
            )
            self.chunk_writes += 1
        meta.generation += 1
        return len(touched_chunks)

    # -- reads -------------------------------------------------------------------

    def load_column(self, attr: str, generation: "int | None" = None) -> list[Any]:
        """Decode one column from its mmap-ed chunks.

        ``generation`` pins the expected snapshot: a mismatch (the column
        was rewritten since the caller's view was created) raises
        :class:`StaleGenerationError` instead of silently time-traveling.
        """
        meta = self._columns[attr]
        if generation is not None and generation != meta.generation:
            raise StaleGenerationError(
                f"column {attr!r} is at generation {meta.generation}, "
                f"reader expected {generation}"
            )
        out: list[Any] = []
        for index, _chunk in enumerate(meta.chunks):
            path = self._chunk_path(attr, index)
            with open(path, "rb") as handle, mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            ) as mapping:
                out.extend(decode_stripe(memoryview(mapping)))
            self.chunk_reads += 1
        return out

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Delete the spill directory (all chunk files)."""
        self._columns.clear()
        shutil.rmtree(self.root, ignore_errors=True)

    def open_fd_count(self) -> int:
        """Open descriptors pointing into this store's spill directory.

        Handles here are transient by construction, so this should always
        be 0 between calls — the leak-check fixture asserts exactly that.
        """
        root = str(self.root.resolve())
        count = 0
        fd_dir = Path("/proc/self/fd")
        if not fd_dir.exists():  # pragma: no cover - non-procfs platforms
            return 0
        for entry in fd_dir.iterdir():
            try:
                target = os.readlink(entry)
            except OSError:  # pragma: no cover - raced fd teardown
                continue
            if target.startswith(root):
                count += 1
        return count
