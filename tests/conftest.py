"""Shared fixtures: the paper's running examples and small synthetic data."""

from __future__ import annotations

import os

import pytest

from repro.constraints import FunctionalDependency
from repro.relation import ColumnType, Relation


@pytest.fixture(scope="session", autouse=True)
def _race_witness_harness():
    """Run the whole suite under the race witness when asked.

    ``REPRO_TEST_DIAGNOSTICS=witness`` activates the ownership witness
    (:mod:`repro.diagnostics.witness`) for every test — the CI race-witness
    job runs the parity suites this way.  On teardown the witness writes
    its report (``REPRO_WITNESS_REPORT``) and the session FAILS if any
    observed write contradicted the declared ownership contracts.
    """
    if os.environ.get("REPRO_TEST_DIAGNOSTICS") != "witness":
        yield
        return
    from repro.diagnostics import global_witness

    witness = global_witness()
    witness.activate()
    try:
        yield
    finally:
        violations = list(witness.violations)
        witness.deactivate()
    if violations:
        lines = "\n".join(v.reason for v in violations[:20])
        raise AssertionError(
            f"race witness observed {len(violations)} ownership "
            f"violation(s):\n{lines}"
        )


@pytest.fixture
def cities_relation() -> Relation:
    """Table 2a — the dirty Cities dataset of the paper's running example."""
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


@pytest.fixture
def zip_city_fd() -> FunctionalDependency:
    return FunctionalDependency("zip", "city", name="phi")


@pytest.fixture
def employees_relation() -> Relation:
    """Table 1 — the employees dataset of the introduction."""
    return Relation.from_rows(
        [("name", ColumnType.STRING), ("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            ("Jon", 9001, "Los Angeles"),
            ("Jim", 9001, "San Francisco"),
            ("Mary", 10001, "New York"),
            ("Jane", 10002, "New York"),
        ],
        name="employees",
    )


@pytest.fixture
def salary_tax_relation() -> Relation:
    """Example 5's salary/tax/age dataset."""
    return Relation.from_rows(
        [("salary", ColumnType.INT), ("tax", ColumnType.FLOAT), ("age", ColumnType.INT)],
        [
            (1000, 0.1, 31),
            (3000, 0.2, 32),
            (2000, 0.3, 43),
        ],
        name="salaries",
    )
