"""Shared fixtures: the paper's running examples and small synthetic data."""

from __future__ import annotations

import pytest

from repro.constraints import FunctionalDependency
from repro.relation import ColumnType, Relation


@pytest.fixture
def cities_relation() -> Relation:
    """Table 2a — the dirty Cities dataset of the paper's running example."""
    return Relation.from_rows(
        [("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            (9001, "Los Angeles"),
            (9001, "San Francisco"),
            (9001, "Los Angeles"),
            (10001, "San Francisco"),
            (10001, "New York"),
        ],
        name="cities",
    )


@pytest.fixture
def zip_city_fd() -> FunctionalDependency:
    return FunctionalDependency("zip", "city", name="phi")


@pytest.fixture
def employees_relation() -> Relation:
    """Table 1 — the employees dataset of the introduction."""
    return Relation.from_rows(
        [("name", ColumnType.STRING), ("zip", ColumnType.INT), ("city", ColumnType.STRING)],
        [
            ("Jon", 9001, "Los Angeles"),
            ("Jim", 9001, "San Francisco"),
            ("Mary", 10001, "New York"),
            ("Jane", 10002, "New York"),
        ],
        name="employees",
    )


@pytest.fixture
def salary_tax_relation() -> Relation:
    """Example 5's salary/tax/age dataset."""
    return Relation.from_rows(
        [("salary", ColumnType.INT), ("tax", ColumnType.FLOAT), ("age", ColumnType.INT)],
        [
            (1000, 0.1, 31),
            (3000, 0.2, 32),
            (2000, 0.3, 43),
        ],
        name="salaries",
    )
