"""Seeded isolation bugs: torn reads the service tier's pins must catch.

The companion of ``seeded_race.py`` for the snapshot-isolation layer.  It
plants the same defect — an external update whose epoch/marker writes
happen *outside* :meth:`~repro.core.state.TableState.apply_updates` —
three ways, so every analysis layer gets a target it can actually see:

* :class:`SeededEpochTable` + :func:`torn_bump` is the *static* bug: a
  self-contained ``@shared_engine_state`` class whose epoch fields are
  seam-declared under :meth:`SeededEpochTable.apply`, and a function that
  writes them anywhere else.  daisylint DL101 flags it at a pretend
  engine path (``tests/test_daisylint_ownership.py`` idiom); the runtime
  witness flags the same call dynamically (``seam-violation``).
* :func:`torn_update` is the *dynamic marked* bug against a real
  :class:`~repro.core.state.TableState`: it raises the
  ``write_in_progress`` torn-read marker by hand (an out-of-seam write
  the witness flags), invokes the caller's read mid-"update", then bumps
  the epoch.  A reader that tries to pin a
  :class:`~repro.service.snapshot.SnapshotHandle` mid-flight gets an
  immediate :class:`~repro.service.snapshot.SnapshotViolation`.
* :func:`torn_update_unmarked` is the *dynamic unmarked* bug: no marker
  at all, just an epoch bump while the caller's snapshot is live — the
  pin constructs fine and only :meth:`SnapshotHandle.verify` can convict
  the torn read after the fact.

The module name avoids the witness's harness-exemption patterns
(``test_*`` / ``docsnippet_*`` / ``conftest``) on purpose, exactly like
``seeded_race.py``: writes from these functions look engine-shaped, so
the self-tests in ``tests/test_service.py`` prove both the witness and
the isolation primitives fire on the same seeded defect.
"""

from __future__ import annotations

from typing import Callable

from repro._ownership import shared_engine_state
from repro.core.state import TableState


@shared_engine_state
class SeededEpochTable:
    """A miniature table state: epoch + torn-read marker, one legal seam.

    Mirrors the real :class:`~repro.core.state.TableState` contract at
    fixture scale: ``data_epoch`` and ``write_in_progress`` may only move
    inside :meth:`apply` — anywhere else is a seeded DL101.
    """

    MUTATED_UNDER = {
        "data_epoch": ("SeededEpochTable.apply",),
        "write_in_progress": ("SeededEpochTable.apply",),
    }

    def __init__(self) -> None:
        self.data_epoch = 0
        self.write_in_progress = False

    def apply(self) -> None:
        """The one declared write seam: a well-formed update batch."""
        self.write_in_progress = True
        try:
            self.data_epoch += 1
        finally:
            self.write_in_progress = False


def torn_bump(table: SeededEpochTable) -> None:
    """The seeded DL101 bug: epoch/marker writes outside every seam."""
    table.write_in_progress = True
    table.data_epoch += 1
    table.write_in_progress = False


def torn_update(state: TableState, mid_read: Callable[[], None]) -> None:
    """A marked torn update against a *real* table state.

    Raises the ``write_in_progress`` marker by hand, runs the caller's
    read mid-flight (a snapshot pin attempted here must raise
    ``SnapshotViolation``), then bumps the epoch and clears the marker.
    Every write is out-of-seam on purpose: under an active witness each
    one is a ``seam-violation``.
    """
    state.write_in_progress = True
    try:
        mid_read()
        state.data_epoch += 1
    finally:
        state.write_in_progress = False


def torn_update_unmarked(
    state: TableState, mid_read: Callable[[], None]
) -> None:
    """An unmarked torn update: no marker, just an epoch bump mid-read.

    ``mid_read`` runs first and can pin a snapshot successfully (nothing
    is flagged yet); the epoch bump lands while that snapshot is live, so
    only ``SnapshotHandle.verify()`` can catch the tear afterwards.
    """
    mid_read()
    state.data_epoch += 1
