"""Seeded ownership bugs: the same defects both analysis layers must catch.

This module deliberately violates the ownership contract three ways:

* :func:`rogue_write` writes a ``@shared_engine_state`` attribute outside
  its declared ``MUTATED_UNDER`` seam — daisylint DL101 statically, a
  ``seam-violation`` from the runtime witness dynamically.
* :func:`corrupt` writes an ``@immutable_after_init`` object after
  construction — DL102 statically, ``immutable-write`` dynamically.
* :func:`touch` is a legitimate-looking writer that, called from two
  threads against one ``@session_owned`` instance, produces the
  ``cross-thread-write`` the witness (and only the witness) can see.

The module's name avoids the witness's harness-exemption patterns
(``test_*`` / ``docsnippet_*`` / ``conftest``) on purpose: writes from
these functions are *engine-shaped* frames, so the self-tests in
``tests/test_witness.py`` prove the witness actually fires.  The static
self-test in ``tests/test_daisylint_ownership.py`` lints this same file
at a pretend engine path and proves DL101/DL102 fire on the same lines.
"""

from __future__ import annotations

from repro._ownership import (
    immutable_after_init,
    session_owned,
    shared_engine_state,
)


@shared_engine_state
class SeededCursor:
    """Shared state whose only declared write seam is :meth:`advance`."""

    MUTATED_UNDER = {
        "position": ("SeededCursor.advance",),
    }

    def __init__(self) -> None:
        self.position = 0

    def advance(self) -> None:
        self.position += 1


@immutable_after_init
class SeededFrozen:
    """Construction-only object: any later write is a contract breach."""

    def __init__(self, value: int) -> None:
        self.value = value


@session_owned
class SeededScratch:
    """Per-session scratch: a single thread may write each instance."""

    def __init__(self) -> None:
        self.cursor = 0


def rogue_write(cursor: SeededCursor) -> None:
    """The seeded DL101 bug: a write outside every declared seam."""
    cursor.position = 99


def corrupt(frozen: SeededFrozen) -> None:
    """The seeded DL102 bug: mutating an immutable object post-init."""
    frozen.value = -1


def touch(scratch: SeededScratch) -> None:
    """A writer that is only a bug when two threads share the instance."""
    scratch.cursor += 1
